# repro-ftes evaluation service.
#
#   docker build -t repro-ftes .
#   docker run --rm -p 8321:8321 -v repro-store:/var/lib/repro repro-ftes
#
# The default command serves the scenario registry on 0.0.0.0:8321 with the
# spool/store under /var/lib/repro — mount a volume there to keep the warm
# design-point store across container restarts.  Any repro-ftes subcommand
# works as the run command, e.g.:
#
#   docker run --rm repro-ftes run fig6a --preset fast

FROM python:3.11-slim

WORKDIR /opt/repro-ftes

# Dependency layer first so source edits do not re-resolve wheels.
COPY pyproject.toml setup.py README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

RUN mkdir -p /var/lib/repro

EXPOSE 8321

ENTRYPOINT ["repro-ftes"]
CMD ["serve", "--host", "0.0.0.0", "--port", "8321", "--spool-dir", "/var/lib/repro"]
