"""Shared fixtures for the benchmark harnesses.

Every figure/table of the paper has its own ``test_bench_*.py`` module.  The
synthetic Fig. 6 harnesses share one :class:`AcceptanceExperiment` instance
(session scope) so that technology settings evaluated for one figure are
reused by the others — mirroring how the paper evaluates one fixed set of
applications under different SER/HPD/ArC settings.

The experiment preset is the laptop-scale ``fast`` preset; see EXPERIMENTS.md
for the mapping between these scaled-down runs and the paper's full setup.
"""

from __future__ import annotations

import pytest

from repro.experiments.synthetic import AcceptanceExperiment, ExperimentPreset


@pytest.fixture(scope="session")
def acceptance_experiment() -> AcceptanceExperiment:
    """The shared synthetic experiment used by the Fig. 6 benchmarks."""
    return AcceptanceExperiment(preset=ExperimentPreset.fast())
