"""Benchmark E10 (ablation) — tabu-search mapping vs. greedy-only mapping.

The paper's MappingAlgorithm iteratively re-maps critical-path processes with
a tabu search (Section 6.2).  This ablation compares it against stopping at
the greedy load-balancing initial mapping (zero tabu iterations): the tabu
search must never produce a worse design and is expected to reduce either the
schedule length or the cost on a visible fraction of the instances.
"""

from __future__ import annotations

from repro.core.architecture import Architecture, Node
from repro.core.mapping import MappingAlgorithm, Objective
from repro.experiments.results import format_table
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark


def _compare_mappings():
    rows = []
    for seed in range(11, 17):
        instance = generate_benchmark(
            seed, config=BenchmarkConfig(n_processes=14, n_node_types=3)
        )
        node_types, profile = build_platform(instance, 1e-11, 25.0)
        architecture = Architecture([Node(nt.name, nt) for nt in node_types[:2]])
        architecture.set_min_hardening()
        application = instance.application

        greedy_only = MappingAlgorithm(max_iterations=0)
        tabu = MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3)
        greedy_result = greedy_only.optimize(
            application, architecture, profile, objective=Objective.SCHEDULE_LENGTH
        )
        tabu_result = tabu.optimize(
            application, architecture, profile, objective=Objective.SCHEDULE_LENGTH
        )
        rows.append(
            {
                "application": instance.name,
                "greedy": greedy_result.schedule_length if greedy_result else float("inf"),
                "tabu": tabu_result.schedule_length if tabu_result else float("inf"),
                "evaluations": tabu_result.evaluations if tabu_result else 0,
            }
        )
    return rows


def test_bench_ablation_tabu_mapping(benchmark):
    rows = benchmark.pedantic(_compare_mappings, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["application", "greedy-only SL (ms)", "tabu SL (ms)", "tabu evaluations"],
            [[row["application"], row["greedy"], row["tabu"], row["evaluations"]] for row in rows],
            title="Ablation — tabu-search mapping vs. greedy initial mapping",
        )
    )

    solved = [row for row in rows if row["tabu"] != float("inf")]
    assert solved, "tabu search should solve at least one instance"
    for row in solved:
        if row["greedy"] != float("inf"):
            assert row["tabu"] <= row["greedy"] + 1e-9
    improved = sum(
        1 for row in solved if row["greedy"] == float("inf") or row["tabu"] < row["greedy"] - 1e-9
    )
    print(f"instances improved by the tabu search: {improved}/{len(rows)}")
