"""Benchmark E15 (ablation) — heuristic vs. exhaustive optimum on small instances.

The paper's stack (DesignStrategy + tabu mapping + RedundancyOpt) is a
heuristic.  On instances small enough to enumerate completely (here: 6-process
synthetic applications on a 2-type node library, plus the paper's own Fig. 1
example), this ablation measures the optimality gap: the cost of the heuristic
design divided by the cost of the exhaustive optimum.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.design_strategy import DesignStrategy
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.mapping import MappingAlgorithm
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile
from repro.experiments.results import format_table
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark


def _compare_on_small_instances():
    rows = []

    # The paper's own example first.
    node_types = list(fig1_node_types())
    heuristic = DesignStrategy(
        node_types, mapping_algorithm=MappingAlgorithm(max_iterations=6)
    ).explore(fig1_application(), fig1_profile())
    optimal = ExhaustiveSearch(node_types, max_nodes=2).explore(
        fig1_application(), fig1_profile()
    )
    rows.append(
        {
            "instance": "fig1",
            "heuristic": heuristic.cost if heuristic.feasible else float("inf"),
            "optimal": optimal.cost if optimal.feasible else float("inf"),
        }
    )

    # Small synthetic instances.
    config = BenchmarkConfig(n_processes=6, n_node_types=2)
    for seed in range(31, 35):
        instance = generate_benchmark(seed, config=config)
        types, profile = build_platform(instance, 1e-11, 25.0)
        heuristic = DesignStrategy(
            types, mapping_algorithm=MappingAlgorithm(max_iterations=6)
        ).explore(instance.application, profile)
        optimal = ExhaustiveSearch(types, max_nodes=2).explore(
            instance.application, profile
        )
        rows.append(
            {
                "instance": instance.name,
                "heuristic": heuristic.cost if heuristic.feasible else float("inf"),
                "optimal": optimal.cost if optimal.feasible else float("inf"),
            }
        )
    return rows


def test_bench_ablation_heuristic_vs_exhaustive(benchmark):
    rows = benchmark.pedantic(_compare_on_small_instances, rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        if row["optimal"] == float("inf"):
            gap = "-"
        elif row["heuristic"] == float("inf"):
            gap = "infeasible"
        else:
            gap = f"{row['heuristic'] / row['optimal']:.2f}x"
        table_rows.append([row["instance"], row["heuristic"], row["optimal"], gap])
    print()
    print(
        format_table(
            ["instance", "heuristic cost", "exhaustive optimum", "gap"],
            table_rows,
            title="Ablation — optimality gap of the paper's heuristic stack",
        )
    )

    solvable = [row for row in rows if row["optimal"] != float("inf")]
    assert solvable, "the exhaustive search should solve at least one instance"
    for row in solvable:
        # The heuristic may be suboptimal but must never beat the optimum, and
        # whenever the optimum exists the heuristic should find something.
        if row["heuristic"] != float("inf"):
            assert row["heuristic"] >= row["optimal"] - 1e-9
    solved_both = [row for row in solvable if row["heuristic"] != float("inf")]
    assert solved_both
    mean_gap = sum(row["heuristic"] / row["optimal"] for row in solved_both) / len(solved_both)
    print(f"mean optimality gap over {len(solved_both)} instances: {mean_gap:.2f}x")
    assert mean_gap <= 2.0
