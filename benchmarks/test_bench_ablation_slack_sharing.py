"""Benchmark E9 (ablation) — shared recovery slack vs. naive per-process slack.

The paper's scheduler shares the recovery slack between the processes mapped
on a node (Section 6.4).  This ablation quantifies what that sharing buys: the
worst-case schedule length with shared slack divided by the length with naive
(per-process, non-shared) slack, over a set of synthetic applications mapped
with the plain greedy initial mapping and a re-execution budget from the SFP
analysis.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.mapping import MappingAlgorithm
from repro.core.reexecution import ReExecutionOpt
from repro.experiments.results import format_table
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark
from repro.scheduling.list_scheduler import ListScheduler


def _evaluate_suite():
    rows = []
    for seed in range(1, 7):
        benchmark_instance = generate_benchmark(
            seed, config=BenchmarkConfig(n_processes=16, n_node_types=3)
        )
        node_types, profile = build_platform(benchmark_instance, 1e-11, 25.0)
        architecture = Architecture([Node(nt.name, nt) for nt in node_types[:2]])
        architecture.set_min_hardening()
        application = benchmark_instance.application
        mapping = MappingAlgorithm().initial_mapping(application, architecture, profile)
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        budgets = decision.reexecutions if decision is not None else {}
        shared = ListScheduler(slack_sharing=True).schedule(
            application, architecture, mapping, profile, budgets
        )
        naive = ListScheduler(slack_sharing=False).schedule(
            application, architecture, mapping, profile, budgets
        )
        rows.append(
            {
                "application": benchmark_instance.name,
                "k_total": sum(budgets.values()),
                "shared": shared.length,
                "naive": naive.length,
                "ratio": naive.length / shared.length if shared.length else 1.0,
            }
        )
    return rows


def test_bench_ablation_slack_sharing(benchmark):
    rows = benchmark.pedantic(_evaluate_suite, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["application", "total k", "shared SL (ms)", "naive SL (ms)", "naive/shared"],
            [
                [row["application"], row["k_total"], row["shared"], row["naive"], row["ratio"]]
                for row in rows
            ],
            title="Ablation — recovery-slack sharing (Section 6.4)",
        )
    )

    # Sharing never hurts, and with non-zero budgets it strictly helps.
    for row in rows:
        assert row["naive"] >= row["shared"] - 1e-9
    with_budget = [row for row in rows if row["k_total"] > 0]
    assert with_budget, "expected at least one instance that needs re-executions"
    mean_ratio = sum(row["ratio"] for row in with_budget) / len(with_budget)
    assert mean_ratio > 1.05
