"""Benchmark E3 — Appendix A.2: the worked SFP computation example.

Regenerates every intermediate number of the paper's hand computation for the
Fig. 4a architecture (probability of no faults, per-node exceedance for k=0
and k=1, system failure probability and the resulting one-hour reliability).
"""

from __future__ import annotations

import pytest

from repro.experiments.motivational import appendix_sfp_example
from repro.experiments.results import format_table


def test_bench_appendix_sfp_example(benchmark):
    example = benchmark.pedantic(appendix_sfp_example, rounds=5, iterations=1)

    rows = [
        ["Pr(0; N1^2)", example["pr_no_fault_n1"], 0.99997500015],
        ["Pr(f>0; N1^2)", example["pr_exceeds_0_n1"], 2.4999844e-05],
        ["Pr(f>1; N1^2)", example["pr_exceeds_1_n1"], 4.8e-10],
        ["system failure (k=1)", example["system_failure_k1"], 9.6e-10],
        ["reliability (k=0)", example["reliability_k0"], 0.60652871884],
        ["reliability (k=1)", example["reliability_k1"], 0.99999040004],
    ]
    print()
    print(
        format_table(
            ["quantity", "measured", "paper"],
            [[name, f"{measured:.12g}", f"{paper:.12g}"] for name, measured, paper in rows],
            title="Appendix A.2 — worked SFP example",
        )
    )

    assert example["pr_no_fault_n1"] == pytest.approx(0.99997500015, abs=1e-12)
    assert example["pr_exceeds_1_n1"] == pytest.approx(4.8e-10, abs=1e-12)
    assert example["system_failure_k1"] == pytest.approx(9.6e-10, abs=1e-12)
    assert example["reliability_k1"] == pytest.approx(0.99999040004, abs=1e-7)
    assert example["meets_goal_k0"] == 0.0
    assert example["meets_goal_k1"] == 1.0
