"""Benchmark E8 — the cruise-controller case study (Section 7).

Paper findings: MIN (software-only fault tolerance) cannot produce a
schedulable implementation of the 32-process CC application on the three ECUs
within the 300 ms deadline; MAX and OPT can; OPT is about 66 % cheaper than
MAX because it hardens only the ECU whose schedule is actually tight.
"""

from __future__ import annotations

from repro.experiments.cruise_control import run_cruise_controller_study
from repro.experiments.results import format_table


def test_bench_cruise_controller_study(benchmark):
    study = benchmark.pedantic(run_cruise_controller_study, rounds=1, iterations=1)

    rows = [
        [
            strategy,
            "yes" if outcome.schedulable else "no",
            outcome.cost if outcome.schedulable else float("inf"),
            outcome.schedule_length,
            ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
        ]
        for strategy, outcome in study.outcomes.items()
    ]
    print()
    print(
        format_table(
            ["strategy", "schedulable", "cost", "worst-case SL (ms)", "h-versions"],
            rows,
            title="Cruise controller (paper: MIN unschedulable, OPT ~66% cheaper than MAX)",
        )
    )
    print(f"measured OPT saving vs MAX: {study.opt_saving_vs_max * 100:.1f}% (paper: 66%)")

    assert not study.outcomes["MIN"].schedulable
    assert study.outcomes["MAX"].schedulable
    assert study.outcomes["OPT"].schedulable
    assert study.outcomes["OPT"].cost < study.outcomes["MAX"].cost
    assert study.opt_saving_vs_max >= 0.5
