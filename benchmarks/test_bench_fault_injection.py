"""Benchmark E11 (ablation) — Monte-Carlo fault injection vs. analytic model.

The paper takes per-process failure probabilities from fault-injection tools;
this repository substitutes a Monte-Carlo campaign over an abstract processor
model.  The benchmark measures the campaign's throughput and checks that the
empirical estimates agree with the analytic fault model used by the synthetic
experiments.
"""

from __future__ import annotations

from repro.experiments.results import format_table
from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.injection import FaultInjectionCampaign
from repro.faults.processor import ProcessorModel


def _run_campaign():
    processor = ProcessorModel(
        name="ecu",
        flip_flops=50_000,
        upset_rate_per_ff_cycle=2e-12,
        clock_mhz=100.0,
        architectural_derating=0.1,
    )
    plan = SelectiveHardeningPlan.linear(5, max_hardened_fraction=0.99, max_slowdown_percent=25.0)
    campaign = FaultInjectionCampaign(runs=20_000, seed=123)
    rows = []
    for level in plan.levels:
        hardened = apply_selective_hardening(processor, plan, level)
        estimate = campaign.inject(hardened, wcet_ms=10.0)
        analytic = hardened.failure_probability(10.0)
        rows.append(
            {
                "level": level,
                "estimate": estimate.failure_probability,
                "analytic": analytic,
                "interval": estimate.confidence_interval(z=4.0),
            }
        )
    return rows


def test_bench_fault_injection_campaign(benchmark):
    rows = benchmark.pedantic(_run_campaign, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["hardening level", "injected p", "analytic p"],
            [[row["level"], f"{row['estimate']:.3e}", f"{row['analytic']:.3e}"] for row in rows],
            title="Fault-injection campaign vs. analytic fault model (20k runs/level)",
        )
    )

    # The analytic value must fall inside the campaign's confidence interval,
    # and hardening must monotonically reduce the estimated failure rate from
    # the baseline to the most hardened level.
    for row in rows:
        low, high = row["interval"]
        assert low <= row["analytic"] <= high
    assert rows[0]["estimate"] >= rows[-1]["estimate"]
