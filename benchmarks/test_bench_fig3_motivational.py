"""Benchmark E1 — Fig. 2 / Fig. 3: hardware recovery vs. software recovery.

Regenerates the single-process motivational example: for each h-version of
node N1 the number of re-executions required by the SFP analysis, the
worst-case schedule length and the cost.  Expected paper values: k = 6 / 2 / 1,
worst-case delays 680 / 340 / 340 ms, only the two hardened versions meet the
360 ms deadline.
"""

from __future__ import annotations

from repro.experiments.motivational import evaluate_fig3_alternatives
from repro.experiments.results import format_table


def test_bench_fig3_hardware_vs_software_recovery(benchmark):
    outcomes = benchmark.pedantic(evaluate_fig3_alternatives, rounds=3, iterations=1)

    rows = [
        [
            outcome.label,
            outcome.reexecutions["N1"],
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for outcome in outcomes
    ]
    print()
    print(
        format_table(
            ["h-version", "k", "worst-case SL (ms)", "cost", "schedulable"],
            rows,
            title="Fig. 3 — hardware vs. software recovery (paper: k=6/2/1, SL=680/340/340)",
        )
    )

    by_label = {outcome.label: outcome for outcome in outcomes}
    assert by_label["N1^1"].reexecutions["N1"] == 6
    assert by_label["N1^2"].reexecutions["N1"] == 2
    assert by_label["N1^3"].reexecutions["N1"] == 1
    assert by_label["N1^1"].schedule_length == 680.0
    assert by_label["N1^2"].schedule_length == 340.0
    assert by_label["N1^3"].schedule_length == 340.0
    assert not by_label["N1^1"].schedulable
    assert by_label["N1^2"].schedulable and by_label["N1^3"].schedulable
