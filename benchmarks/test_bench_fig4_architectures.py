"""Benchmark E2 — Fig. 4: architecture alternatives for the Fig. 1 application.

Regenerates the five alternatives (a)-(e) with their hardening levels,
re-execution counts, worst-case schedule lengths, costs and schedulability.
Expected paper values: costs 72/32/40/64/80, only (a) and (e) schedulable,
so the distributed architecture with intermediate hardening (a) wins.
"""

from __future__ import annotations

from repro.experiments.motivational import evaluate_fig4_alternatives
from repro.experiments.results import format_table


def test_bench_fig4_architecture_alternatives(benchmark):
    outcomes = benchmark.pedantic(evaluate_fig4_alternatives, rounds=3, iterations=1)

    rows = [
        [
            label,
            ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
            ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for label, outcome in outcomes.items()
    ]
    print()
    print(
        format_table(
            ["alt", "h-versions", "k", "worst-case SL (ms)", "cost", "schedulable"],
            rows,
            title="Fig. 4 — architecture alternatives (paper: only a and e schedulable)",
        )
    )

    assert [outcomes[label].cost for label in "abcde"] == [72.0, 32.0, 40.0, 64.0, 80.0]
    assert [outcomes[label].schedulable for label in "abcde"] == [
        True,
        False,
        False,
        False,
        True,
    ]
    assert outcomes["a"].cost < outcomes["e"].cost
