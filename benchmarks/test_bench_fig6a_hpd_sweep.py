"""Benchmark E4 — Fig. 6a: % accepted architectures vs. HPD (SER=1e-11, ArC=20).

Paper series (150 applications): MIN stays at 76 % regardless of HPD, MAX
drops from 71 % to 41 % as HPD grows from 5 % to 100 %, OPT dominates with
94 % down to 84 %.  The laptop-scale run uses the ``fast`` preset (see
EXPERIMENTS.md); the asserted properties are the qualitative shape.
"""

from __future__ import annotations

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import PAPER_HPD_VALUES, render_hpd_sweep


def test_bench_fig6a_accepted_vs_hpd(benchmark, acceptance_experiment):
    def run():
        return acceptance_experiment.hpd_sweep(
            ser=SER_MEDIUM, hpd_values=PAPER_HPD_VALUES, max_cost=20.0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_hpd_sweep(
            sweep, "Fig. 6a — % accepted vs. HPD (SER=1e-11, ArC=20), fast preset"
        )
    )
    print("paper (150 apps): HPD 5/25/50/100% -> MIN 76/76/76/76, MAX 71/63/49/41, OPT 94/86/84/84")

    hpd_low, hpd_high = PAPER_HPD_VALUES[0], PAPER_HPD_VALUES[-1]
    # MIN ignores hardening, hence is flat across HPD.
    assert sweep[hpd_low]["MIN"] == sweep[hpd_high]["MIN"]
    # MAX suffers from the performance degradation.
    assert sweep[hpd_high]["MAX"] <= sweep[hpd_low]["MAX"]
    # OPT dominates both baselines at every HPD.
    for values in sweep.values():
        assert values["OPT"] >= values["MIN"]
        assert values["OPT"] >= values["MAX"]
