"""Benchmark E5 — Fig. 6b: % accepted for HPD in {5,25,50,100} x ArC in {15,20,25}.

Paper table (SER=1e-11): MAX improves sharply as the cost cap ArC is relaxed
(e.g. 35 -> 71 -> 92 at HPD=5 %), MIN is insensitive to HPD and only mildly
sensitive to ArC (76/76/82), OPT dominates every cell.
"""

from __future__ import annotations

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import (
    PAPER_ARC_VALUES,
    PAPER_HPD_VALUES,
    render_cost_table,
)


def test_bench_fig6b_cost_table(benchmark, acceptance_experiment):
    def run():
        return acceptance_experiment.cost_table(
            ser=SER_MEDIUM, hpd_values=PAPER_HPD_VALUES, arc_values=PAPER_ARC_VALUES
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_cost_table(table, "Fig. 6b — % accepted per (HPD, ArC), SER=1e-11, fast preset"))
    print(
        "paper (150 apps), HPD=5%: ArC 15/20/25 -> MAX 35/71/92, MIN 76/76/82, OPT 92/94/98"
    )

    arc_low, arc_high = PAPER_ARC_VALUES[0], PAPER_ARC_VALUES[-1]
    for hpd in PAPER_HPD_VALUES:
        # Relaxing the cost cap never hurts any strategy and helps MAX most.
        for strategy in ("MIN", "MAX", "OPT"):
            assert table[hpd][arc_high][strategy] >= table[hpd][arc_low][strategy]
        # OPT dominates both baselines in every cell.
        for arc in PAPER_ARC_VALUES:
            cell = table[hpd][arc]
            assert cell["OPT"] >= cell["MIN"]
            assert cell["OPT"] >= cell["MAX"]
