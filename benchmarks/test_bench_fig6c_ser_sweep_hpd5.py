"""Benchmark E6 — Fig. 6c: % accepted architectures vs. SER (HPD=5 %, ArC=20).

Paper series: at SER=1e-12 the MIN strategy is as good as OPT (software fault
tolerance alone reaches the reliability goal); at SER=1e-11 OPT starts to pull
ahead; at SER=1e-10 OPT is significantly better than both MIN and MAX.
"""

from __future__ import annotations

from repro.experiments.synthetic import PAPER_SER_VALUES, render_hpd_sweep


def test_bench_fig6c_accepted_vs_ser_hpd5(benchmark, acceptance_experiment):
    def run():
        return acceptance_experiment.ser_sweep(
            hpd=5.0, ser_values=PAPER_SER_VALUES, max_cost=20.0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_hpd_sweep(
            sweep, "Fig. 6c — % accepted vs. SER (HPD=5%, ArC=20), fast preset"
        )
    )
    print("paper shape: OPT == MIN at 1e-12, OPT > MIN at 1e-11, OPT >> MIN at 1e-10")

    ser_low, ser_medium, ser_high = PAPER_SER_VALUES
    # Software-only fault tolerance degrades as the error rate grows ...
    assert sweep[ser_high]["MIN"] <= sweep[ser_low]["MIN"]
    # ... while OPT keeps dominating everywhere.
    for values in sweep.values():
        assert values["OPT"] >= values["MIN"]
        assert values["OPT"] >= values["MAX"]
    # At the highest error rate the gap between OPT and MIN is the largest.
    gaps = {ser: sweep[ser]["OPT"] - sweep[ser]["MIN"] for ser in PAPER_SER_VALUES}
    assert gaps[ser_high] >= gaps[ser_low]
