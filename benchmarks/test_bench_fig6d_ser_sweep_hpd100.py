"""Benchmark E7 — Fig. 6d: % accepted architectures vs. SER (HPD=100 %, ArC=20).

Same sweep as Fig. 6c but with the harshest hardening performance degradation:
the MAX strategy is hurt across the board (its nodes are both expensive and
slow), while OPT still dominates because it only hardens where the schedule
can afford it.
"""

from __future__ import annotations

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import PAPER_SER_VALUES, render_hpd_sweep


def test_bench_fig6d_accepted_vs_ser_hpd100(benchmark, acceptance_experiment):
    def run():
        return acceptance_experiment.ser_sweep(
            hpd=100.0, ser_values=PAPER_SER_VALUES, max_cost=20.0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_hpd_sweep(
            sweep, "Fig. 6d — % accepted vs. SER (HPD=100%, ArC=20), fast preset"
        )
    )
    print("paper shape: MAX is hurt by HPD=100% at every SER; OPT still dominates")

    for values in sweep.values():
        assert values["OPT"] >= values["MIN"]
        assert values["OPT"] >= values["MAX"]

    # With HPD=100 % the MAX strategy can never beat its own HPD=5 % numbers
    # (cross-check against the Fig. 6c sweep cached in the same experiment).
    gentle = acceptance_experiment.ser_sweep(
        hpd=5.0, ser_values=(SER_MEDIUM,), max_cost=20.0
    )
    assert sweep[SER_MEDIUM]["MAX"] <= gentle[SER_MEDIUM]["MAX"]
