"""Benchmark E13 (performance) — list scheduler scaling with application size.

Measures the static scheduling of synthetic applications of 20 and 40
processes (the two sizes used in the paper's evaluation) onto a two-node
architecture, including bus scheduling and recovery-slack computation.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.mapping import MappingAlgorithm
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark
from repro.scheduling.list_scheduler import ListScheduler


@pytest.mark.parametrize("n_processes", [20, 40])
def test_bench_list_scheduler_scaling(benchmark, n_processes):
    instance = generate_benchmark(
        seed=7, config=BenchmarkConfig(n_processes=n_processes, n_node_types=3)
    )
    node_types, profile = build_platform(instance, 1e-11, 25.0)
    architecture = Architecture([Node(nt.name, nt) for nt in node_types[:2]])
    architecture.set_min_hardening()
    application = instance.application
    mapping = MappingAlgorithm().initial_mapping(application, architecture, profile)
    budgets = {node.name: 2 for node in architecture}
    scheduler = ListScheduler()

    schedule = benchmark(
        scheduler.schedule, application, architecture, mapping, profile, budgets
    )

    schedule.validate()
    assert len(schedule.processes) == n_processes
