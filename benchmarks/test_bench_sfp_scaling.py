"""Benchmark E12 (performance) — SFP analysis scaling.

The SFP analysis sits in the innermost loop of every heuristic (it is invoked
for every hardening vector of every mapping move), so its cost matters.  This
benchmark measures formula (4) — the per-node exceedance probability — for a
node hosting 40 processes with a re-execution budget of 6, i.e. the largest
configuration the paper's synthetic experiments produce.
"""

from __future__ import annotations

import pytest

from repro.core.sfp import probability_exceeds


@pytest.mark.parametrize("processes, budget", [(10, 2), (40, 6)])
def test_bench_sfp_exceedance_scaling(benchmark, processes, budget):
    probabilities = [1e-5 * (1 + (index % 7)) for index in range(processes)]

    result = benchmark(probability_exceeds, probabilities, budget)

    assert 0.0 <= result <= 1.0
    # More faults than the budget is astronomically unlikely at these rates.
    assert result < 1e-3
