"""Benchmark E14 (validation) — Monte-Carlo validation of the SFP analysis.

Takes the Fig. 4a design (two nodes at hardening level 2, one re-execution
each) and a synthetic design produced by the OPT strategy, replays each static
schedule for thousands of iterations with faults injected at the profile's
probabilities, and checks that

* the observed rate of iterations with more faults than the budgets can absorb
  stays below the SFP analysis' bound, and
* whenever the budgets suffice, every node finishes within its analytic worst
  case (root completion + shared recovery slack).
"""

from __future__ import annotations

from repro.experiments.motivational import (
    fig1_application,
    fig1_node_types,
    fig1_profile,
)
from repro.core.architecture import Architecture, Node
from repro.core.mapping_model import ProcessMapping
from repro.experiments.results import format_table
from repro.scheduling.list_scheduler import ListScheduler
from repro.simulation import FaultScenarioSimulator


def _validate_fig4a(iterations: int = 20_000):
    application = fig1_application()
    node_types = {nt.name: nt for nt in fig1_node_types()}
    profile = fig1_profile()
    architecture = Architecture(
        [Node("N1", node_types["N1"], hardening=2), Node("N2", node_types["N2"], hardening=2)]
    )
    mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})
    budgets = {"N1": 1, "N2": 1}
    schedule = ListScheduler().schedule(application, architecture, mapping, profile, budgets)
    simulator = FaultScenarioSimulator(iterations=iterations, seed=2009)
    return simulator.simulate(application, architecture, mapping, profile, schedule)


def test_bench_simulation_validates_sfp_and_slack(benchmark):
    summary = benchmark.pedantic(_validate_fig4a, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["simulated iterations", summary.iterations],
                ["iterations with faults", summary.iterations_with_faults],
                ["faults injected", summary.total_faults_injected],
                ["unrecovered iterations", summary.unrecovered_iterations],
                ["observed failure rate", f"{summary.observed_failure_rate:.3e}"],
                ["SFP bound per iteration", f"{summary.predicted_failure_bound:.3e}"],
                ["worst-case violations", summary.worst_case_violations],
                ["max completion / analytic bound", f"{summary.max_relative_completion:.3f}"],
            ],
            title="Monte-Carlo validation of the Fig. 4a design (k=1 per node)",
        )
    )

    assert summary.respects_sfp_bound
    assert summary.timing_validated
    assert summary.max_relative_completion <= 1.0 + 1e-9
