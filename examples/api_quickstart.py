"""Quickstart for the ``repro.api`` session layer.

Runs the Fig. 6a scenario twice — once through the one-shot ``api.run``
helper and once through an explicit ``Session`` shared with Fig. 6b (which
then reuses the already-computed settings) — and shows the structured
``RunReport`` round-trip.

Run from the repository root:

    PYTHONPATH=src python examples/api_quickstart.py
"""

from __future__ import annotations

from repro.api import RunConfig, RunReport, Session, list_scenarios, run


def main() -> None:
    print("registered scenarios:")
    for spec in list_scenarios():
        print(f"  {spec.scenario_id:<16} {spec.title}")
    print()

    # One-shot: run a scenario under a declarative config.
    config = RunConfig(preset="smoke", sfp_kernel="auto")
    report = run("fig6a", config)
    print(report.text)
    print()
    print(
        f"kernels: {report.kernels}, "
        f"{report.cache['points_computed']} design points computed in "
        f"{report.timings['wall_clock_seconds']:.2f} s"
    )

    # The report round-trips losslessly through JSON.
    assert RunReport.from_json(report.to_json()) == report

    # Shared session: Fig. 6b reuses the settings Fig. 6a computed.
    with Session(RunConfig(preset="smoke")) as session:
        session.run("fig6a")
        fig6b = session.run("fig6b")
    print()
    print(
        f"shared-session Fig. 6b wall clock: "
        f"{fig6b.timings['wall_clock_seconds']:.3f} s "
        f"(settings reused from Fig. 6a)"
    )


if __name__ == "__main__":
    main()
