"""Cruise-controller case study: compare MIN, MAX and OPT on a fixed platform.

Reconstructs the paper's 32-process vehicle cruise controller mapped on three
ECUs (ETM, ABS, TCM) with five hardening levels each, and reproduces the
published comparison: software-only fault tolerance (MIN) misses the 300 ms
deadline, full hardening (MAX) works but is expensive, and the paper's OPT
trade-off is schedulable at a fraction of the cost.

The script also exports the task graph and the OPT schedule as Graphviz DOT
files next to this script (render them with ``dot -Tpng`` if Graphviz is
installed).

Run with:

    python examples/cruise_controller.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.cruise_control import (
    cruise_controller_application,
    run_cruise_controller_study,
)
from repro.experiments.results import format_table
from repro.io.dot import task_graph_to_dot


def main() -> None:
    application = cruise_controller_application()
    graph = application.graphs[0]
    print(
        f"cruise controller: {application.number_of_processes()} processes, "
        f"{len(graph.messages)} messages, deadline {application.deadline:.0f} ms, "
        f"reliability goal {application.reliability_goal}"
    )

    study = run_cruise_controller_study()
    rows = []
    for strategy, outcome in study.outcomes.items():
        rows.append(
            [
                strategy,
                "yes" if outcome.schedulable else "no",
                f"{outcome.cost:.0f}" if outcome.schedulable else "-",
                f"{outcome.schedule_length:.1f}",
                ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
                ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            ]
        )
    print()
    print(
        format_table(
            ["strategy", "schedulable", "cost", "worst-case SL (ms)", "h-versions", "re-executions"],
            rows,
            title="MIN vs. MAX vs. OPT on the three-ECU cruise controller",
        )
    )
    print()
    print(f"OPT saves {study.opt_saving_vs_max * 100:.1f}% of the MAX cost (paper: ~66%)")

    output = Path(__file__).with_name("cruise_controller_taskgraph.dot")
    output.write_text(task_graph_to_dot(graph), encoding="utf-8")
    print(f"task graph written to {output}")


if __name__ == "__main__":
    main()
