"""Design-space exploration over technology settings (a miniature Fig. 6).

Generates a handful of synthetic applications with the paper's benchmark
generator, then sweeps the soft error rate (SER) of the fabrication technology
and compares the acceptance rate of the MIN / MAX / OPT strategies under a
maximum architecture cost — i.e. a scaled-down version of the experiments
behind Fig. 6c/6d of the paper.

Run with:

    python examples/design_space_exploration.py [n_applications]
"""

from __future__ import annotations

import sys

from repro.core.fault_model import SER_HIGH, SER_LOW, SER_MEDIUM
from repro.experiments.results import format_bar_chart
from repro.experiments.synthetic import AcceptanceExperiment, ExperimentPreset


def main(n_applications: int = 6) -> None:
    preset = ExperimentPreset(
        n_applications=n_applications,
        process_counts=(16, 24),
        n_node_types=3,
        mapping_iterations=3,
        mapping_stop_after=2,
        mapping_candidates=2,
    )
    experiment = AcceptanceExperiment(preset=preset)
    max_cost = 20.0

    print(
        f"running MIN / MAX / OPT on {n_applications} synthetic applications "
        f"(ArC = {max_cost:.0f}, HPD = 25%) for three technologies..."
    )
    series = {}
    for label, ser in (("SER=1e-12", SER_LOW), ("SER=1e-11", SER_MEDIUM), ("SER=1e-10", SER_HIGH)):
        setting = experiment.run_setting(ser, hpd=25.0)
        series[label] = setting.acceptance_percent(max_cost)
        costs = {
            strategy: setting.average_cost(strategy) for strategy in ("MIN", "MAX", "OPT")
        }
        print(
            f"  {label}: accepted {series[label]}  "
            f"average feasible cost {', '.join(f'{k}={v:.1f}' for k, v in costs.items())}"
        )

    print()
    print(format_bar_chart(series, title="% accepted implementations per technology"))
    print()
    print(
        "expected shape (paper Fig. 6c/6d): OPT matches MIN at the lowest error rate\n"
        "and pulls clearly ahead of both MIN and MAX as the error rate grows."
    )


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    main(count)
