"""Fault-injection campaign: derive p_ijh tables from a processor model.

The paper assumes that the per-process failure probabilities on every
h-version come from fault-injection experiments.  This example shows the
substitute shipped with the library: an abstract processor model whose
flip-flops are selectively hardened, a Monte-Carlo injection campaign that
estimates the failure probability of each execution, and the resulting
execution profile being fed straight into the SFP analysis to size the number
of re-executions.

Run with:

    python examples/fault_injection_campaign.py
"""

from __future__ import annotations

from repro import Application, Architecture, Message, Node, Process, ReExecutionOpt
from repro.core.architecture import linear_cost_node_type
from repro.core.mapping_model import ProcessMapping
from repro.experiments.results import format_table
from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.injection import FaultInjectionCampaign
from repro.faults.processor import ProcessorModel
from repro.scheduling.list_scheduler import ListScheduler


def main() -> None:
    # A small control application: sense -> compute -> actuate.
    application = Application(
        name="injection-demo",
        deadline=120.0,
        reliability_goal=1.0 - 1e-5,
        recovery_overhead=1.5,
    )
    graph = application.new_graph("loop")
    graph.add_process(Process("sense", nominal_wcet=6.0))
    graph.add_process(Process("compute", nominal_wcet=14.0))
    graph.add_process(Process("actuate", nominal_wcet=8.0))
    graph.add_message(Message("m1", "sense", "compute", transmission_time=0.5))
    graph.add_message(Message("m2", "compute", "actuate", transmission_time=0.5))

    # The ECU and its hardening ladder (5 h-versions).
    ecu = ProcessorModel(
        name="ECU",
        flip_flops=80_000,
        upset_rate_per_ff_cycle=2e-12,
        clock_mhz=200.0,
        architectural_derating=0.1,
    )
    plan = SelectiveHardeningPlan.linear(5, max_hardened_fraction=0.99, max_slowdown_percent=25.0)
    node_types = [linear_cost_node_type("ECU", base_cost=3.0, levels=5)]

    print("per-cycle error probability per hardening level:")
    for level in plan.levels:
        hardened = apply_selective_hardening(ecu, plan, level)
        print(f"  h={level}: {hardened.error_probability_per_cycle():.3e}")

    campaign = FaultInjectionCampaign(runs=20_000, seed=2009)
    profile = campaign.profile_application(application, node_types, {"ECU": ecu}, plan)

    rows = []
    for process in application.process_names():
        for level in (1, 3, 5):
            rows.append(
                [
                    process,
                    level,
                    f"{profile.wcet(process, 'ECU', level):.2f}",
                    f"{profile.failure_probability(process, 'ECU', level):.3e}",
                ]
            )
    print()
    print(
        format_table(
            ["process", "h", "WCET (ms)", "injected failure probability"],
            rows,
            title="Execution profile estimated by the Monte-Carlo campaign",
        )
    )

    # Use the injected profile exactly like the analytic one: how many
    # re-executions does each hardening level need to reach the goal?
    print()
    print("re-executions required to meet rho = 1 - 1e-5 per hour:")
    mapping = ProcessMapping({name: "ECU" for name in application.process_names()})
    for level in plan.levels:
        architecture = Architecture([Node("ECU", node_types[0], hardening=level)])
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        if decision is None:
            print(f"  h={level}: reliability goal unreachable")
            continue
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, decision.reexecutions
        )
        verdict = "meets deadline" if schedule.length <= application.deadline else "misses deadline"
        print(
            f"  h={level}: k={decision.reexecutions['ECU']}, worst-case schedule "
            f"{schedule.length:.1f} ms ({verdict})"
        )


if __name__ == "__main__":
    main()
