"""Hardening vs. software redundancy trade-off for a single process.

Reproduces the reasoning behind Fig. 2 and Fig. 3 of the paper: for one
process on one node, each additional hardening level reduces the number of
re-executions the SFP analysis demands, but slows the processor down and
raises its cost.  The script prints the trade-off table and additionally
compares plain re-execution against the checkpointing policy extension (how
much worst-case time equidistant checkpoints would save for the same fault
count).

Run with:

    python examples/hardening_tradeoff.py
"""

from __future__ import annotations

from repro.experiments.motivational import (
    evaluate_fig3_alternatives,
    fig3_application,
    fig3_node_type,
    fig3_profile,
)
from repro.experiments.results import format_table
from repro.policies.checkpointing import CheckpointingPlan


def main() -> None:
    application = fig3_application()
    node_type = fig3_node_type()
    profile = fig3_profile()

    rows = []
    checkpoint_rows = []
    for outcome in evaluate_fig3_alternatives():
        level = outcome.hardening["N1"]
        wcet = profile.wcet("P1", "N1", level)
        probability = profile.failure_probability("P1", "N1", level)
        k = outcome.reexecutions["N1"]
        rows.append(
            [
                f"N1^{level}",
                f"{wcet:.0f}",
                f"{probability:.0e}",
                k,
                f"{outcome.schedule_length:.0f}",
                f"{outcome.cost:.0f}",
                "yes" if outcome.schedulable else "no",
            ]
        )
        plan = CheckpointingPlan.optimal(
            "P1",
            wcet=wcet,
            faults=k,
            checkpoint_overhead=5.0,
            recovery_overhead=application.recovery_overhead_of("P1"),
        )
        checkpoint_rows.append(
            [
                f"N1^{level}",
                k,
                plan.checkpoints,
                f"{plan.reexecution_worst_case:.0f}",
                f"{plan.worst_case_execution:.0f}",
                f"{plan.saving_over_reexecution():.0f}",
            ]
        )

    print(
        format_table(
            ["h-version", "WCET (ms)", "p", "k", "worst-case SL (ms)", "cost", "schedulable"],
            rows,
            title="Hardening vs. software re-execution (the paper's Fig. 3)",
        )
    )
    print()
    print(
        format_table(
            ["h-version", "faults", "optimal checkpoints", "re-execution WC (ms)", "checkpointing WC (ms)", "saving (ms)"],
            checkpoint_rows,
            title="Extension: what equidistant checkpointing would save (chi = 5 ms)",
        )
    )
    print()
    print(
        "Reading: the unhardened node needs 6 re-executions and misses the deadline;\n"
        "one hardening step cuts that to 2 re-executions and is the cheapest design\n"
        "that meets both the deadline and the reliability goal — exactly the paper's\n"
        "motivation for trading hardware against software redundancy."
    )


if __name__ == "__main__":
    main()
