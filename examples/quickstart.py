"""Quickstart: optimize the paper's four-process example application.

This example builds the application of Fig. 1 (four processes, two candidate
node types with three h-versions each), runs the paper's OPT design strategy
and prints the selected architecture, hardening levels, re-execution counts
and the static schedule.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Application,
    DesignStrategy,
    ExecutionProfile,
    MappingAlgorithm,
    Message,
    NodeType,
    HVersion,
    Process,
)


def build_application() -> Application:
    """The Fig. 1 application: deadline 360 ms, rho = 1 - 1e-5, mu = 15 ms."""
    application = Application(
        name="quickstart",
        deadline=360.0,
        reliability_goal=1.0 - 1e-5,
        recovery_overhead=15.0,
    )
    graph = application.new_graph("G1")
    for name in ("P1", "P2", "P3", "P4"):
        graph.add_process(Process(name))
    graph.add_message(Message("m1", "P1", "P2", transmission_time=10.0))
    graph.add_message(Message("m2", "P1", "P3", transmission_time=10.0))
    graph.add_message(Message("m3", "P2", "P4", transmission_time=10.0))
    graph.add_message(Message("m4", "P3", "P4", transmission_time=10.0))
    return application


def build_platform() -> tuple[list[NodeType], ExecutionProfile]:
    """Two node types with three h-versions each and the Fig. 1 tables."""
    node_types = [
        NodeType("N1", [HVersion(1, 16.0), HVersion(2, 32.0), HVersion(3, 64.0)]),
        NodeType("N2", [HVersion(1, 20.0), HVersion(2, 40.0), HVersion(3, 80.0)]),
    ]
    wcet = {
        "N1": {"P1": (60, 75, 90), "P2": (75, 90, 105), "P3": (60, 75, 90), "P4": (75, 90, 105)},
        "N2": {"P1": (50, 60, 75), "P2": (65, 75, 90), "P3": (50, 60, 75), "P4": (65, 75, 90)},
    }
    failure = {
        "N1": {"P1": 1.2e-3, "P2": 1.3e-3, "P3": 1.4e-3, "P4": 1.6e-3},
        "N2": {"P1": 1.0e-3, "P2": 1.2e-3, "P3": 1.2e-3, "P4": 1.3e-3},
    }
    profile = ExecutionProfile()
    for node, processes in wcet.items():
        for process, times in processes.items():
            for level, time in enumerate(times, start=1):
                # Each hardening level reduces the failure probability by
                # roughly two orders of magnitude (as in the paper's tables).
                probability = failure[node][process] * 100.0 ** (-(level - 1))
                profile.add_entry(process, node, level, float(time), probability)
    return node_types, profile


def main() -> None:
    application = build_application()
    node_types, profile = build_platform()

    strategy = DesignStrategy(
        node_types,
        mapping_algorithm=MappingAlgorithm(max_iterations=6, stop_after_no_improvement=3),
    )
    result = strategy.explore(application, profile)

    print(result.summary())
    print()
    print(f"architecture cost      : {result.cost:.1f} units")
    print(f"worst-case schedule    : {result.schedule_length:.1f} ms (deadline {result.deadline:.0f} ms)")
    print(f"meets reliability goal : {result.meets_reliability}")
    print()
    print("hardening / re-executions per node:")
    for node, level in sorted(result.hardening.items()):
        print(f"  {node}: h-version {level}, k = {result.reexecutions.get(node, 0)}")
    print()
    print("process mapping:")
    for process, node in sorted(result.mapping.as_dict().items()):
        print(f"  {process} -> {node}")
    print()
    print("static schedule (fault-free windows + recovery slack):")
    print(result.schedule.as_gantt_text())


if __name__ == "__main__":
    main()
