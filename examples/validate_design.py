"""Validate an optimized design with Monte-Carlo fault injection.

The design flow promises two things: the reliability goal is met (SFP
analysis) and the deadline holds in the worst case (recovery-slack schedule).
This example closes the loop: it optimizes the paper's four-process example
with the OPT strategy and then *simulates* the resulting static schedule for
tens of thousands of iterations with faults injected at the profile's
probabilities, reporting how the observed behaviour compares with the
analytic bounds.

Run with:

    python examples/validate_design.py
"""

from __future__ import annotations

from repro import DesignStrategy, FaultScenarioSimulator, MappingAlgorithm
from repro.core.architecture import Architecture, Node
from repro.experiments.motivational import fig1_application, fig1_node_types, fig1_profile
from repro.experiments.results import format_table
from repro.scheduling.list_scheduler import ListScheduler


def main() -> None:
    application = fig1_application()
    node_types = list(fig1_node_types())
    profile = fig1_profile()

    # 1. Optimize: architecture, hardening, mapping, re-executions, schedule.
    strategy = DesignStrategy(
        node_types, mapping_algorithm=MappingAlgorithm(max_iterations=6)
    )
    design = strategy.explore(application, profile)
    print(design.summary())

    # 2. Rebuild the concrete architecture the design describes.
    types_by_name = {node_type.name: node_type for node_type in node_types}
    architecture = Architecture(
        [
            Node(name, types_by_name[type_name], hardening=design.hardening[name])
            for name, type_name in design.node_types.items()
        ]
    )
    schedule = ListScheduler().schedule(
        application, architecture, design.mapping, profile, design.reexecutions
    )

    # 3. Simulate 50 000 application iterations with fault injection.
    simulator = FaultScenarioSimulator(iterations=50_000, seed=42)
    summary = simulator.simulate(
        application, architecture, design.mapping, profile, schedule
    )

    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["iterations simulated", summary.iterations],
                ["iterations with at least one fault", summary.iterations_with_faults],
                ["total faults injected", summary.total_faults_injected],
                ["iterations exceeding the re-execution budgets", summary.unrecovered_iterations],
                ["observed per-iteration failure rate", f"{summary.observed_failure_rate:.3e}"],
                ["SFP bound per iteration", f"{summary.predicted_failure_bound:.3e}"],
                ["nodes ever later than the analytic worst case", summary.worst_case_violations],
                ["max node completion / analytic bound", f"{summary.max_relative_completion:.3f}"],
            ],
            title="Monte-Carlo validation of the optimized design",
        )
    )
    print()
    if summary.respects_sfp_bound and summary.timing_validated:
        print(
            "validation PASSED: the simulated behaviour stays within both the SFP\n"
            "reliability bound and the recovery-slack timing bound."
        )
    else:
        print("validation FAILED — see the counters above.")


if __name__ == "__main__":
    main()
