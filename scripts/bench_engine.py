#!/usr/bin/env python
"""Benchmark smoke run: the ``fig6a`` scenario, per kernel backend.

Every sweep is executed through the ``repro.api`` session layer — one
:class:`RunReport` per (SFP kernel × scheduler kernel × store) combination —
so this script is also an end-to-end exercise of the declarative RunConfig
path.  Acceptance payloads must agree bit for bit across backends of both
families (they are required to be bit-identical — a disagreement fails the
run).  A kernel microbenchmark times the raw SFP primitives, and a
cold-vs-warm pass against a throwaway persistent design-point store records
what a second run of the same sweep saves.

Writes a JSON timing artifact used by CI for trajectory tracking, and
appends one line per run to a JSONL history file (git sha, kernel pairs,
batch fill rate, wall clocks).  The history is the regression gate: a pair
that runs more than ``--max-regression`` slower than the previous comparable
entry (same benchmark, same machine/python, same local-vs-CI source) fails
the run.  Run from the repository root:

    PYTHONPATH=src python scripts/bench_engine.py --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro import api
from repro.kernels import (
    active_sched_kernel,
    get_kernel,
    kernel_names,
    sched_kernel_names,
)

#: Representative node workloads for the kernel microbenchmark: (per-process
#: failure probabilities, re-execution budget).
MICRO_CASES = (
    ((1.2e-5, 1.3e-5, 1.4e-5), 2),
    ((3.1e-7, 2.9e-7, 8.8e-8, 4.0e-7, 1.1e-7), 4),
    ((2.0e-9,) * 10, 6),
)
MICRO_ROUNDS = 2000


def _run_sweep(
    preset: str,
    sfp_kernel: str,
    store_dir=None,
    sched_kernel=None,
) -> dict:
    """One ``fig6a`` scenario run through the API; returns a timing payload.

    The RunConfig pins the kernel selection for the run's scope only — no
    process-global state to set and restore.
    """
    config = api.RunConfig(
        preset=preset,
        sfp_kernel=sfp_kernel,
        sched_kernel=sched_kernel,
        cache_dir=store_dir,
    )
    with api.Session(config) as session:
        # Build the benchmark suite before the timed runner: generation is
        # identical across kernels and would otherwise dilute the per-kernel
        # speedups (the report's wall clock then measures the sweep only,
        # matching the pre-API benchmark trajectory).
        session.experiment()
        report = session.run("fig6a")
    return {
        "wall_clock_seconds": round(report.timings["wall_clock_seconds"], 3),
        "cache": report.cache,
        "acceptance": report.results["acceptance"],
        "kernels": report.kernels,
    }


#: Scaling curve of the synthetic-random family: the DSE loop's cost is
#: dominated by neighbourhood evaluation, so a single size hides how the
#: batched kernels amortize with problem size.  Each size is its own gated
#: history pair key (``synthetic-random-n<N>:batch+batch``).
SYNTHETIC_RANDOM_SCALE = (50, 200, 800)
#: Sizes also run on the reference pair for the bit-identity gate; the
#: largest point is timing-only (the reference pair there roughly doubles
#: the whole benchmark run for a check two smaller sizes already provide).
SYNTHETIC_RANDOM_GATED = (50, 200)
SYNTHETIC_RANDOM_SEED = 7


def _run_synthetic_random(
    n_processes: int,
    sfp_kernel: str,
    sched_kernel: Optional[str] = None,
    store_dir=None,
) -> dict:
    """One ``synthetic-random`` family run (fast preset, fixed seed)."""
    config = api.RunConfig(
        sfp_kernel=sfp_kernel,
        sched_kernel=sched_kernel,
        cache_dir=store_dir,
        scenario_params={
            "n_processes": n_processes,
            "seed": SYNTHETIC_RANDOM_SEED,
        },
    )
    report = api.run("synthetic-random", config)
    return {
        "wall_clock_seconds": round(report.timings["wall_clock_seconds"], 3),
        "cache": report.cache,
        "strategies": report.results["strategies"],
        "kernels": report.kernels,
    }


def _microbench(kernel_name: str) -> dict:
    """Raw primitive throughput (µs/op) outside the engine's memo tables."""
    kernel = get_kernel(kernel_name)
    start = time.perf_counter()
    for _ in range(MICRO_ROUNDS):
        for probabilities, budget in MICRO_CASES:
            kernel.probability_exceeds(probabilities, budget)
    exceeds_us = (time.perf_counter() - start) / (MICRO_ROUNDS * len(MICRO_CASES)) * 1e6
    exceedances = tuple(
        kernel.probability_exceeds(probabilities, budget)
        for probabilities, budget in MICRO_CASES
    )
    start = time.perf_counter()
    for _ in range(MICRO_ROUNDS):
        kernel.system_failure(exceedances)
    union_us = (time.perf_counter() - start) / MICRO_ROUNDS * 1e6
    return {
        "probability_exceeds_us": round(exceeds_us, 2),
        "system_failure_us": round(union_us, 2),
    }


def _git_sha() -> str:
    """Short commit hash of the working tree, or ``unknown`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return completed.stdout.strip() or "unknown"


def _pair_entry(run: dict) -> dict:
    """The per-pair slice of one sweep run that the history series tracks."""
    return {
        "wall_clock_seconds": run["wall_clock_seconds"],
        "batch_rows": run["cache"]["batch_rows"],
        "batch_fill_rate": round(run["cache"]["batch_fill_rate"], 4),
    }


def _append_history(
    path: Path, record: dict, max_regression: Optional[float]
) -> List[str]:
    """Append ``record`` to the JSONL series; gate against the previous entry.

    Only entries from the same benchmark on the same machine/python and the
    same source (local vs CI) are comparable — the first entry of a new
    environment records a baseline and gates nothing.
    """
    previous = None
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if all(
                entry.get(key) == record[key]
                for key in ("benchmark", "machine", "python", "source")
            ):
                previous = entry
    errors = []
    if previous is not None and max_regression is not None:
        for pair, timing in record["pairs"].items():
            before = previous.get("pairs", {}).get(pair, {})
            before_seconds = before.get("wall_clock_seconds")
            seconds = timing["wall_clock_seconds"]
            if before_seconds and seconds > before_seconds * (1.0 + max_regression):
                errors.append(
                    f"timing regression: pair {pair} ran {seconds}s vs "
                    f"{before_seconds}s in the previous entry "
                    f"({previous.get('git_sha')}), beyond the "
                    f"{max_regression:.0%} budget"
                )
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_engine.json"),
        help="path of the JSON timing artifact",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "fast"],
        default="fast",
        help="experiment preset to benchmark",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path("BENCH_history.jsonl"),
        help="JSONL timing series to append to (one record per run)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help=(
            "fail when a kernel pair runs this fraction slower than the "
            "previous comparable history entry; negative disables the gate"
        ),
    )
    arguments = parser.parse_args()

    names = kernel_names(available_only=True)
    # The SFP-kernel loop never overrides the scheduler selection, so the
    # headline sweeps run on the ambient choice (REPRO_SCHED_KERNEL or auto)
    # — record that, not the auto-priority winner.
    headline_sched = active_sched_kernel().name
    kernels = {}
    for name in names:
        run = _run_sweep(arguments.preset, name)
        run["micro"] = _microbench(name)
        kernels[name] = run

    errors = []
    reference_run = kernels.get("reference")
    for name, run in kernels.items():
        if reference_run is not None and run["acceptance"] != reference_run["acceptance"]:
            errors.append(f"kernel {name} acceptance differs from reference")
        if run["cache"]["hits"] == 0:
            errors.append(f"kernel {name} reported zero cache hits")
        if reference_run is not None and reference_run["wall_clock_seconds"]:
            run["speedup_vs_reference"] = round(
                reference_run["wall_clock_seconds"] / run["wall_clock_seconds"], 3
            )

    # Scheduler kernel backends: the same sweep per backend, on the fastest
    # SFP kernel.  Any divergence from the reference scheduler's acceptance
    # output is a bit-identity violation and fails the run.
    sched_names = sched_kernel_names(available_only=True)
    sched_kernels = {}
    for name in sched_names:
        sched_kernels[name] = _run_sweep(arguments.preset, names[0], sched_kernel=name)
    sched_reference = sched_kernels.get("reference")
    for name, run in sched_kernels.items():
        if (
            sched_reference is not None
            and run["acceptance"] != sched_reference["acceptance"]
        ):
            errors.append(
                f"scheduler kernel {name} schedule output diverged from reference"
            )
        if sched_reference is not None and sched_reference["wall_clock_seconds"]:
            run["speedup_vs_reference"] = round(
                sched_reference["wall_clock_seconds"] / run["wall_clock_seconds"], 3
            )

    # Combined batched pair: both families' batch backends in one session —
    # the configuration the DSE neighbourhood batching targets.  Same
    # bit-identity gate as the per-family loops, plus a cold-store pass so
    # the history series tracks the end-to-end compute-everything cost.
    batch_pair = None
    if "batch" in names and "batch" in sched_names:
        batch_pair = _run_sweep(arguments.preset, "batch", sched_kernel="batch")
        if (
            reference_run is not None
            and batch_pair["acceptance"] != reference_run["acceptance"]
        ):
            errors.append("batch+batch kernel pair acceptance differs from reference")
        if batch_pair["cache"]["batch_rows"] == 0:
            errors.append("batch+batch kernel pair reported zero batched rows")
        with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as store_dir:
            batch_cold = _run_sweep(
                arguments.preset,
                "batch",
                sched_kernel="batch",
                store_dir=Path(store_dir),
            )
        batch_pair["cold_store_wall_clock_seconds"] = batch_cold[
            "wall_clock_seconds"
        ]

    # Parameterized synthetic-random family: a cold scaling curve on the
    # batched pair — one run per SYNTHETIC_RANDOM_SCALE size against a
    # throwaway store (everything is computed, so the history tracks each
    # size's end-to-end cost and batch fill rate).  The smaller sizes are
    # also gated bit-for-bit against the reference pair; the largest point
    # is timing-only (see SYNTHETIC_RANDOM_GATED).
    synthetic_random = {}
    if "batch" in names and "batch" in sched_names:
        for n_processes in SYNTHETIC_RANDOM_SCALE:
            with tempfile.TemporaryDirectory(prefix="repro-bench-random-") as store_dir:
                run = _run_synthetic_random(
                    n_processes, "batch", sched_kernel="batch", store_dir=Path(store_dir)
                )
            synthetic_random[f"n{n_processes}"] = run
            if n_processes in SYNTHETIC_RANDOM_GATED:
                random_reference = _run_synthetic_random(
                    n_processes, "reference", sched_kernel="reference"
                )
                if run["strategies"] != random_reference["strategies"]:
                    errors.append(
                        f"synthetic-random n={n_processes} batch+batch design "
                        "output diverged from reference"
                    )
            if run["cache"]["batch_cold_rows"] < 2:
                errors.append(
                    f"cold synthetic-random n={n_processes} run saw no "
                    "multi-row cold batch blocks"
                )

    # Persistent-store cold/warm pass on the auto-selected (fastest) kernel.
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store_dir:
        cold = _run_sweep(arguments.preset, names[0], store_dir=Path(store_dir))
        warm = _run_sweep(arguments.preset, names[0], store_dir=Path(store_dir))
    if warm["acceptance"] != kernels[names[0]]["acceptance"]:
        errors.append("warm persistent-store run changed acceptance output")
    if warm["cache"]["disk_hits"] == 0:
        errors.append("warm persistent-store run reported zero disk hits")
    store_report = {
        "cold_wall_clock_seconds": cold["wall_clock_seconds"],
        "warm_wall_clock_seconds": warm["wall_clock_seconds"],
        "warm_disk_hits": warm["cache"]["disk_hits"],
        "warm_entries_loaded": warm["cache"]["disk_entries_loaded"],
        "warm_points_computed": warm["cache"]["points_computed"],
    }

    fastest = kernels[names[0]]
    payload = {
        "benchmark": f"fig6a_hpd_sweep_{arguments.preset}",
        # Backwards-compatible top-level fields: the auto-selected kernel.
        "kernel": names[0],
        "wall_clock_seconds": fastest["wall_clock_seconds"],
        "cache": fastest["cache"],
        "acceptance": fastest["acceptance"],
        "sched_kernel": headline_sched,
        "kernels": kernels,
        "sched_kernels": sched_kernels,
        "persistent_store": store_report,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if batch_pair is not None:
        payload["batch_pair"] = batch_pair
    if synthetic_random:
        payload["synthetic_random"] = synthetic_random
    arguments.output.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    pairs = {
        f"{names[0]}+{headline_sched}": dict(
            _pair_entry(fastest),
            cold_store_wall_clock_seconds=store_report["cold_wall_clock_seconds"],
        )
    }
    if batch_pair is not None:
        pairs["batch+batch"] = dict(
            _pair_entry(batch_pair),
            cold_store_wall_clock_seconds=batch_pair[
                "cold_store_wall_clock_seconds"
            ],
        )
    for size_key, run in synthetic_random.items():
        pairs[f"synthetic-random-{size_key}:batch+batch"] = _pair_entry(run)
    history_record = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": _git_sha(),
        "benchmark": payload["benchmark"],
        "python": payload["python"],
        "machine": payload["machine"],
        "source": "ci" if os.environ.get("GITHUB_ACTIONS") else "local",
        "pairs": pairs,
    }
    max_regression = (
        arguments.max_regression if arguments.max_regression >= 0 else None
    )
    errors.extend(
        _append_history(arguments.history, history_record, max_regression)
    )

    print(json.dumps(payload, indent=2))
    print(f"\nartifact written to {arguments.output}")
    print(f"history entry appended to {arguments.history}")
    for error in errors:
        print(f"ERROR: {error}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
