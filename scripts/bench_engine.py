#!/usr/bin/env python
"""Benchmark smoke run: fast-preset Fig. 6a sweep with the evaluation engine.

Writes a JSON timing artifact (wall clock, cache counters, acceptance
percentages) used by CI for trajectory tracking.  Run from the repository
root:

    PYTHONPATH=src python scripts/bench_engine.py --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import (
    AcceptanceExperiment,
    ExperimentPreset,
    PAPER_HPD_VALUES,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_engine.json"),
        help="path of the JSON timing artifact",
    )
    parser.add_argument(
        "--preset",
        choices=["smoke", "fast"],
        default="fast",
        help="experiment preset to benchmark",
    )
    arguments = parser.parse_args()

    preset = {
        "smoke": ExperimentPreset.smoke,
        "fast": ExperimentPreset.fast,
    }[arguments.preset]()
    experiment = AcceptanceExperiment(preset=preset)

    start = time.perf_counter()
    sweep = experiment.hpd_sweep(
        ser=SER_MEDIUM, hpd_values=PAPER_HPD_VALUES, max_cost=20.0
    )
    wall_clock = time.perf_counter() - start
    cache = experiment.cache_report()

    payload = {
        "benchmark": f"fig6a_hpd_sweep_{arguments.preset}",
        "wall_clock_seconds": round(wall_clock, 3),
        "cache": cache,
        "acceptance": {f"{hpd:g}": values for hpd, values in sweep.items()},
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    arguments.output.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    print(json.dumps(payload, indent=2))
    print(f"\nartifact written to {arguments.output}")
    if cache["hits"] == 0:
        print("ERROR: engine reported zero cache hits")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
