"""Benchmark the full ``repro.lint`` static pass (parse + all rules).

Times ``Project.from_directory`` plus a complete ``run_lint`` over the real
package — the same work ``repro-ftes lint`` does — and appends the median
to the shared ``BENCH_history.jsonl`` series (reusing the history/gating
helpers of ``bench_engine.py``).  The pair key names the rule set
(``lint:R001-R008``), so records across rule-set growth never gate against
each other; same-rule-set records do.

Usage::

    PYTHONPATH=src python scripts/bench_lint.py
    PYTHONPATH=src python scripts/bench_lint.py --jobs 4 --repeat 5
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_engine import _append_history, _git_sha  # noqa: E402

from repro.lint import run_lint  # noqa: E402
from repro.lint.cli import default_package_dir  # noqa: E402
from repro.lint.project import Project  # noqa: E402


def time_full_pass(package_dir: Path, jobs: int, repeat: int) -> List[float]:
    """Wall-clock seconds of ``repeat`` complete parse+lint passes."""
    timings: List[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        project = Project.from_directory(package_dir, jobs=jobs)
        report = run_lint(project)
        timings.append(time.perf_counter() - start)
        if report.checked_modules == 0:
            raise SystemExit(f"no modules found under {package_dir}")
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel parse workers (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--repeat", type=int, default=5, help="timed repetitions (median is recorded)"
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path("BENCH_history.jsonl"),
        help="JSONL timing series to append to",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        help=(
            "fail when the median regresses more than this fraction against "
            "the previous comparable entry (e.g. 0.25); default: record only"
        ),
    )
    arguments = parser.parse_args()

    package_dir = (
        Path(arguments.root).resolve() if arguments.root else default_package_dir()
    )
    timings = time_full_pass(package_dir, arguments.jobs, arguments.repeat)
    median = statistics.median(timings)

    project = Project.from_directory(package_dir, jobs=arguments.jobs)
    report = run_lint(project)
    rule_span = f"{report.rule_ids[0]}-{report.rule_ids[-1]}"

    record = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": _git_sha(),
        "benchmark": "lint_full_pass",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "source": "ci" if os.environ.get("GITHUB_ACTIONS") else "local",
        "pairs": {
            f"lint:{rule_span}": {
                "wall_clock_seconds": round(median, 3),
                "checked_modules": report.checked_modules,
                "jobs": arguments.jobs,
            }
        },
    }
    errors = _append_history(arguments.history, record, arguments.max_regression)

    print(json.dumps(record, indent=2, sort_keys=True))
    print(f"\ntimings: {[round(t, 3) for t in timings]} (median {median:.3f} s)")
    print(f"history entry appended to {arguments.history}")
    for error in errors:
        print(f"ERROR: {error}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
