#!/usr/bin/env python
"""Diff a RunReport JSON file's results payload against a golden fixture.

Used by the CI ``api-smoke`` job:

    repro-ftes run fig6a --preset fast --output fig6a_report.json
    python scripts/diff_report_golden.py fig6a_report.json tests/golden/fig6a_fast.json

Exits non-zero with a keyed diff when the report's results payload does not
match the fixture exactly — any drift is a correctness bug by the kernel
families' bit-identity contract, not noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _flatten(value, prefix=""):
    """Flatten nested dicts to dotted-key leaves for a readable diff."""
    if isinstance(value, dict):
        flat = {}
        for key, child in value.items():
            flat.update(_flatten(child, f"{prefix}{key}."))
        return flat
    return {prefix.rstrip("."): value}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="RunReport JSON written by `repro-ftes run --output`")
    parser.add_argument("golden", type=Path, help="golden fixture JSON to compare against")
    arguments = parser.parse_args()

    report = json.loads(arguments.report.read_text(encoding="utf-8"))
    golden = json.loads(arguments.golden.read_text(encoding="utf-8"))
    results = report.get("results")
    if results is None:
        print(f"ERROR: {arguments.report} has no 'results' payload", file=sys.stderr)
        return 2

    if results == golden:
        print(
            f"OK: {arguments.report} results payload matches {arguments.golden} "
            f"({report.get('scenario')!r}, kernels {report.get('kernels')})"
        )
        return 0

    produced = _flatten(results)
    expected = _flatten(golden)
    for key in sorted(set(produced) | set(expected)):
        left, right = produced.get(key), expected.get(key)
        if left != right:
            print(f"DIFF {key}: report={left!r} golden={right!r}", file=sys.stderr)
    print("ERROR: results payload diverges from the golden fixture", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
