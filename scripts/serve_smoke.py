#!/usr/bin/env python
"""Drive a running repro.serve instance end to end, stdlib-only.

Used by the CI ``serve-smoke`` job (and handy locally):

    repro-ftes serve --port 8321 &
    python scripts/serve_smoke.py --port 8321 --output fig6a_report.json
    python scripts/diff_report_golden.py fig6a_report.json tests/golden/fig6a_fast.json

Waits for ``/healthz``, checks the scenario is listed, submits one job,
streams its NDJSON event feed to stdout, then fetches the final job record
and writes the embedded report JSON to ``--output`` in the exact shape
``repro-ftes run --output`` produces — so the golden diff script applies
unchanged.  Exits non-zero on any divergence from the expected lifecycle.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from http.client import HTTPConnection
from pathlib import Path
from typing import Any, Dict, Optional, Tuple


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout: float = 60.0,
) -> Tuple[int, bytes]:
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def wait_healthy(host: str, port: int, timeout: float) -> Dict[str, Any]:
    deadline = time.monotonic() + timeout
    last_error: Optional[str] = None
    while time.monotonic() < deadline:
        try:
            status, payload = _request(host, port, "GET", "/healthz", timeout=5.0)
        except OSError as error:
            last_error = str(error)
        else:
            if status == 200:
                return json.loads(payload)
            last_error = f"healthz returned {status}"
        time.sleep(0.25)
    raise SystemExit(f"server never became healthy within {timeout}s: {last_error}")


def stream_events(host: str, port: int, job_id: str, timeout: float) -> str:
    """Relay the job's NDJSON feed to stdout; return the terminal event name."""
    connection = HTTPConnection(host, port, timeout=timeout)
    terminal = ""
    try:
        connection.request("GET", f"/jobs/{job_id}/events")
        response = connection.getresponse()
        if response.status != 200:
            raise SystemExit(f"event stream returned {response.status}")
        for raw in response:  # server closes after the terminal event
            line = raw.decode("utf-8").rstrip("\n")
            if not line:
                continue
            print(line, flush=True)
            terminal = json.loads(line).get("event", "")
    finally:
        connection.close()
    return terminal


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--scenario", default="fig6a")
    parser.add_argument("--preset", default="fast")
    parser.add_argument(
        "--output", type=Path, required=True, help="where to write the report JSON"
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="overall wall-clock budget (s)"
    )
    arguments = parser.parse_args()
    host, port = arguments.host, arguments.port

    health = wait_healthy(host, port, min(60.0, arguments.timeout))
    print(f"healthz: {json.dumps(health, sort_keys=True)}", flush=True)

    status, payload = _request(host, port, "GET", "/scenarios")
    if status != 200:
        raise SystemExit(f"GET /scenarios returned {status}")
    listed = {spec["id"] for spec in json.loads(payload)["scenarios"]}
    if arguments.scenario not in listed:
        raise SystemExit(f"scenario {arguments.scenario!r} not in registry: {sorted(listed)}")

    status, payload = _request(
        host,
        port,
        "POST",
        "/jobs",
        {"scenario": arguments.scenario, "config": {"preset": arguments.preset}},
    )
    if status != 202:
        raise SystemExit(f"POST /jobs returned {status}: {payload.decode()}")
    job_id = json.loads(payload)["id"]
    print(f"submitted {job_id}", flush=True)

    terminal = stream_events(host, port, job_id, arguments.timeout)
    if terminal != "job_done":
        raise SystemExit(f"job ended with {terminal!r}, expected 'job_done'")

    status, payload = _request(host, port, "GET", f"/jobs/{job_id}")
    if status != 200:
        raise SystemExit(f"GET /jobs/{job_id} returned {status}")
    record = json.loads(payload)
    if record["state"] != "done":
        raise SystemExit(f"job state {record['state']!r}: {record.get('error')}")

    arguments.output.write_text(
        json.dumps(record["report"], indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote report to {arguments.output}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
