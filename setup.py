"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can also be installed with the legacy ``setup.py develop`` path on
environments whose setuptools/pip combination cannot build PEP-517 editable
wheels (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
