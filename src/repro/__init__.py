"""repro — hardening-aware design optimization of fault-tolerant embedded systems.

A faithful, laptop-scale reproduction of

    V. Izosimov, I. Polian, P. Pop, P. Eles, Z. Peng,
    "Analysis and Optimization of Fault-Tolerant Embedded Systems with
    Hardened Processors", DATE 2009.

The public API re-exports the most commonly used classes; see the package
documentation (README.md and DESIGN.md) for an architecture overview and
``examples/`` for runnable entry points.
"""

from __future__ import annotations

from repro.core import (
    Application,
    Architecture,
    ArchitectureEnumerator,
    DesignResult,
    DesignStrategy,
    ExecutionProfile,
    FaultModel,
    FixedHardeningRedundancyOpt,
    HardeningModel,
    HVersion,
    MappingAlgorithm,
    MappingResult,
    Message,
    Node,
    NodeType,
    Objective,
    Process,
    ProcessMapping,
    RedundancyDecision,
    RedundancyOpt,
    ReExecutionDecision,
    ReExecutionOpt,
    SFPAnalysis,
    SFPReport,
    TaskGraph,
    TechnologyModel,
    acceptance_rate,
    all_strategies,
    doubling_cost_node_type,
    failure_probability_from_ser,
    linear_cost_node_type,
    max_hardening_strategy,
    min_hardening_strategy,
    optimized_strategy,
)
from repro.comm import Bus, SimpleBus, TDMABus
from repro.core.exhaustive import ExhaustiveSearch
from repro.scheduling import ListScheduler, Schedule, ScheduledMessage, ScheduledProcess
from repro.simulation import FaultScenarioSimulator, SimulationSummary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Application",
    "Architecture",
    "ArchitectureEnumerator",
    "Bus",
    "DesignResult",
    "DesignStrategy",
    "ExecutionProfile",
    "ExhaustiveSearch",
    "FaultModel",
    "FaultScenarioSimulator",
    "FixedHardeningRedundancyOpt",
    "HVersion",
    "HardeningModel",
    "ListScheduler",
    "MappingAlgorithm",
    "MappingResult",
    "Message",
    "Node",
    "NodeType",
    "Objective",
    "Process",
    "ProcessMapping",
    "RedundancyDecision",
    "RedundancyOpt",
    "ReExecutionDecision",
    "ReExecutionOpt",
    "SFPAnalysis",
    "SFPReport",
    "Schedule",
    "ScheduledMessage",
    "ScheduledProcess",
    "SimpleBus",
    "SimulationSummary",
    "TDMABus",
    "TaskGraph",
    "TechnologyModel",
    "acceptance_rate",
    "all_strategies",
    "doubling_cost_node_type",
    "failure_probability_from_ser",
    "linear_cost_node_type",
    "max_hardening_strategy",
    "min_hardening_strategy",
    "optimized_strategy",
]
