"""Derived reliability and cost analyses built on top of the SFP machinery."""

from __future__ import annotations

from repro.analysis.cost import (
    CostBreakdown,
    architecture_cost_breakdown,
    relative_cost_saving,
)
from repro.analysis.reliability import (
    failures_in_time,
    mean_time_to_failure_hours,
    mission_reliability,
    probability_of_failure_per_hour,
)

__all__ = [
    "CostBreakdown",
    "architecture_cost_breakdown",
    "failures_in_time",
    "mean_time_to_failure_hours",
    "mission_reliability",
    "probability_of_failure_per_hour",
    "relative_cost_saving",
]
