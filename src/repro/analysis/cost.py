"""Architecture cost accounting helpers.

The paper's objective is the total cost of the selected h-versions.  The
breakdown below additionally reports how much of the total is attributable to
hardening (the difference between the selected version and the cheapest
version of the same node), which is the quantity the cruise-controller case
study discusses when it reports a 66 % saving of OPT over MAX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.architecture import Architecture


@dataclass(frozen=True)
class CostBreakdown:
    """Total cost split into baseline hardware and hardening overhead."""

    per_node: Dict[str, float]
    baseline: float
    hardening_overhead: float

    @property
    def total(self) -> float:
        return self.baseline + self.hardening_overhead

    def overhead_fraction(self) -> float:
        """Share of the total cost spent on hardening (0 when unhardened)."""
        if self.total == 0.0:
            return 0.0
        return self.hardening_overhead / self.total


def architecture_cost_breakdown(architecture: Architecture) -> CostBreakdown:
    """Compute the cost breakdown of an architecture at its current hardening."""
    per_node: Dict[str, float] = {}
    baseline = 0.0
    overhead = 0.0
    for node in architecture:
        cost = node.cost
        cheapest = node.node_type.min_cost
        per_node[node.name] = cost
        baseline += cheapest
        overhead += cost - cheapest
    return CostBreakdown(per_node=per_node, baseline=baseline, hardening_overhead=overhead)


def relative_cost_saving(cost: float, reference_cost: float) -> float:
    """Relative saving of ``cost`` versus ``reference_cost`` (e.g. OPT vs MAX).

    Returns a fraction in ``[0, 1]``; 0 when there is no saving or the
    reference is not positive.
    """
    if reference_cost <= 0.0:
        return 0.0
    saving = (reference_cost - cost) / reference_cost
    return max(0.0, saving)
