"""Reliability metrics derived from the per-iteration system failure probability.

The SFP analysis of the paper produces the probability that one *iteration*
of the application fails.  Designers usually reason in other units — failure
probability per hour (the paper's reliability goal), mean time to failure,
FIT rates, or the probability of surviving a whole mission.  The conversions
below assume that iterations fail independently with the same probability,
which is exactly the assumption underlying formula (6) of the paper.
"""

from __future__ import annotations

import math

from repro.core.application import ONE_HOUR_MS
from repro.utils.validation import require_in_unit_interval, require_positive

#: Number of device-hours in the conventional FIT unit (failures per 1e9 hours).
FIT_HOURS = 1e9


def probability_of_failure_per_hour(
    per_iteration_failure: float, period_ms: float
) -> float:
    """Probability of at least one system failure during one hour of operation."""
    require_in_unit_interval(per_iteration_failure, "per_iteration_failure")
    require_positive(period_ms, "period_ms")
    iterations = ONE_HOUR_MS / period_ms
    return 1.0 - (1.0 - per_iteration_failure) ** iterations


def mission_reliability(
    per_iteration_failure: float, period_ms: float, mission_hours: float
) -> float:
    """Probability of surviving a mission of ``mission_hours`` without failure."""
    require_positive(mission_hours, "mission_hours")
    per_hour = probability_of_failure_per_hour(per_iteration_failure, period_ms)
    return (1.0 - per_hour) ** mission_hours


def mean_time_to_failure_hours(
    per_iteration_failure: float, period_ms: float
) -> float:
    """Expected number of hours until the first system failure.

    Returns ``inf`` when the per-iteration failure probability is zero.
    """
    require_in_unit_interval(per_iteration_failure, "per_iteration_failure")
    require_positive(period_ms, "period_ms")
    if per_iteration_failure == 0.0:
        return math.inf
    # Geometric distribution over iterations: mean = 1/p iterations.
    mean_iterations = 1.0 / per_iteration_failure
    return mean_iterations * period_ms / ONE_HOUR_MS


def failures_in_time(per_iteration_failure: float, period_ms: float) -> float:
    """FIT rate: expected number of failures per 1e9 hours of operation."""
    mttf = mean_time_to_failure_hours(per_iteration_failure, period_ms)
    if math.isinf(mttf):
        return 0.0
    return FIT_HOURS / mttf
