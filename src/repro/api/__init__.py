"""``repro.api`` — the unified programmatic front door.

Declare *what* to run (a scenario id), *how* to run it (a frozen
:class:`RunConfig`), execute through a :class:`Session`, and consume a
structured :class:`RunReport`:

>>> from repro.api import run, RunConfig
>>> report = run("fig6a", RunConfig(preset="fast"))
>>> report.results["acceptance"]["5"]["OPT"]
100.0

The module replaces ad-hoc flag/env plumbing and mutable process-global
kernel defaults with one documented resolution order (explicit config >
environment variable > ``auto``; see :mod:`repro.api.config`) and scoped
kernel selection (:func:`repro.kernels.registry.use_kernel`).  The CLI's
``repro-ftes run`` is a thin driver over exactly this API.
"""

from __future__ import annotations

from typing import Optional

from repro.api.config import DEFAULT_CACHE_SIZE_MB, PRESETS, RunConfig
from repro.api.registry import (
    ScenarioOutcome,
    ScenarioParam,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.api.report import REPORT_SCHEMA_VERSION, RunReport
from repro.api.session import ProgressCallback, Session

# Importing the modules registers the built-in scenarios and the
# parameterized scenario families.
import repro.api.scenarios  # noqa: F401,E402  (registration side effect)
import repro.api.scenarios_synthetic  # noqa: F401,E402  (registration side effect)


def run(scenario_id: str, config: Optional[RunConfig] = None) -> RunReport:
    """Run one registered scenario under ``config`` and return its report.

    When ``config.output`` is set, the report is also written there as JSON
    (only this one-shot helper writes; ``Session.run`` never does, so
    multi-scenario sessions cannot silently overwrite earlier reports).
    """
    with Session(config) as session:
        report = session.run(scenario_id)
    if report.config.output is not None:
        report.config.output.write_text(report.to_json(), encoding="utf-8")
    return report


__all__ = [
    "DEFAULT_CACHE_SIZE_MB",
    "PRESETS",
    "ProgressCallback",
    "REPORT_SCHEMA_VERSION",
    "RunConfig",
    "RunReport",
    "ScenarioOutcome",
    "ScenarioParam",
    "ScenarioSpec",
    "Session",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run",
]
