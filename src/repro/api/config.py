"""Declarative run configuration of the ``repro.api`` session layer.

A :class:`RunConfig` is the single typed object through which every knob of
a scenario run is expressed — kernel backends, persistent cache, worker
processes, seed, experiment preset and report output.  It replaces the
previous mix of mutable process-global defaults (``set_default_kernel`` /
``set_default_sched_kernel``), environment variables and per-subcommand
CLI flags.

**Resolution order** (documented here once, applied everywhere): for each
knob that also has an environment variable, the effective value is

1. the explicit :class:`RunConfig` field, when not ``None``;
2. the environment variable (``REPRO_SFP_KERNEL`` / ``REPRO_SCHED_KERNEL``);
3. ``auto`` — the highest-priority backend whose ``is_available()`` is true.

(The deprecated process-global default set by ``set_default_*_kernel``
slots between 1 and 2 for backwards compatibility; new code should not use
it.)  Kernel backends are bit-identical by contract, so this order is a
speed knob only and never changes results.

**Scenario parameters** resolve analogously but per scenario family
(:meth:`repro.api.registry.ScenarioSpec.resolve_params`): an explicit entry
in :attr:`RunConfig.scenario_params` (the CLI's ``--param key=value``)
beats the parameter's declared default.  Unlike kernels these *are* answer
knobs — two runs differing in ``scenario_params`` are different workloads —
which is why the mapping is part of the frozen config and its lossless
``to_dict``/``from_dict`` round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.core.exceptions import ModelError
from repro.engine.store import DEFAULT_MAX_BYTES
from repro.experiments.synthetic import ExperimentPreset
from repro.kernels.registry import SCHED_KERNELS, SFP_KERNELS

#: Preset names accepted by :attr:`RunConfig.preset`.
PRESETS = {
    "smoke": ExperimentPreset.smoke,
    "fast": ExperimentPreset.fast,
    "paper": ExperimentPreset.paper,
}

#: Default size cap of the persistent cache, in MiB.
DEFAULT_CACHE_SIZE_MB = DEFAULT_MAX_BYTES // (1024 * 1024)


@dataclass(frozen=True)
class RunConfig:
    """Frozen, declarative configuration of one scenario run.

    Parameters
    ----------
    sfp_kernel / sched_kernel:
        Explicit kernel backend names (or ``"auto"``).  ``None`` defers to
        the family's environment variable, then ``auto`` (see the module
        docstring for the full resolution order).
    cache_dir:
        Directory of the persistent design-point store; ``None`` disables
        persistence.
    cache_size_mb:
        LRU size cap of the store directory, in MiB.
    jobs:
        Worker processes for per-application loops (``1`` = serial,
        ``0`` = one per CPU).
    seed:
        Overrides the preset's ``base_seed`` for synthetic benchmark
        generation; ``None`` keeps the preset's published seed.
    preset:
        Experiment size/effort preset: ``smoke``, ``fast`` or ``paper``.
    output:
        Optional path where :meth:`Session.run` writes the structured
        :class:`~repro.api.report.RunReport` as JSON.
    scenario_params:
        Per-run overrides for parameterized scenario families (the CLI's
        ``--param key=value``).  Values may be CLI strings or native
        scalars; they are validated against the scenario's declared schema
        at run time (explicit override > declared default).
    """

    sfp_kernel: Optional[str] = None
    sched_kernel: Optional[str] = None
    cache_dir: Optional[Path] = None
    cache_size_mb: int = DEFAULT_CACHE_SIZE_MB
    jobs: int = 1
    seed: Optional[int] = None
    preset: str = "fast"
    output: Optional[Path] = None
    scenario_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for field_name in ("cache_dir", "output"):
            value = getattr(self, field_name)
            if value is not None:
                object.__setattr__(self, field_name, Path(value).expanduser())
        if self.preset not in PRESETS:
            raise ModelError(
                f"Unknown preset {self.preset!r}; expected one of {sorted(PRESETS)}"
            )
        if self.jobs < 0:
            raise ModelError(f"jobs must be >= 0 (1 = serial, 0 = one per CPU), got {self.jobs}")
        if self.cache_size_mb < 1:
            raise ModelError(f"cache_size_mb must be >= 1, got {self.cache_size_mb}")
        params = dict(self.scenario_params) if self.scenario_params else {}
        for key, value in params.items():
            if not isinstance(key, str) or not key:
                raise ModelError(f"scenario_params keys must be non-empty strings, got {key!r}")
            if value is not None and not isinstance(value, (str, int, float, bool)):
                raise ModelError(
                    f"scenario_params[{key!r}] must be a JSON-native scalar, got {value!r}"
                )
        object.__setattr__(self, "scenario_params", params)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolved_sfp_kernel(self) -> str:
        """Concrete SFP backend name under the documented resolution order."""
        if self.sfp_kernel is not None:
            return SFP_KERNELS.get(self.sfp_kernel).name
        return SFP_KERNELS.active().name

    def resolved_sched_kernel(self) -> str:
        """Concrete scheduler backend name under the resolution order."""
        if self.sched_kernel is not None:
            return SCHED_KERNELS.get(self.sched_kernel).name
        return SCHED_KERNELS.active().name

    def resolved_preset(self) -> ExperimentPreset:
        """The :class:`ExperimentPreset` instance, reseeded when ``seed`` is set."""
        preset = PRESETS[self.preset]()
        if self.seed is not None:
            preset = replace(preset, base_seed=self.seed)
        return preset

    @property
    def cache_max_bytes(self) -> int:
        return self.cache_size_mb * 1024 * 1024

    # ------------------------------------------------------------------
    # serialization (lossless; used by RunReport round-trips)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "sfp_kernel": self.sfp_kernel,
            "sched_kernel": self.sched_kernel,
            "cache_dir": str(self.cache_dir) if self.cache_dir is not None else None,
            "cache_size_mb": self.cache_size_mb,
            "jobs": self.jobs,
            "seed": self.seed,
            "preset": self.preset,
            "output": str(self.output) if self.output is not None else None,
            "scenario_params": dict(self.scenario_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ModelError(f"Unknown RunConfig fields: {sorted(unknown)}")
        return cls(**dict(data))
