"""Declarative scenario registry: one contract for every experiment.

A *scenario* is a named, self-describing unit of work — a paper figure, a
case study or a parameterized synthetic workload family — registered with
:func:`register_scenario` and executed through ``repro.api.run`` or the
generic CLI driver (``repro-ftes run <scenario>``).  Every scenario obeys
the same :class:`ScenarioSpec` contract: its runner receives the active
:class:`~repro.api.session.Session` (configuration, kernel scope, shared
experiment/engine construction) plus the resolved parameter mapping, and
returns a :class:`ScenarioOutcome` holding a JSON-native results payload
plus its human-readable rendering.

**Parameterized scenario families.**  A spec may declare a typed parameter
schema (:class:`ScenarioParam`: name, type, default, bounds).  Parameter
values resolve in one documented order, mirroring kernel selection:

1. an explicit override — ``RunConfig.scenario_params`` (the CLI's
   ``--param key=value`` flags land there);
2. the parameter's declared default.

Unknown parameter names and out-of-bounds values are rejected with the
family's full schema in the error message.  Scenarios that declare no
parameters reject any override.  The resolved mapping is passed to the
runner and recorded in the :class:`~repro.api.report.RunReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import ModelError

try:  # numpy is optional at the API layer (generator scenarios need it)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


def canonicalize_payload(value: Any) -> Any:
    """Recursively coerce a payload to JSON-native Python types.

    Generator-backed scenarios naturally produce numpy scalars (``np.int64``
    sizes, ``np.float64`` draws) which ``json.dumps`` rejects with a
    ``TypeError``; tuples would round-trip as lists and numeric dict keys as
    strings.  Canonicalizing once at the :class:`ScenarioOutcome` boundary
    keeps every :class:`~repro.api.report.RunReport` losslessly
    JSON-round-trippable without per-scenario ceremony.
    """
    if _np is not None:
        if isinstance(value, _np.generic):
            return canonicalize_payload(value.item())
        if isinstance(value, _np.ndarray):
            return [canonicalize_payload(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): canonicalize_payload(child) for key, child in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize_payload(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    return value


@dataclass(frozen=True)
class ScenarioOutcome:
    """What a scenario runner returns: results payload + rendered text.

    ``payload`` is canonicalized to JSON-native types on construction
    (numpy scalars to Python scalars, tuples to lists, keys to strings) so
    the surrounding :class:`~repro.api.report.RunReport` round-trips
    losslessly.
    """

    payload: Dict[str, Any]
    text: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", canonicalize_payload(self.payload))
        # Runtime determinism sanitizer hook (R008): when active, verify the
        # canonicalized payload is fully JSON-native — values the
        # canonicalizer passes through verbatim (Decimal, Path, set, bytes)
        # are exactly the defects it records.  Lazy import: repro.lint is
        # never loaded on the hot path unless the sanitizer is enabled.
        from repro.lint.sanitizer import active_sanitizer

        sanitizer = active_sanitizer()
        if sanitizer is not None:
            sanitizer.check_payload(self.payload, "ScenarioOutcome.payload")


#: Accepted ``ScenarioParam.type`` names and their coercions.
_PARAM_TYPES: Dict[str, type] = {"int": int, "float": float, "str": str, "bool": bool}

#: Strings accepted as booleans by :meth:`ScenarioParam.coerce` (CLI input).
_BOOL_STRINGS = {"true": True, "1": True, "yes": True, "false": False, "0": False, "no": False}


@dataclass(frozen=True)
class ScenarioParam:
    """One typed, bounded parameter of a scenario family.

    ``default`` may be ``None`` for nullable parameters (the runner sees
    ``None`` and applies its own fallback, e.g. the generator's automatic
    layer count).  ``minimum``/``maximum`` are inclusive bounds applied to
    ``int`` and ``float`` parameters.
    """

    name: str
    type: str
    default: Any = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("ScenarioParam name must be a non-empty string")
        if self.type not in _PARAM_TYPES:
            raise ModelError(
                f"Unknown ScenarioParam type {self.type!r} for {self.name!r}; "
                f"expected one of {sorted(_PARAM_TYPES)}"
            )
        if self.default is not None:
            object.__setattr__(self, "default", self.coerce(self.default))

    # ------------------------------------------------------------------
    def coerce(self, raw: Any) -> Any:
        """Coerce one raw override (CLI string or API value) to the declared type."""
        if raw is None:
            return None
        target = _PARAM_TYPES[self.type]
        try:
            if self.type == "bool":
                if isinstance(raw, str):
                    key = raw.strip().lower()
                    if key not in _BOOL_STRINGS:
                        raise ValueError(raw)
                    value: Any = _BOOL_STRINGS[key]
                else:
                    value = bool(raw)
            elif self.type == "int":
                if isinstance(raw, float) and not raw.is_integer():
                    raise ValueError(raw)
                value = int(raw)
            else:
                value = target(raw)
        except (TypeError, ValueError):
            raise ModelError(
                f"Parameter {self.name!r} expects {self.type}, got {raw!r}"
            ) from None
        if self.type in ("int", "float"):
            if self.minimum is not None and value < self.minimum:
                raise ModelError(
                    f"Parameter {self.name!r} must be >= {self.minimum:g}, got {value!r}"
                )
            if self.maximum is not None and value > self.maximum:
                raise ModelError(
                    f"Parameter {self.name!r} must be <= {self.maximum:g}, got {value!r}"
                )
        return value

    def describe(self) -> str:
        """Compact one-line schema rendering used by ``run --list`` and errors."""
        bounds = ""
        if self.minimum is not None or self.maximum is not None:
            low = f"{self.minimum:g}" if self.minimum is not None else ""
            high = f"{self.maximum:g}" if self.maximum is not None else ""
            bounds = f" [{low}..{high}]"
        default = "" if self.default is None else f"={self.default}"
        return f"{self.name}:{self.type}{default}{bounds}"


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry describing one runnable scenario."""

    scenario_id: str
    title: str
    description: str = ""
    #: Paper figure/section the scenario reproduces, when applicable.
    figure: Optional[str] = None
    #: Typed parameter schema; empty for fixed (non-family) scenarios.
    params: Tuple[ScenarioParam, ...] = ()
    runner: Callable[["Session", Dict[str, Any]], ScenarioOutcome] = field(
        repr=False, default=None  # type: ignore[assignment]
    )

    def schema(self) -> str:
        """The family's full parameter schema on one line (empty if none)."""
        return ", ".join(param.describe() for param in self.params)

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Resolve overrides against the schema: explicit value > default.

        Raises :class:`~repro.core.exceptions.ModelError` for unknown names,
        type mismatches and bounds violations — always naming the schema so
        the caller can recover.
        """
        overrides = dict(overrides) if overrides else {}
        known = {param.name for param in self.params}
        unknown = set(overrides) - known
        if unknown:
            if not self.params:
                raise ModelError(
                    f"Scenario {self.scenario_id!r} accepts no parameters, got "
                    f"{sorted(unknown)}"
                )
            raise ModelError(
                f"Unknown parameter(s) {sorted(unknown)} for scenario "
                f"{self.scenario_id!r}; schema: {self.schema()}"
            )
        resolved: Dict[str, Any] = {}
        for param in self.params:
            if param.name in overrides:
                resolved[param.name] = param.coerce(overrides[param.name])
            else:
                resolved[param.name] = param.default
        return resolved


_SCENARIOS: Dict[str, ScenarioSpec] = {}

_Runner = Callable[["Session", Dict[str, Any]], ScenarioOutcome]


def register_scenario(
    scenario_id: str,
    *,
    title: str,
    description: str = "",
    figure: Optional[str] = None,
    params: Sequence[ScenarioParam] = (),
) -> Callable[[_Runner], _Runner]:
    """Decorator registering a scenario runner under ``scenario_id``.

    The runner keeps working as a plain ``(session, params)`` function;
    registration only makes it reachable through
    ``api.run(scenario_id, config)`` and the CLI driver.
    """
    names = [param.name for param in params]
    if len(set(names)) != len(names):
        raise ModelError(
            f"Scenario {scenario_id!r} declares duplicate parameter names: {names}"
        )

    def decorator(runner: _Runner) -> _Runner:
        existing = _SCENARIOS.get(scenario_id)
        if existing is not None and existing.runner is not runner:
            raise ModelError(f"Scenario id {scenario_id!r} is already registered")
        _SCENARIOS[scenario_id] = ScenarioSpec(
            scenario_id=scenario_id,
            title=title,
            description=description,
            figure=figure,
            params=tuple(params),
            runner=runner,
        )
        return runner

    return decorator


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Look a scenario up by id; unknown ids fail with the known list."""
    spec = _SCENARIOS.get(scenario_id)
    if spec is None:
        known = ", ".join(sorted(_SCENARIOS)) or "<none>"
        raise ModelError(f"Unknown scenario {scenario_id!r}; registered: {known}")
    return spec


def list_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by id."""
    return [_SCENARIOS[scenario_id] for scenario_id in sorted(_SCENARIOS)]
