"""Declarative scenario registry: one contract for every experiment.

A *scenario* is a named, self-describing unit of work — a paper figure, a
case study or a future synthetic workload — registered with
:func:`register_scenario` and executed through ``repro.api.run`` or the
generic CLI driver (``repro-ftes run <scenario>``).  Every scenario obeys
the same :class:`ScenarioSpec` contract: its runner receives the active
:class:`~repro.api.session.Session` (configuration, kernel scope, shared
experiment/engine construction) and returns a :class:`ScenarioOutcome`
holding a JSON-native results payload plus its human-readable rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


@dataclass(frozen=True)
class ScenarioOutcome:
    """What a scenario runner returns: results payload + rendered text.

    ``payload`` must be JSON-native (string keys, lists not tuples) so the
    surrounding :class:`~repro.api.report.RunReport` round-trips losslessly.
    """

    payload: Dict[str, Any]
    text: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry describing one runnable scenario."""

    scenario_id: str
    title: str
    description: str = ""
    #: Paper figure/section the scenario reproduces, when applicable.
    figure: Optional[str] = None
    runner: Callable[["Session"], ScenarioOutcome] = field(
        repr=False, default=None  # type: ignore[assignment]
    )


_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(
    scenario_id: str,
    *,
    title: str,
    description: str = "",
    figure: Optional[str] = None,
) -> Callable[[Callable[["Session"], ScenarioOutcome]], Callable[["Session"], ScenarioOutcome]]:
    """Decorator registering a scenario runner under ``scenario_id``.

    The runner keeps working as a plain function; registration only makes it
    reachable through ``api.run(scenario_id, config)`` and the CLI driver.
    """

    def decorator(
        runner: Callable[["Session"], ScenarioOutcome],
    ) -> Callable[["Session"], ScenarioOutcome]:
        existing = _SCENARIOS.get(scenario_id)
        if existing is not None and existing.runner is not runner:
            raise ModelError(f"Scenario id {scenario_id!r} is already registered")
        _SCENARIOS[scenario_id] = ScenarioSpec(
            scenario_id=scenario_id,
            title=title,
            description=description,
            figure=figure,
            runner=runner,
        )
        return runner

    return decorator


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Look a scenario up by id; unknown ids fail with the known list."""
    spec = _SCENARIOS.get(scenario_id)
    if spec is None:
        known = ", ".join(sorted(_SCENARIOS)) or "<none>"
        raise ModelError(f"Unknown scenario {scenario_id!r}; registered: {known}")
    return spec


def list_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by id."""
    return [_SCENARIOS[scenario_id] for scenario_id in sorted(_SCENARIOS)]
