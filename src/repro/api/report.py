"""Structured run reports with a stable JSON round-trip.

Every scenario run through the :mod:`repro.api` session layer produces one
:class:`RunReport`: the scenario id, the resolved :class:`RunConfig`, the
scenario's JSON-native results payload, the kernel backends that actually
ran, the evaluation-engine cache counters and wall-clock timings.  The
report is the one artifact consumers (CLI, benchmark scripts, CI) read —
``to_json()`` / ``from_json()`` round-trip losslessly, which the test-suite
asserts for every registered scenario.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.api.config import RunConfig
from repro.core.exceptions import ModelError

#: Bump when the serialized report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def iter_non_json_native(value: Any, path: str = "$") -> Iterator[Tuple[str, Any]]:
    """Yield ``(path, leaf)`` for every value ``json.dumps`` would reject.

    The walk mirrors what :meth:`RunReport.to_json` will attempt: dicts need
    string keys, containers recurse, and every leaf must be one of the
    JSON-native scalars (``str``/``int``/``float``/``bool``/``None``).  The
    runtime determinism sanitizer (R008) and tests use this to locate the
    exact offending value instead of parsing a ``TypeError`` message.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, dict):
        for key, child in value.items():
            if not isinstance(key, str):
                yield f"{path}.<key {key!r}>", key
            yield from iter_non_json_native(child, f"{path}.{key}")
        return
    if isinstance(value, list):
        for index, child in enumerate(value):
            yield from iter_non_json_native(child, f"{path}[{index}]")
        return
    yield path, value


@dataclass(frozen=True)
class RunReport:
    """Structured outcome of one scenario run.

    ``results`` is the scenario's payload and must be JSON-native (string
    keys, no tuples) so the round-trip is lossless; scenario runners are
    responsible for normalizing their payloads (e.g. ``f"{hpd:g}"`` keys for
    numeric sweep settings, matching the golden fixtures).
    """

    scenario: str
    config: RunConfig
    results: Dict[str, Any]
    #: Fully resolved scenario parameters (overrides + declared defaults);
    #: empty for scenarios without a parameter schema.
    params: Dict[str, Any] = field(default_factory=dict)
    kernels: Dict[str, str] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    #: Human-readable rendering (the tables the CLI prints).
    text: str = ""

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "results": self.results,
            "params": dict(self.params),
            "kernels": dict(self.kernels),
            "cache": dict(self.cache),
            "timings": dict(self.timings),
            "text": self.text,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        schema = data.get("schema")
        if schema != REPORT_SCHEMA_VERSION:
            raise ModelError(
                f"Unsupported RunReport schema {schema!r}; "
                f"this build reads schema {REPORT_SCHEMA_VERSION}"
            )
        return cls(
            scenario=data["scenario"],
            config=RunConfig.from_dict(data["config"]),
            results=data["results"],
            params=dict(data.get("params", {})),
            kernels=dict(data.get("kernels", {})),
            cache=dict(data.get("cache", {})),
            timings=dict(data.get("timings", {})),
            text=data.get("text", ""),
        )

    @classmethod
    def from_json(cls, payload: str) -> "RunReport":
        return cls.from_dict(json.loads(payload))
