"""Built-in scenarios: the paper's figures and case study, registered.

Every experiment the repository can reproduce is declared here as a
scenario behind the common :class:`~repro.api.registry.ScenarioSpec`
contract — the motivational examples (Fig. 3/4 + Appendix A.2), the four
synthetic acceptance-rate figures (6a–6d) and the cruise-controller case
study.  The CLI's legacy subcommands delegate to these runners, so the
rendered tables here are the single source of the printed output.

Payload conventions (shared with the golden fixtures under
``tests/golden/``): sweep settings are keyed ``f"{value:g}"`` (``"5"``,
``"1e-11"``), dataclasses are flattened with :func:`dataclasses.asdict`,
and everything is JSON-native so :class:`~repro.api.report.RunReport`
round-trips losslessly.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Dict, List, Mapping

from repro.api.registry import ScenarioOutcome, register_scenario
from repro.core.fault_model import SER_MEDIUM
from repro.experiments.cruise_control import run_cruise_controller_study
from repro.experiments.motivational import (
    appendix_sfp_example,
    evaluate_fig3_alternatives,
    evaluate_fig4_alternatives,
)
from repro.experiments.results import format_table
from repro.experiments.synthetic import (
    figure_6a_hpd_sweep,
    figure_6b_cost_table,
    figure_6c_ser_sweep,
    figure_6d_ser_sweep,
    render_cost_table,
    render_hpd_sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session


def _g_keyed(mapping: Mapping[float, object]) -> Dict[str, object]:
    """Normalize numeric sweep keys to the golden fixtures' ``%g`` strings."""
    return {f"{key:g}": value for key, value in mapping.items()}


# ----------------------------------------------------------------------
# Motivational examples (Fig. 3 / Fig. 4 / Appendix A.2)
# ----------------------------------------------------------------------
@register_scenario(
    "motivational",
    title="Fig. 3/4 motivational examples + Appendix A.2 SFP computation",
    description=(
        "Hardware vs. software recovery for a single process, the five "
        "architecture alternatives of Fig. 4, and the worked SFP example"
    ),
    figure="3/4/A.2",
)
def run_motivational(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    fig3 = evaluate_fig3_alternatives()
    fig3_rows = [
        [
            outcome.label,
            outcome.reexecutions.get("N1", 0),
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for outcome in fig3
    ]
    fig4 = evaluate_fig4_alternatives()
    fig4_rows = [
        [
            label,
            ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
            ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for label, outcome in fig4.items()
    ]
    appendix = appendix_sfp_example()
    lines: List[str] = [
        format_table(
            ["h-version", "k", "worst-case SL (ms)", "cost", "schedulable"],
            fig3_rows,
            title="Fig. 3 — hardware vs. software recovery (single process)",
        ),
        "",
        format_table(
            ["alt", "h-versions", "re-executions", "worst-case SL (ms)", "cost", "schedulable"],
            fig4_rows,
            title="Fig. 4 — architecture alternatives for the Fig. 1 application",
        ),
        "",
        "Appendix A.2 — worked SFP example",
    ]
    lines.extend(f"  {key} = {value:.12g}" for key, value in appendix.items())
    payload = {
        "fig3": [asdict(outcome) for outcome in fig3],
        "fig4": {label: asdict(outcome) for label, outcome in fig4.items()},
        "appendix": appendix,
    }
    return ScenarioOutcome(payload=payload, text="\n".join(lines))


# ----------------------------------------------------------------------
# Synthetic acceptance-rate experiments (Fig. 6a–6d)
# ----------------------------------------------------------------------
@register_scenario(
    "fig6a",
    title="Fig. 6a — % accepted vs. HPD (SER=1e-11, ArC=20)",
    description="MIN/MAX/OPT acceptance over the hardening performance degradation sweep",
    figure="6a",
)
def run_fig6a(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    sweep = figure_6a_hpd_sweep(session.experiment())
    payload = {
        "figure": "6a",
        "preset": session.config.preset,
        "ser": SER_MEDIUM,
        "max_cost": 20.0,
        "acceptance": _g_keyed(sweep),
    }
    text = render_hpd_sweep(sweep, "Fig. 6a — % accepted vs. HPD (SER=1e-11, ArC=20)")
    return ScenarioOutcome(payload=payload, text=text)


@register_scenario(
    "fig6b",
    title="Fig. 6b — % accepted vs. (HPD, ArC) at SER=1e-11",
    description="MIN/MAX/OPT acceptance per (HPD, maximum architectural cost) pair",
    figure="6b",
)
def run_fig6b(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    table = figure_6b_cost_table(session.experiment())
    payload = {
        "figure": "6b",
        "preset": session.config.preset,
        "ser": SER_MEDIUM,
        "acceptance": {
            f"{hpd:g}": _g_keyed(per_arc) for hpd, per_arc in table.items()
        },
    }
    text = render_cost_table(table, "Fig. 6b — % accepted vs. (HPD, ArC) at SER=1e-11")
    return ScenarioOutcome(payload=payload, text=text)


@register_scenario(
    "fig6c",
    title="Fig. 6c — % accepted vs. SER (HPD=5%, ArC=20)",
    description="MIN/MAX/OPT acceptance over the soft-error-rate sweep at low HPD",
    figure="6c",
)
def run_fig6c(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    sweep = figure_6c_ser_sweep(session.experiment())
    payload = {
        "figure": "6c",
        "preset": session.config.preset,
        "hpd": 5.0,
        "max_cost": 20.0,
        "acceptance": _g_keyed(sweep),
    }
    text = render_hpd_sweep(sweep, "Fig. 6c — % accepted vs. SER (HPD=5%, ArC=20)")
    return ScenarioOutcome(payload=payload, text=text)


@register_scenario(
    "fig6d",
    title="Fig. 6d — % accepted vs. SER (HPD=100%, ArC=20)",
    description="MIN/MAX/OPT acceptance over the soft-error-rate sweep at high HPD",
    figure="6d",
)
def run_fig6d(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    sweep = figure_6d_ser_sweep(session.experiment())
    payload = {
        "figure": "6d",
        "preset": session.config.preset,
        "hpd": 100.0,
        "max_cost": 20.0,
        "acceptance": _g_keyed(sweep),
    }
    text = render_hpd_sweep(sweep, "Fig. 6d — % accepted vs. SER (HPD=100%, ArC=20)")
    return ScenarioOutcome(payload=payload, text=text)


# ----------------------------------------------------------------------
# Cruise-controller case study (Section 7)
# ----------------------------------------------------------------------
@register_scenario(
    "cruise-control",
    title="Vehicle cruise controller case study (D=300 ms, rho=1-1.2e-5)",
    description="MIN/MAX/OPT on the fixed three-ECU architecture; OPT ~66% cheaper than MAX",
    figure="Section 7",
)
def run_cruise_control(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    study = run_cruise_controller_study()
    rows = []
    for strategy, outcome in study.outcomes.items():
        rows.append(
            [
                strategy,
                "yes" if outcome.schedulable else "no",
                outcome.cost if outcome.schedulable else float("inf"),
                outcome.schedule_length,
                ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
                ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            ]
        )
    text = "\n".join(
        [
            format_table(
                [
                    "strategy",
                    "schedulable",
                    "cost",
                    "worst-case SL (ms)",
                    "h-versions",
                    "re-executions",
                ],
                rows,
                title="Cruise controller case study (D=300 ms, rho=1-1.2e-5)",
            ),
            "",
            f"OPT cost saving over MAX: {study.opt_saving_vs_max * 100:.1f}%",
        ]
    )
    payload = {
        "outcomes": {
            strategy: asdict(outcome) for strategy, outcome in study.outcomes.items()
        },
        "opt_saving_vs_max": study.opt_saving_vs_max,
    }
    return ScenarioOutcome(payload=payload, text=text)
