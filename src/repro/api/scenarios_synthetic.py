"""Parameterized scenario families: generator + faults wired into the registry.

The built-in scenarios of :mod:`repro.api.scenarios` are *fixed* — each one
reproduces a specific paper figure.  This module registers the three
*parameterized families* that expose the synthetic-benchmark generator and
the fault-injection machinery through the same :class:`ScenarioSpec`
contract (``repro-ftes run <family> --param key=value``):

``synthetic-random``
    One generated application run through the full MIN/MAX/OPT design-space
    exploration at an arbitrary size — the knob that scales the paper's
    20/40-process setup to 10-100x.
``synthetic-suite``
    A whole acceptance sweep over a generated suite, the shape of the
    paper's 150-application evaluation at user-chosen size and seed.
``fault-injection``
    A Monte-Carlo fault-injection campaign profiling a small control
    application, cross-validated per (process, node, level) against the
    analytic :meth:`~repro.faults.processor.ProcessorModel.failure_probability`.

Payloads contain only run-to-run deterministic quantities (no cache or
timing counters), so re-running a family with identical parameters yields a
bit-identical ``results`` block; engine counters flow into the report's
``cache`` section through :meth:`Session.add_cache_counters` instead.
"""

from __future__ import annotations

from dataclasses import replace
from math import sqrt
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.api.registry import ScenarioOutcome, ScenarioParam, register_scenario
from repro.core.application import Application, Message, Process, TaskGraph
from repro.core.architecture import linear_cost_node_type
from repro.core.evaluation import DesignResult
from repro.core.fault_model import SER_MEDIUM
from repro.experiments.results import format_table
from repro.experiments.synthetic import (
    PAPER_ARC_VALUES,
    STRATEGIES,
    AcceptanceExperiment,
    _evaluate_benchmark_setting,
)
from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.injection import FaultInjectionCampaign
from repro.faults.processor import ProcessorModel
from repro.generator.benchmark import BenchmarkConfig, generate_benchmark

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

#: The (SER, HPD) technology setting the generator families are evaluated
#: at: the medium-SER technology with 25 % hardening performance
#: degradation — the center of the paper's Fig. 6 sweeps.
FAMILY_SER = SER_MEDIUM
FAMILY_HPD = 25.0


def _finite(value: float) -> Optional[float]:
    """JSON-safe rendering of possibly-infinite costs/lengths."""
    return None if value == float("inf") else float(value)


def _result_summary(result: DesignResult, max_cost: float) -> Dict[str, Any]:
    """Deterministic per-strategy summary (no cache/timing counters)."""
    return {
        "feasible": result.feasible,
        "accepted": result.is_accepted(max_cost),
        "meets_reliability": result.meets_reliability,
        "cost": _finite(result.cost),
        "schedule_length": _finite(result.schedule_length),
        "deadline": _finite(result.deadline),
        "node_types": dict(result.node_types),
        "hardening": dict(result.hardening),
        "reexecutions": dict(result.reexecutions),
        "evaluations": result.evaluations,
        "failure_reason": result.failure_reason,
    }


def _design_counters(results: Dict[str, DesignResult]) -> Dict[str, float]:
    """Map DesignResult counters onto the session's additive cache keys."""
    counters = {
        "hits": 0.0,
        "misses": 0.0,
        "search_evaluations": 0.0,
        "points_computed": 0.0,
        "batch_rows": 0.0,
        "batch_cold_rows": 0.0,
    }
    for result in results.values():
        counters["hits"] += result.cache_hits
        counters["misses"] += result.cache_misses
        counters["search_evaluations"] += result.evaluations
        counters["points_computed"] += result.points_computed
        counters["batch_rows"] += result.batch_rows
        counters["batch_cold_rows"] += result.batch_cold_rows
    return counters


# ----------------------------------------------------------------------
# synthetic-random: one generated application, full DSE
# ----------------------------------------------------------------------
@register_scenario(
    "synthetic-random",
    title="Full MIN/MAX/OPT exploration of one generated application",
    description=(
        "Generate one synthetic benchmark (size, shape and seed are "
        "parameters) and run the complete design-space exploration at the "
        f"medium-SER technology with HPD={FAMILY_HPD:g} %"
    ),
    params=(
        ScenarioParam(
            "n_processes",
            "int",
            default=20,
            minimum=1,
            maximum=2000,
            description="Application size (the paper uses 20 and 40)",
        ),
        ScenarioParam(
            "n_node_types",
            "int",
            default=4,
            minimum=1,
            maximum=16,
            description="Size of the node-type library",
        ),
        ScenarioParam("seed", "int", default=1, description="Generator seed"),
        ScenarioParam(
            "layers",
            "int",
            minimum=1,
            description="DAG layer count; default derives ~sqrt(n_processes)",
        ),
        ScenarioParam(
            "extra_edge_probability",
            "float",
            default=0.2,
            minimum=0.0,
            maximum=1.0,
            description="Probability of extra cross-layer dependencies",
        ),
    ),
)
def run_synthetic_random(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    config = BenchmarkConfig(
        n_processes=params["n_processes"],
        n_node_types=params["n_node_types"],
        layers=params["layers"],
        extra_edge_probability=params["extra_edge_probability"],
    )
    seed = params["seed"]
    benchmark = generate_benchmark(seed, config, name=f"synthetic_random_{seed}")
    preset = session.config.resolved_preset()
    max_cost = preset.arc_default
    results, disk = _evaluate_benchmark_setting(
        benchmark,
        FAMILY_SER,
        FAMILY_HPD,
        preset,
        tuple(STRATEGIES),
        session.config.cache_dir,
        session.config.cache_max_bytes,
        session.single_flight,
    )
    counters = _design_counters(results)
    counters.update({key: float(value) for key, value in disk.items()})
    session.add_cache_counters(counters)

    summaries = {name: _result_summary(results[name], max_cost) for name in STRATEGIES}
    payload = {
        "benchmark": {
            "name": benchmark.name,
            "seed": seed,
            "n_processes": config.n_processes,
            "n_node_types": config.n_node_types,
            "deadline": benchmark.application.deadline,
        },
        "setting": {"ser": FAMILY_SER, "hpd": FAMILY_HPD, "max_cost": max_cost},
        "strategies": summaries,
    }
    rows = [
        [
            name,
            "yes" if summary["feasible"] else "no",
            "yes" if summary["accepted"] else "no",
            "inf" if summary["cost"] is None else f"{summary['cost']:g}",
            "inf" if summary["schedule_length"] is None else f"{summary['schedule_length']:.2f}",
            summary["evaluations"],
        ]
        for name, summary in summaries.items()
    ]
    text = format_table(
        ["strategy", "feasible", "accepted", "cost", "worst-case SL (ms)", "evaluations"],
        rows,
        title=(
            f"synthetic-random — {benchmark.name} "
            f"({config.n_processes} processes, seed {seed}, ArC {max_cost:g})"
        ),
    )
    return ScenarioOutcome(payload=payload, text=text)


# ----------------------------------------------------------------------
# synthetic-suite: the acceptance sweep shape at arbitrary size
# ----------------------------------------------------------------------
@register_scenario(
    "synthetic-suite",
    title="Acceptance sweep over a generated benchmark suite",
    description=(
        "Reproduce the shape of the paper's 150-application acceptance "
        "evaluation over a suite of chosen size: MIN/MAX/OPT acceptance "
        f"percentages at ArC in {{15, 20, 25}} for the medium-SER/"
        f"HPD={FAMILY_HPD:g} % setting"
    ),
    params=(
        ScenarioParam(
            "count",
            "int",
            default=6,
            minimum=1,
            maximum=500,
            description="Number of generated applications (the paper uses 150)",
        ),
        ScenarioParam(
            "n_processes",
            "int",
            default=16,
            minimum=1,
            maximum=2000,
            description="Processes per application",
        ),
        ScenarioParam("seed", "int", default=1, description="Base seed; app i uses seed+i"),
    ),
)
def run_synthetic_suite(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    preset = replace(
        session.config.resolved_preset(),
        n_applications=params["count"],
        process_counts=(params["n_processes"],),
        base_seed=params["seed"],
    )
    # The session's shared experiment is pinned to the configured preset;
    # this family needs its own suite, so it owns (and closes) a private
    # experiment and registers its counters with the session explicitly.
    experiment = AcceptanceExperiment(
        preset=preset,
        n_jobs=session.config.jobs,
        store_dir=session.config.cache_dir,
        store_max_bytes=session.config.cache_max_bytes,
        single_flight=session.single_flight,
        progress=session.emit_progress if session.progress is not None else None,
    )
    try:
        setting = experiment.run_setting(FAMILY_SER, FAMILY_HPD)
        acceptance = {
            f"{arc:g}": setting.acceptance_percent(arc) for arc in PAPER_ARC_VALUES
        }
        average_cost = {
            name: _finite(setting.average_cost(name)) for name in STRATEGIES
        }
        session.add_cache_counters(experiment.cache_report())
    finally:
        experiment.close()

    payload = {
        "suite": {
            "count": params["count"],
            "n_processes": params["n_processes"],
            "base_seed": params["seed"],
        },
        "setting": {"ser": FAMILY_SER, "hpd": FAMILY_HPD},
        "acceptance_percent": acceptance,
        "average_cost": average_cost,
    }
    rows = [
        [f"{arc:g}"] + [acceptance[f"{arc:g}"][name] for name in STRATEGIES]
        for arc in PAPER_ARC_VALUES
    ]
    text = format_table(
        ["ArC"] + list(STRATEGIES),
        rows,
        title=(
            f"synthetic-suite — % accepted over {params['count']} applications "
            f"({params['n_processes']} processes, base seed {params['seed']})"
        ),
    )
    return ScenarioOutcome(payload=payload, text=text)


# ----------------------------------------------------------------------
# fault-injection: Monte-Carlo campaign vs. the analytic model
# ----------------------------------------------------------------------
#: Fixed three-process control application profiled by the campaign
#: (name, nominal WCET in ms).
_INJECTION_PROCESSES = (("sense", 4.0), ("compute", 6.0), ("actuate", 2.0))

#: Baseline (unhardened) ECU model the hardening ladder is applied to.
_INJECTION_ECU = ProcessorModel(
    name="ECU",
    flip_flops=20_000,
    upset_rate_per_ff_cycle=5e-12,
    clock_mhz=100.0,
    architectural_derating=0.1,
)


def _injection_application() -> Application:
    graph = TaskGraph("injection_chain")
    for name, wcet in _INJECTION_PROCESSES:
        graph.add_process(Process(name, nominal_wcet=wcet))
    graph.add_message(Message("m1", "sense", "compute", transmission_time=0.5))
    graph.add_message(Message("m2", "compute", "actuate", transmission_time=0.5))
    application = Application(
        name="injection_chain",
        deadline=50.0,
        reliability_goal=1.0 - 1e-5,
    )
    application.add_graph(graph)
    return application


@register_scenario(
    "fault-injection",
    title="Monte-Carlo fault injection vs. the analytic failure model",
    description=(
        "Profile a three-process control application entirely from "
        "injection campaigns and cross-validate every (process, node, "
        "level) estimate against the closed-form failure probability"
    ),
    params=(
        ScenarioParam(
            "runs",
            "int",
            default=20_000,
            minimum=100,
            maximum=10_000_000,
            description="Simulated executions per estimate",
        ),
        ScenarioParam("seed", "int", default=2009, description="Campaign seed"),
        ScenarioParam(
            "hardening_levels",
            "int",
            default=3,
            minimum=1,
            maximum=8,
            description="Levels of the selective-hardening ladder",
        ),
    ),
)
def run_fault_injection(session: "Session", params: Dict[str, Any]) -> ScenarioOutcome:
    runs = params["runs"]
    levels = params["hardening_levels"]
    application = _injection_application()
    ecu = linear_cost_node_type("ECU", base_cost=10.0, levels=levels)
    plan = SelectiveHardeningPlan.linear(levels)
    campaign = FaultInjectionCampaign(runs=runs, seed=params["seed"])
    profile = campaign.profile_application(
        application, [ecu], {"ECU": _INJECTION_ECU}, plan
    )

    entries: List[Dict[str, Any]] = []
    all_within = True
    for name, _ in _INJECTION_PROCESSES:
        for level in ecu.hardening_levels:
            wcet = profile.wcet(name, "ECU", level)
            observed_p = profile.failure_probability(name, "ECU", level)
            hardened = apply_selective_hardening(_INJECTION_ECU, plan, level)
            analytic_p = hardened.failure_probability(wcet)
            observed = round(observed_p * runs)
            expected = analytic_p * runs
            # Count-space tolerance: ~4 sigma of the binomial failure count
            # plus a rule-of-three floor so near-zero expectations (heavily
            # hardened levels) do not reject legitimate small-sample noise.
            tolerance = 4.0 * sqrt(expected * (1.0 - analytic_p)) + 3.0
            within = abs(observed - expected) <= tolerance
            all_within = all_within and within
            entries.append(
                {
                    "process": name,
                    "node_type": "ECU",
                    "level": level,
                    "wcet_ms": wcet,
                    "monte_carlo": observed_p,
                    "analytic": analytic_p,
                    "observed_failures": observed,
                    "expected_failures": expected,
                    "tolerance_failures": tolerance,
                    "within_tolerance": within,
                }
            )

    payload = {
        "campaign": {"runs": runs, "seed": params["seed"], "hardening_levels": levels},
        "entries": entries,
        "all_within_tolerance": all_within,
    }
    rows = [
        [
            entry["process"],
            entry["level"],
            f"{entry['wcet_ms']:.2f}",
            f"{entry['monte_carlo']:.3e}",
            f"{entry['analytic']:.3e}",
            "yes" if entry["within_tolerance"] else "NO",
        ]
        for entry in entries
    ]
    text = format_table(
        ["process", "level", "WCET (ms)", "Monte-Carlo p", "analytic p", "within tol."],
        rows,
        title=(
            f"fault-injection — {runs} runs/estimate, seed {params['seed']}, "
            f"{levels} hardening level(s)"
        ),
    )
    return ScenarioOutcome(payload=payload, text=text)
