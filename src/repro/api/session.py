"""The Session: one configured front door to the evaluation machinery.

A :class:`Session` binds a frozen :class:`~repro.api.config.RunConfig` to
the performance machinery of PRs 2–4 and owns, for its lifetime:

* **kernel selection** — scoped through
  :func:`repro.kernels.registry.use_kernel` (snapshot/restore, exception
  safe) instead of mutating the process-global defaults;
* **the persistent design-point store** — one lazily-opened
  :class:`~repro.engine.store.DesignPointStore` handle when
  ``config.cache_dir`` is set;
* **evaluation-engine construction** — :meth:`engine` builds an
  :class:`~repro.engine.engine.EvaluationEngine` for an
  ``(application, profile)`` context, warm-started from the store;
* **the shared experiment** — :meth:`experiment` memoizes one
  :class:`~repro.experiments.synthetic.AcceptanceExperiment` so scenarios
  run back to back (e.g. Fig. 6a then 6b) reuse each other's settings.

Scenarios execute through :meth:`run`, which wraps the runner in the kernel
scope, times it, and assembles the structured
:class:`~repro.api.report.RunReport`.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Any, Callable, ContextManager, Dict, Mapping, Optional, Tuple

from repro.api.config import RunConfig
from repro.api.registry import get_scenario
from repro.api.report import RunReport
from repro.core.application import Application
from repro.core.profile import ExecutionProfile
from repro.engine.engine import EvaluationEngine
from repro.engine.store import DesignPointStore
from repro.experiments.synthetic import AcceptanceExperiment
from repro.kernels.base import SFPKernel
from repro.kernels.registry import SCHED_KERNELS, SFP_KERNELS, use_kernel
from repro.kernels.sched_base import SchedulerKernel

_KernelScope = ContextManager[Tuple[SFPKernel, SchedulerKernel]]

#: Observer invoked with one JSON-native event dict per progress step —
#: ``scenario_started`` / ``setting_progress`` (with engine/batch cache
#: counter snapshots per optimizer round) / ``scenario_finished``.  The
#: serve layer streams these as NDJSON; a callback must never mutate the
#: event or raise (a raising observer aborts the run it watches).
ProgressCallback = Callable[[Dict[str, Any]], None]

#: Zeroed cache counters reported by scenarios that never touch the
#: memoized experiment machinery (e.g. the motivational examples).
_EMPTY_CACHE_REPORT: Dict[str, float] = {
    "hits": 0,
    "misses": 0,
    "search_evaluations": 0,
    "points_computed": 0,
    "hit_rate": 0.0,
    "disk_hits": 0,
    "disk_entries_loaded": 0,
    "batch_rows": 0,
    "batch_cold_rows": 0,
    "batch_fill_rate": 0.0,
}

#: Raw additive counters accepted by :meth:`Session.add_cache_counters`;
#: derived rates (``hit_rate``, ``batch_fill_rate``) are recomputed on read.
_ADDITIVE_CACHE_COUNTERS = (
    "hits",
    "misses",
    "search_evaluations",
    "points_computed",
    "disk_hits",
    "disk_entries_loaded",
    "batch_rows",
    "batch_cold_rows",
)


class Session:
    """Configured execution context for scenarios and ad-hoc evaluation.

    Usable as a context manager — ``with Session(config) as session:`` pins
    the configured kernel backends for the block — or directly through
    :meth:`run`, which enters the kernel scope around each scenario on its
    own.  Either way the ambient process state is restored afterwards.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        progress: Optional[ProgressCallback] = None,
        single_flight: bool = False,
    ) -> None:
        self.config = config if config is not None else RunConfig()
        #: Optional progress observer (see :data:`ProgressCallback`).  Like
        #: the sanitizer this is deliberately *not* a :class:`RunConfig`
        #: field: it is an observer handle, not an experiment parameter, and
        #: keeping it out of the frozen config preserves the lossless config
        #: round-trip in report JSON.
        self.progress = progress
        #: Serialize identical engine contexts across concurrent processes
        #: sharing this session's ``cache_dir`` (the serve job queue's
        #: shared warm store); see :meth:`DesignPointStore.single_flight`.
        self.single_flight = single_flight
        self._experiment: Optional[AcceptanceExperiment] = None
        self._store: Optional[DesignPointStore] = None
        self._kernel_scope: Optional[_KernelScope] = None
        self._scenario_counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # kernel scope
    # ------------------------------------------------------------------
    def _scope(self) -> _KernelScope:
        return use_kernel(sfp=self.config.sfp_kernel, sched=self.config.sched_kernel)

    def __enter__(self) -> "Session":
        if self._kernel_scope is not None:
            raise RuntimeError("Session is not re-entrant")
        self._kernel_scope = self._scope()
        self._kernel_scope.__enter__()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        scope, self._kernel_scope = self._kernel_scope, None
        try:
            if self._experiment is not None:
                self._experiment.close()
        finally:
            if scope is not None:
                scope.__exit__(exc_type, exc_value, traceback)

    # ------------------------------------------------------------------
    # owned resources
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[DesignPointStore]:
        """The session's persistent store handle (``None`` without cache_dir)."""
        if self.config.cache_dir is None:
            return None
        if self._store is None:
            self._store = DesignPointStore(
                self.config.cache_dir, max_bytes=self.config.cache_max_bytes
            )
        return self._store

    def engine(
        self, application: Application, profile: ExecutionProfile
    ) -> EvaluationEngine:
        """Build an evaluation engine for one context, warm-started from disk."""
        engine = EvaluationEngine(application, profile)
        store = self.store
        if store is not None:
            store.warm(engine)
        return engine

    def persist(self, engine: EvaluationEngine) -> None:
        """Merge an engine's memo tables back into the persistent store."""
        store = self.store
        if store is not None:
            store.persist(engine)

    def experiment(self) -> AcceptanceExperiment:
        """The session's shared synthetic experiment (memoized).

        Sharing matters: the Fig. 6b cost table reuses the Fig. 6a settings,
        so running both scenarios in one session computes each (SER, HPD)
        setting exactly once.
        """
        if self._experiment is None:
            jobs = self.config.jobs
            self._experiment = AcceptanceExperiment(
                preset=self.config.resolved_preset(),
                n_jobs=jobs,
                store_dir=self.config.cache_dir,
                store_max_bytes=self.config.cache_max_bytes,
                single_flight=self.single_flight,
                progress=self.emit_progress if self.progress is not None else None,
            )
        return self._experiment

    def emit_progress(self, event: Dict[str, Any]) -> None:
        """Forward one progress event to the session's observer, if any."""
        if self.progress is not None:
            self.progress(event)

    def add_cache_counters(self, counters: Mapping[str, float]) -> None:
        """Accumulate engine counters from a scenario-owned engine.

        Scenarios that run their own :class:`EvaluationEngine` (the
        generator-backed families) rather than the shared experiment call
        this so their cache/batch statistics still surface in the
        :class:`~repro.api.report.RunReport`.  Only the raw additive
        counters are accepted; derived rates are recomputed on read.
        """
        for key in _ADDITIVE_CACHE_COUNTERS:
            value = counters.get(key)
            if value:
                self._scenario_counters[key] = self._scenario_counters.get(key, 0) + value

    def cache_report(self) -> Dict[str, float]:
        """Aggregate engine counters over the experiment and scenario engines."""
        report = (
            dict(_EMPTY_CACHE_REPORT)
            if self._experiment is None
            else self._experiment.cache_report()
        )
        for key, value in self._scenario_counters.items():
            report[key] = report.get(key, 0) + value
        lookups = report["hits"] + report["misses"]
        report["hit_rate"] = report["hits"] / lookups if lookups else 0.0
        report["batch_fill_rate"] = (
            report["batch_cold_rows"] / report["batch_rows"] if report["batch_rows"] else 0.0
        )
        return report

    # ------------------------------------------------------------------
    # scenario execution
    # ------------------------------------------------------------------
    def run(self, scenario_id: str) -> RunReport:
        """Run one registered scenario and return its structured report.

        ``config.output`` is deliberately *not* written here: a session can
        run many scenarios, and each run silently overwriting the previous
        report would lose data.  The one-shot :func:`repro.api.run` (and the
        CLI driver on top of it) persists the single report it produces.
        """
        spec = get_scenario(scenario_id)
        params = spec.resolve_params(self.config.scenario_params)
        with self._scope():
            kernels = {
                "sfp": SFP_KERNELS.active().name,
                "sched": SCHED_KERNELS.active().name,
            }
            self.emit_progress(
                {
                    "event": "scenario_started",
                    "scenario": scenario_id,
                    "params": dict(params),
                    "kernels": kernels,
                }
            )
            start = time.perf_counter()
            outcome = spec.runner(self, params)
            wall_clock = time.perf_counter() - start
            self.emit_progress(
                {
                    "event": "scenario_finished",
                    "scenario": scenario_id,
                    "wall_clock_seconds": wall_clock,
                    "cache": self.cache_report(),
                }
            )
        report = RunReport(
            scenario=scenario_id,
            config=self.config,
            results=outcome.payload,
            params=params,
            kernels=kernels,
            cache=self.cache_report(),
            timings={"wall_clock_seconds": wall_clock},
            text=outcome.text,
        )
        # Runtime determinism sanitizer hook (R008): when active, walk the
        # assembled report's JSON-facing fields before any consumer calls
        # to_json.  Lazy import keeps repro.lint off unsanitized runs.
        from repro.lint.sanitizer import active_sanitizer

        sanitizer = active_sanitizer()
        if sanitizer is not None:
            sanitizer.check_report(
                {
                    "results": report.results,
                    "params": report.params,
                    "kernels": report.kernels,
                    "cache": report.cache,
                    "timings": report.timings,
                },
                scenario_id,
            )
        return report
