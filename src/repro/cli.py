"""Command-line interface of the library — a thin driver over ``repro.api``.

The generic entry point runs any registered scenario:

* ``repro-ftes run <scenario>`` — execute one scenario (``fig6a`` … ``fig6d``,
  ``motivational``, ``cruise-control``) under a declarative
  :class:`~repro.api.config.RunConfig` built from the flags.
* ``repro-ftes run --list`` — list the registered scenarios.

The pre-registry subcommands (``motivational``, ``synthetic``,
``cruise-control``) are kept as deprecated shims: they emit a single
deprecation notice (a :class:`DeprecationWarning` plus a stderr line, since
default warning filters hide non-``__main__`` DeprecationWarnings) and
delegate to the same scenario runners, so their printed tables and result
*values* stay identical.  One deliberate exception: ``synthetic --output``
now writes the registry's normalized payload (``"5"``-style ``%g`` setting
keys instead of the old ``"5.0"`` float reprs), so the legacy JSON is
key-for-key identical to ``api.run(...)`` payloads and the golden fixtures.

All output is plain text (tables / ASCII bars); nothing is written to disk
unless ``--output`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.sanitizer import DeterminismSanitizer

from repro.api import RunConfig, RunReport, Session, list_scenarios
from repro.api import run as api_run
from repro.api.config import DEFAULT_CACHE_SIZE_MB, PRESETS
from repro.core.exceptions import ModelError
from repro.kernels import AUTO, kernel_names, sched_kernel_names

#: Figure flag values of the legacy ``synthetic`` subcommand → scenario ids.
_FIGURE_SCENARIOS = {"6a": "fig6a", "6b": "fig6b", "6c": "fig6c", "6d": "fig6d"}


def _job_count(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (1 = serial, 0 = one per CPU), got {jobs}"
        )
    return jobs


def _cache_size(value: str) -> int:
    size = int(value)
    if size < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (MiB), got {size}")
    return size


def _scenario_param(value: str) -> Tuple[str, str]:
    """Parse one ``--param key=value`` pair; validation happens at run time
    against the scenario's declared schema."""
    key, separator, raw = value.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=VALUE, got {value!r} (e.g. --param n_processes=100)"
        )
    return key, raw


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the generic driver and the legacy subcommands.

    Each flag maps 1:1 onto a :class:`RunConfig` field; ``None`` defaults
    defer to the documented resolution order (explicit > env var > auto).
    """
    parser.add_argument(
        "--sfp-kernel",
        choices=[AUTO] + kernel_names(),
        default=None,
        help=(
            "SFP kernel backend (default: REPRO_SFP_KERNEL env var or "
            "the fastest available); all backends are bit-identical, "
            "this is a speed knob only"
        ),
    )
    parser.add_argument(
        "--sched-kernel",
        choices=[AUTO] + sched_kernel_names(),
        default=None,
        help=(
            "scheduler kernel backend (default: REPRO_SCHED_KERNEL env "
            "var or the fastest available); all backends are "
            "bit-identical, this is a speed knob only"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help=(
            "worker processes for the per-application loop "
            "(1 = serial, 0 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "directory of the persistent design-point cache; warm-starts "
            "repeated runs of the same sweep (results are bit-identical "
            "with or without it)"
        ),
    )
    parser.add_argument(
        "--cache-size-mb",
        type=_cache_size,
        default=DEFAULT_CACHE_SIZE_MB,
        help=(
            "size cap of the persistent cache directory in MiB; "
            "least-recently-used entries are evicted beyond it"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the preset's base seed for synthetic benchmark generation",
    )


def _config_from_arguments(
    arguments: argparse.Namespace, output: Optional[Path] = None
) -> RunConfig:
    return RunConfig(
        sfp_kernel=getattr(arguments, "sfp_kernel", None),
        sched_kernel=getattr(arguments, "sched_kernel", None),
        cache_dir=getattr(arguments, "cache_dir", None),
        cache_size_mb=getattr(arguments, "cache_size_mb", DEFAULT_CACHE_SIZE_MB),
        jobs=getattr(arguments, "jobs", 1),
        seed=getattr(arguments, "seed", None),
        preset=getattr(arguments, "preset", "fast"),
        output=output,
        scenario_params=dict(getattr(arguments, "params", None) or []),
    )


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _run_serve(arguments: argparse.Namespace) -> int:
    """Build a :class:`ServeConfig` from the flags and run the server."""
    import os

    from repro.lint.sanitizer import SANITIZE_ENV, env_requests_sanitizer
    from repro.serve import DEFAULT_HOST, DEFAULT_PORT, ServeConfig, run_server

    sanitize = bool(arguments.sanitize) or env_requests_sanitizer()
    if sanitize:
        # Export the opt-in so fork-started pool workers inherit it.
        os.environ.setdefault(SANITIZE_ENV, "1")
    try:
        config = ServeConfig(
            host=arguments.host if arguments.host is not None else DEFAULT_HOST,
            port=arguments.port if arguments.port is not None else DEFAULT_PORT,
            workers=arguments.workers,
            queue_size=arguments.queue_size,
            job_timeout_seconds=arguments.job_timeout,
            spool_dir=arguments.spool_dir,
            cache_dir=arguments.cache_dir,
            cache_size_mb=arguments.cache_size_mb,
            single_flight=not arguments.no_single_flight,
            sanitize=sanitize,
        )
    except ModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return run_server(config)


def _run_lint_args(lint_args: Sequence[str]) -> int:
    """Delegate ``repro-ftes lint ...`` to the :mod:`repro.lint` CLI."""
    from repro.lint.cli import main as lint_main

    return lint_main(lint_args)


def _run_lint(arguments: argparse.Namespace) -> int:
    return _run_lint_args(arguments.lint_args)


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ftes",
        description=(
            "Reproduction of 'Analysis and Optimization of Fault-Tolerant "
            "Embedded Systems with Hardened Processors' (DATE 2009)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a registered scenario (generic driver over repro.api)"
    )
    run_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario id (see --list)",
    )
    run_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the registered scenarios and exit",
    )
    run_parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="fast",
        help="experiment size/effort preset (synthetic scenarios)",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="optional path to write the structured RunReport as JSON",
    )
    run_parser.add_argument(
        "--param",
        action="append",
        type=_scenario_param,
        dest="params",
        default=None,
        metavar="KEY=VALUE",
        help=(
            "override one scenario-family parameter (repeatable); values are "
            "validated against the scenario's declared schema (see --list)"
        ),
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run under the runtime determinism sanitizer (also enabled by "
            "REPRO_SANITIZE=1): records unseeded RNG use, unpicklable pool "
            "submissions, cross-process mutation, and non-JSON payload "
            "values; violations go to stderr and exit code 3"
        ),
    )
    _add_config_arguments(run_parser)
    run_parser.set_defaults(handler=_run_scenario)

    motivational = subparsers.add_parser(
        "motivational",
        help="[deprecated: use `run motivational`] Fig. 3 / Fig. 4 examples "
        "and the Appendix A.2 SFP example",
    )
    motivational.set_defaults(handler=_run_motivational)

    synthetic = subparsers.add_parser(
        "synthetic",
        help="[deprecated: use `run fig6a` … `run fig6d`] Fig. 6 synthetic "
        "acceptance-rate experiments",
    )
    synthetic.add_argument(
        "--figure",
        choices=["6a", "6b", "6c", "6d", "all"],
        default="6a",
        help="which figure of the paper to regenerate",
    )
    synthetic.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="fast",
        help="experiment size/effort preset",
    )
    synthetic.set_defaults(handler=_run_synthetic)

    cruise = subparsers.add_parser(
        "cruise-control",
        help="[deprecated: use `run cruise-control`] vehicle cruise "
        "controller case study",
    )
    cruise.set_defaults(handler=_run_cruise_control)

    serve = subparsers.add_parser(
        "serve",
        help="run the async evaluation service (HTTP JSON API over the "
        "scenario registry; see `python -m repro.serve --help`)",
    )
    serve.add_argument(
        "--host", default=None, help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default 8321; 0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--workers",
        type=_worker_count,
        default=2,
        help="job worker processes sharing the warm store (default 2)",
    )
    serve.add_argument(
        "--queue-size",
        type=_worker_count,
        default=16,
        metavar="N",
        help="bounded job queue capacity; beyond it POST /jobs returns "
        "429 with Retry-After (default 16)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout; exceeded jobs are recorded "
        "as failed (default: unbounded)",
    )
    serve.add_argument(
        "--spool-dir",
        type=Path,
        default=None,
        help="directory for per-job event spools and the shared store "
        "(default: a fresh temp directory)",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="shared design-point store directory (default: <spool>/store)",
    )
    serve.add_argument(
        "--cache-size-mb",
        type=_cache_size,
        default=DEFAULT_CACHE_SIZE_MB,
        help="size cap of the shared store in MiB",
    )
    serve.add_argument(
        "--no-single-flight",
        action="store_true",
        help="disable the store's single-flight guard (debugging aid; "
        "concurrent identical jobs may then compute points twice)",
    )
    serve.add_argument(
        "--sanitize",
        action="store_true",
        help="install the runtime determinism sanitizer in every job "
        "worker (also enabled by REPRO_SANITIZE=1); jobs recording "
        "violations are failed",
    )
    serve.set_defaults(handler=_run_serve)

    lint = subparsers.add_parser(
        "lint",
        help="AST invariant checker: fingerprint purity, kernel contracts, "
        "structure tokens, seeded RNGs (see `repro-ftes lint --help`)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(handler=_run_lint)

    for sub in (motivational, synthetic, cruise):
        sub.add_argument(
            "--output",
            type=Path,
            default=None,
            help="optional path to also write the results as JSON",
        )
        _add_config_arguments(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    if arg_list and arg_list[0] == "lint":
        # Dispatched before argparse: the lint CLI owns its flags, and
        # ``nargs=REMAINDER`` does not forward leading optionals.
        return _run_lint_args(arg_list[1:])
    parser = build_parser()
    arguments = parser.parse_args(arg_list)
    return arguments.handler(arguments)


# ----------------------------------------------------------------------
# Generic scenario driver
# ----------------------------------------------------------------------
def _print_cache_summary(report: RunReport) -> None:
    cache = report.cache
    print(
        f"evaluation engine ({report.kernels['sfp']} SFP kernel, "
        f"{report.kernels['sched']} scheduler kernel): "
        f"{cache['points_computed']} design points computed "
        f"({cache['search_evaluations']} mapping evaluations), "
        f"{cache['hits']} cache hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate'] * 100.0:.1f}%)"
    )
    cache_dir = report.config.cache_dir
    if cache_dir is not None:
        print(
            f"persistent store ({cache_dir}): "
            f"{cache['disk_entries_loaded']} entries warm-loaded, "
            f"{cache['disk_hits']} disk-cache hits"
        )


def _run_scenario(arguments: argparse.Namespace) -> int:
    if arguments.list_scenarios:
        print("registered scenarios:")
        for spec in list_scenarios():
            figure = f" [{spec.figure}]" if spec.figure else ""
            print(f"  {spec.scenario_id:<16} {spec.title}{figure}")
            for param in spec.params:
                description = f"  {param.description}" if param.description else ""
                print(f"    --param {param.describe()}{description}")
        return 0
    if arguments.scenario is None:
        print("error: a scenario id is required (or --list)", file=sys.stderr)
        return 2
    config = _config_from_arguments(arguments, output=arguments.output)
    sanitizer = _maybe_sanitizer(arguments)
    try:
        if sanitizer is not None:
            with sanitizer:
                report = api_run(arguments.scenario, config)
        else:
            report = api_run(arguments.scenario, config)
    except ModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.text)
    print()
    _print_cache_summary(report)
    print(
        f"scenario {report.scenario}: "
        f"{report.timings['wall_clock_seconds']:.2f} s wall clock"
    )
    if arguments.output is not None:
        print(f"report written to {arguments.output}")
    if sanitizer is not None:
        from repro.lint.sanitizer import print_report

        print_report(sanitizer)
        if sanitizer.violations:
            return 3
    return 0


def _maybe_sanitizer(
    arguments: argparse.Namespace,
) -> Optional["DeterminismSanitizer"]:
    """A fresh :class:`DeterminismSanitizer` when requested, else ``None``.

    Deliberately *not* a :class:`RunConfig` field: the sanitizer is an
    observer, not an experiment parameter, and keeping it out of the config
    preserves the lossless config round-trip in report JSON and goldens.
    """
    import os

    from repro.lint.sanitizer import (
        SANITIZE_ENV,
        DeterminismSanitizer,
        env_requests_sanitizer,
    )

    if getattr(arguments, "sanitize", False) or env_requests_sanitizer():
        # Export the env opt-in so pool workers (fresh processes) install
        # their own child-side sanitizer in _init_worker.
        os.environ.setdefault(SANITIZE_ENV, "1")
        return DeterminismSanitizer()
    return None


# ----------------------------------------------------------------------
# Deprecated sub-command shims (behavior-preserving, registry-backed)
# ----------------------------------------------------------------------
def _warn_deprecated_command(old: str, new: str) -> None:
    message = f"`repro-ftes {old}` is deprecated; use `repro-ftes {new}`"
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    # Default warning filters only display DeprecationWarnings raised in
    # __main__; the console entry point lands here via an import, so the
    # migration notice must also go to stderr to ever be seen.
    print(f"warning: {message}", file=sys.stderr)


def _run_motivational(arguments: argparse.Namespace) -> int:
    _warn_deprecated_command("motivational", "run motivational")
    with Session(_config_from_arguments(arguments)) as session:
        report = session.run("motivational")
    print(report.text)
    _maybe_write_json(arguments, report.results)
    return 0


def _run_synthetic(arguments: argparse.Namespace) -> int:
    figures: List[str] = (
        ["6a", "6b", "6c", "6d"] if arguments.figure == "all" else [arguments.figure]
    )
    _warn_deprecated_command(
        "synthetic", " / ".join(f"run {_FIGURE_SCENARIOS[f]}" for f in figures)
    )
    payload = {}
    # One session for all figures: they share the memoized experiment, so
    # e.g. the Fig. 6b table reuses the settings computed for Fig. 6a.
    with Session(_config_from_arguments(arguments)) as session:
        report: Optional[RunReport] = None
        for figure in figures:
            report = session.run(_FIGURE_SCENARIOS[figure])
            print(report.text)
            print()
            payload[figure] = report.results["acceptance"]
    assert report is not None
    _print_cache_summary(report)
    cache = dict(report.cache)
    cache["kernel"] = report.kernels["sfp"]
    cache["sched_kernel"] = report.kernels["sched"]
    payload["cache"] = cache
    _maybe_write_json(arguments, payload)
    return 0


def _run_cruise_control(arguments: argparse.Namespace) -> int:
    _warn_deprecated_command("cruise-control", "run cruise-control")
    with Session(_config_from_arguments(arguments)) as session:
        report = session.run("cruise-control")
    print(report.text)
    _maybe_write_json(arguments, report.results)
    return 0


def _maybe_write_json(arguments: argparse.Namespace, payload: dict) -> None:
    if getattr(arguments, "output", None) is None:
        return
    arguments.output.write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )
    print(f"results written to {arguments.output}")


if __name__ == "__main__":  # pragma: no cover - manual invocation only
    sys.exit(main())
