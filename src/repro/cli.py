"""Command-line interface of the library.

``repro-ftes`` exposes the paper's experiments from the shell:

* ``repro-ftes motivational`` — reproduce the Fig. 3 / Fig. 4 motivational
  examples and the Appendix A.2 worked SFP computation.
* ``repro-ftes synthetic`` — run the Fig. 6 acceptance-rate experiments
  (choose the figure with ``--figure`` and the effort with ``--preset``).
* ``repro-ftes cruise-control`` — run the cruise-controller case study.

All output is plain text (tables / ASCII bars); nothing is written to disk
unless ``--output`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.engine.store import DEFAULT_MAX_BYTES
from repro.experiments.motivational import (
    appendix_sfp_example,
    evaluate_fig3_alternatives,
    evaluate_fig4_alternatives,
)
from repro.kernels import (
    AUTO,
    active_kernel,
    active_sched_kernel,
    kernel_names,
    sched_kernel_names,
    set_default_kernel,
    set_default_sched_kernel,
)
from repro.experiments.results import format_table
from repro.experiments.synthetic import (
    AcceptanceExperiment,
    ExperimentPreset,
    figure_6a_hpd_sweep,
    figure_6b_cost_table,
    figure_6c_ser_sweep,
    figure_6d_ser_sweep,
    render_cost_table,
    render_hpd_sweep,
)
from repro.experiments.cruise_control import run_cruise_controller_study


def _job_count(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (1 = serial, 0 = one per CPU), got {jobs}"
        )
    return jobs


def _cache_size(value: str) -> int:
    size = int(value)
    if size < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (MiB), got {size}")
    return size


def _apply_kernel_choice(arguments: argparse.Namespace) -> str:
    """Apply ``--sfp-kernel`` (if given) and return the active backend name."""
    choice = getattr(arguments, "sfp_kernel", None)
    if choice is not None:
        return set_default_kernel(choice).name
    return active_kernel().name


def _apply_sched_kernel_choice(arguments: argparse.Namespace) -> str:
    """Apply ``--sched-kernel`` (if given) and return the active backend name."""
    choice = getattr(arguments, "sched_kernel", None)
    if choice is not None:
        return set_default_sched_kernel(choice).name
    return active_sched_kernel().name


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ftes",
        description=(
            "Reproduction of 'Analysis and Optimization of Fault-Tolerant "
            "Embedded Systems with Hardened Processors' (DATE 2009)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    motivational = subparsers.add_parser(
        "motivational", help="Fig. 3 / Fig. 4 examples and the Appendix A.2 SFP example"
    )
    motivational.set_defaults(handler=_run_motivational)

    synthetic = subparsers.add_parser(
        "synthetic", help="Fig. 6 synthetic acceptance-rate experiments"
    )
    synthetic.add_argument(
        "--figure",
        choices=["6a", "6b", "6c", "6d", "all"],
        default="6a",
        help="which figure of the paper to regenerate",
    )
    synthetic.add_argument(
        "--preset",
        choices=["smoke", "fast", "paper"],
        default="fast",
        help="experiment size/effort preset",
    )
    synthetic.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help=(
            "worker processes for the per-application loop "
            "(1 = serial, 0 = one per CPU)"
        ),
    )
    synthetic.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "directory of the persistent design-point cache; warm-starts "
            "repeated runs of the same sweep (results are bit-identical "
            "with or without it)"
        ),
    )
    synthetic.add_argument(
        "--cache-size-mb",
        type=_cache_size,
        default=DEFAULT_MAX_BYTES // (1024 * 1024),
        help=(
            "size cap of the persistent cache directory in MiB; "
            "least-recently-used entries are evicted beyond it"
        ),
    )
    synthetic.set_defaults(handler=_run_synthetic)

    cruise = subparsers.add_parser(
        "cruise-control", help="vehicle cruise controller case study"
    )
    cruise.set_defaults(handler=_run_cruise_control)

    for sub in (motivational, synthetic, cruise):
        sub.add_argument(
            "--output",
            type=Path,
            default=None,
            help="optional path to also write the results as JSON",
        )
        sub.add_argument(
            "--sfp-kernel",
            choices=[AUTO] + kernel_names(),
            default=None,
            help=(
                "SFP kernel backend (default: REPRO_SFP_KERNEL env var or "
                "the fastest available); all backends are bit-identical, "
                "this is a speed knob only"
            ),
        )
        sub.add_argument(
            "--sched-kernel",
            choices=[AUTO] + sched_kernel_names(),
            default=None,
            help=(
                "scheduler kernel backend (default: REPRO_SCHED_KERNEL env "
                "var or the fastest available); all backends are "
                "bit-identical, this is a speed knob only"
            ),
        )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


# ----------------------------------------------------------------------
# Sub-command handlers
# ----------------------------------------------------------------------
def _run_motivational(arguments: argparse.Namespace) -> int:
    _apply_kernel_choice(arguments)
    _apply_sched_kernel_choice(arguments)
    fig3 = evaluate_fig3_alternatives()
    fig3_rows = [
        [
            outcome.label,
            outcome.reexecutions.get("N1", 0),
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for outcome in fig3
    ]
    print(
        format_table(
            ["h-version", "k", "worst-case SL (ms)", "cost", "schedulable"],
            fig3_rows,
            title="Fig. 3 — hardware vs. software recovery (single process)",
        )
    )
    print()
    fig4 = evaluate_fig4_alternatives()
    fig4_rows = [
        [
            label,
            ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
            ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            outcome.schedule_length,
            outcome.cost,
            "yes" if outcome.schedulable else "no",
        ]
        for label, outcome in fig4.items()
    ]
    print(
        format_table(
            ["alt", "h-versions", "re-executions", "worst-case SL (ms)", "cost", "schedulable"],
            fig4_rows,
            title="Fig. 4 — architecture alternatives for the Fig. 1 application",
        )
    )
    print()
    appendix = appendix_sfp_example()
    print("Appendix A.2 — worked SFP example")
    for key, value in appendix.items():
        print(f"  {key} = {value:.12g}")
    _maybe_write_json(
        arguments,
        {
            "fig3": [outcome.__dict__ for outcome in fig3],
            "fig4": {label: outcome.__dict__ for label, outcome in fig4.items()},
            "appendix": appendix,
        },
    )
    return 0


def _run_synthetic(arguments: argparse.Namespace) -> int:
    kernel_name = _apply_kernel_choice(arguments)
    sched_kernel_name = _apply_sched_kernel_choice(arguments)
    preset = {
        "smoke": ExperimentPreset.smoke,
        "fast": ExperimentPreset.fast,
        "paper": ExperimentPreset.paper,
    }[arguments.preset]()
    experiment = AcceptanceExperiment(
        preset=preset,
        n_jobs=arguments.jobs,
        store_dir=arguments.cache_dir,
        store_max_bytes=arguments.cache_size_mb * 1024 * 1024,
    )
    payload = {}
    figures = (
        ["6a", "6b", "6c", "6d"] if arguments.figure == "all" else [arguments.figure]
    )
    for figure in figures:
        if figure == "6a":
            sweep = figure_6a_hpd_sweep(experiment)
            print(render_hpd_sweep(sweep, "Fig. 6a — % accepted vs. HPD (SER=1e-11, ArC=20)"))
            payload["6a"] = sweep
        elif figure == "6b":
            table = figure_6b_cost_table(experiment)
            print(render_cost_table(table, "Fig. 6b — % accepted vs. (HPD, ArC) at SER=1e-11"))
            payload["6b"] = {str(k): v for k, v in table.items()}
        elif figure == "6c":
            sweep = figure_6c_ser_sweep(experiment)
            print(render_hpd_sweep(sweep, "Fig. 6c — % accepted vs. SER (HPD=5%, ArC=20)"))
            payload["6c"] = sweep
        elif figure == "6d":
            sweep = figure_6d_ser_sweep(experiment)
            print(render_hpd_sweep(sweep, "Fig. 6d — % accepted vs. SER (HPD=100%, ArC=20)"))
            payload["6d"] = sweep
        print()
    cache = experiment.cache_report()
    print(
        f"evaluation engine ({kernel_name} SFP kernel, "
        f"{sched_kernel_name} scheduler kernel): "
        f"{cache['points_computed']} design points computed "
        f"({cache['search_evaluations']} mapping evaluations), "
        f"{cache['hits']} cache hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate'] * 100.0:.1f}%)"
    )
    if arguments.cache_dir is not None:
        print(
            f"persistent store ({arguments.cache_dir}): "
            f"{cache['disk_entries_loaded']} entries warm-loaded, "
            f"{cache['disk_hits']} disk-cache hits"
        )
    cache["kernel"] = kernel_name
    cache["sched_kernel"] = sched_kernel_name
    payload["cache"] = cache
    _maybe_write_json(arguments, payload)
    return 0


def _run_cruise_control(arguments: argparse.Namespace) -> int:
    _apply_kernel_choice(arguments)
    _apply_sched_kernel_choice(arguments)
    study = run_cruise_controller_study()
    rows = []
    for strategy, outcome in study.outcomes.items():
        rows.append(
            [
                strategy,
                "yes" if outcome.schedulable else "no",
                outcome.cost if outcome.schedulable else float("inf"),
                outcome.schedule_length,
                ", ".join(f"{node}^{level}" for node, level in outcome.hardening.items()),
                ", ".join(f"{node}:{k}" for node, k in outcome.reexecutions.items()),
            ]
        )
    print(
        format_table(
            ["strategy", "schedulable", "cost", "worst-case SL (ms)", "h-versions", "re-executions"],
            rows,
            title="Cruise controller case study (D=300 ms, rho=1-1.2e-5)",
        )
    )
    print()
    print(f"OPT cost saving over MAX: {study.opt_saving_vs_max * 100:.1f}%")
    _maybe_write_json(
        arguments,
        {
            "outcomes": {
                strategy: outcome.__dict__ for strategy, outcome in study.outcomes.items()
            },
            "opt_saving_vs_max": study.opt_saving_vs_max,
        },
    )
    return 0


def _maybe_write_json(arguments: argparse.Namespace, payload: dict) -> None:
    if getattr(arguments, "output", None) is None:
        return
    arguments.output.write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )
    print(f"results written to {arguments.output}")


if __name__ == "__main__":  # pragma: no cover - manual invocation only
    sys.exit(main())
