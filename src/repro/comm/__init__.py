"""Communication substrate: time-triggered shared bus models."""

from repro.comm.bus import Bus, SimpleBus, TDMABus

__all__ = ["Bus", "SimpleBus", "TDMABus"]
