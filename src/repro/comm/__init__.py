"""Communication substrate: time-triggered shared bus models."""

from __future__ import annotations

from repro.comm.bus import Bus, SimpleBus, TDMABus

__all__ = ["Bus", "SimpleBus", "TDMABus"]
