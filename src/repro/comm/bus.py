"""Shared-bus communication models.

The paper assumes the computation nodes are connected by a single bus running
a fault-tolerant, time-triggered protocol (TTP [10]); the worst-case
transmission time of every message is a given input and communication faults
are outside the scope of the optimization.

Two concrete bus models are provided:

* :class:`SimpleBus` — messages are serialized first-come-first-served on a
  single shared medium.  A message may start as soon as its data is produced
  and the bus is free.  This is the default model used by the experiments; it
  captures exactly what the paper needs (a single contention domain with given
  worst-case transmission times).
* :class:`TDMABus` — a static TDMA round, as in TTP: each node owns a slot of
  fixed length per round and a message can only be transmitted during a slot
  owned by its sender.  This model is used by the bus-protocol tests and by
  the cruise-controller example to show the API supports a realistic
  time-triggered bus.

Both models are *stateful during one scheduling pass*: the list scheduler
calls :meth:`Bus.reset` before scheduling and then :meth:`Bus.reserve` once
per inter-node message, in the order the scheduler decides.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass
from operator import attrgetter
from typing import List, Optional, Sequence, Tuple

from repro.core.exceptions import ModelError, SchedulingError
from repro.utils.validation import require_non_negative, require_positive

#: Sort key of the reservation list (see :meth:`Bus.reserve`).
_BY_START = attrgetter("start")


@dataclass(frozen=True)
class BusReservation:
    """A granted transmission window on the bus."""

    message: str
    sender_node: str
    start: float
    finish: float


class Bus(ABC):
    """Abstract interface of a shared communication medium."""

    def __init__(self) -> None:
        self._reservations: List[BusReservation] = []
        # Windows adopted from a scheduler kernel but not yet materialized
        # into BusReservation objects (see adopt_reservations).
        self._pending_windows: Optional[List[Tuple[str, str, float, float]]] = None

    def reset(self) -> None:
        """Forget all reservations (called before each scheduling pass)."""
        self._reservations = []
        self._pending_windows = None

    def _materialize(self) -> None:
        """Turn adopted windows into BusReservation objects on first access."""
        pending = self._pending_windows
        if pending is not None:
            self._pending_windows = None
            self._reservations = [
                BusReservation(
                    message=message, sender_node=sender, start=start, finish=finish
                )
                for message, sender, start, finish in pending
            ]

    def signature(self) -> Tuple:
        """Configuration fingerprint for evaluation-engine cache keys.

        Two buses with equal signatures must grant identical reservations for
        identical request sequences.  Subclasses with configuration (slot
        orders, slot lengths, ...) must extend this.
        """
        return (type(self).__name__,)

    @property
    def reservations(self) -> List[BusReservation]:
        """All reservations granted since the last :meth:`reset`."""
        self._materialize()
        return list(self._reservations)

    def reserve(
        self,
        message: str,
        sender_node: str,
        earliest_start: float,
        duration: float,
    ) -> BusReservation:
        """Reserve the earliest feasible window of ``duration`` for a message.

        Parameters
        ----------
        message:
            Message name (only used for reporting).
        sender_node:
            Name of the node that produces the message (TDMA cares about it).
        earliest_start:
            Time at which the message data is available.
        duration:
            Worst-case transmission time of the message.
        """
        require_non_negative(earliest_start, "earliest_start")
        require_non_negative(duration, "duration")
        self._materialize()
        start = self._find_window(sender_node, earliest_start, duration)
        reservation = BusReservation(
            message=message, sender_node=sender_node, start=start, finish=start + duration
        )
        # Insert in start-time order (ties keep insertion order, exactly as
        # the former append-then-stable-sort did, but in O(log n + n) moves
        # instead of a full O(n log n) re-sort per message).
        insort(self._reservations, reservation, key=_BY_START)
        return reservation

    def adopt_reservations(
        self, windows: Sequence[Tuple[str, str, float, float]]
    ) -> None:
        """Replace the reservation list with windows computed out-of-band.

        Scheduler kernel backends that run the gap search over their own flat
        arrays use this to leave the bus in the same observable state an
        equivalent sequence of :meth:`reserve` calls would have produced.
        ``windows`` holds ``(message, sender_node, start, finish)`` tuples and
        must already be sorted by start time — the invariant
        :meth:`_earliest_gap` depends on.  The BusReservation objects are
        materialized lazily on first access, so adopting costs nothing when a
        design-space sweep never inspects the bus between scheduling passes.
        """
        self._reservations = []
        self._pending_windows = list(windows)

    # ------------------------------------------------------------------
    @abstractmethod
    def _find_window(self, sender_node: str, earliest_start: float, duration: float) -> float:
        """Return the earliest feasible start time for a transmission."""

    # ------------------------------------------------------------------
    def _conflicts(self, start: float, duration: float) -> bool:
        """Does a window [start, start+duration) overlap an existing reservation?"""
        finish = start + duration
        for reservation in self._reservations:
            if start < reservation.finish and reservation.start < finish:
                return True
        return False

    def _earliest_gap(self, earliest_start: float, duration: float) -> float:
        """Earliest start >= ``earliest_start`` that avoids existing reservations.

        ``_reservations`` is kept sorted by start time by :meth:`reserve`, so
        the scan needs no extra sort.
        """
        candidate = earliest_start
        for reservation in self._reservations:
            if candidate + duration <= reservation.start:
                break
            if candidate < reservation.finish:
                candidate = reservation.finish
        return candidate


class SimpleBus(Bus):
    """A single shared medium with first-come-first-served arbitration."""

    def _find_window(self, sender_node: str, earliest_start: float, duration: float) -> float:
        return self._earliest_gap(earliest_start, duration)


class TDMABus(Bus):
    """A static TDMA round, one slot per node, as used by TTP.

    Parameters
    ----------
    slot_order:
        Node names in the order their slots appear in the round.
    slot_length:
        Length of each slot in milliseconds; a message must fit entirely
        inside one slot of its sender.
    """

    def __init__(self, slot_order: Sequence[str], slot_length: float) -> None:
        super().__init__()
        if not slot_order:
            raise ModelError("TDMA slot order must contain at least one node")
        if len(set(slot_order)) != len(slot_order):
            raise ModelError(f"Duplicate nodes in TDMA slot order: {list(slot_order)}")
        self.slot_order = list(slot_order)
        self.slot_length = require_positive(slot_length, "slot_length")

    def signature(self) -> Tuple:
        return (type(self).__name__, tuple(self.slot_order), self.slot_length)

    @property
    def round_length(self) -> float:
        """Length of one TDMA round."""
        return self.slot_length * len(self.slot_order)

    def slot_index(self, node: str) -> int:
        try:
            return self.slot_order.index(node)
        except ValueError as exc:
            raise SchedulingError(
                f"Node {node} owns no TDMA slot; slot order is {self.slot_order}"
            ) from exc

    def _find_window(self, sender_node: str, earliest_start: float, duration: float) -> float:
        if duration > self.slot_length:
            raise SchedulingError(
                f"Message of duration {duration} ms does not fit into a TDMA slot "
                f"of {self.slot_length} ms"
            )
        index = self.slot_index(sender_node)
        round_length = self.round_length
        # Walk rounds starting at the one containing earliest_start until a
        # conflict-free window inside the sender's slot is found.  The loop is
        # bounded: each iteration moves one full round forward and existing
        # reservations are finite.
        round_number = max(0, int(earliest_start // round_length) - 1)
        for _ in range(len(self._reservations) + int(1e6)):
            slot_start = round_number * round_length + index * self.slot_length
            slot_end = slot_start + self.slot_length
            candidate = max(slot_start, earliest_start)
            # Push the candidate past conflicting reservations within the slot.
            while candidate + duration <= slot_end and self._conflicts(candidate, duration):
                blocking = [
                    r.finish
                    for r in self._reservations
                    if candidate < r.finish and r.start < candidate + duration
                ]
                candidate = max(blocking)
            if candidate + duration <= slot_end and not self._conflicts(candidate, duration):
                return candidate
            round_number += 1
        raise SchedulingError(
            f"Could not find a TDMA window for {sender_node} "
            f"(duration {duration} ms after t={earliest_start} ms)"
        )  # pragma: no cover - defensive, loop bound is effectively unreachable
