"""Core models and design-optimization heuristics of the paper."""

from __future__ import annotations

from repro.core.application import Application, Message, Process, TaskGraph
from repro.core.architecture import (
    Architecture,
    HVersion,
    Node,
    NodeType,
    doubling_cost_node_type,
    linear_cost_node_type,
)
from repro.core.baselines import (
    all_strategies,
    max_hardening_strategy,
    min_hardening_strategy,
    optimized_strategy,
)
from repro.core.design_strategy import ArchitectureEnumerator, DesignStrategy
from repro.core.evaluation import DesignResult, acceptance_rate, infeasible_result
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.fault_model import (
    FaultModel,
    HardeningModel,
    TechnologyModel,
    failure_probability_from_ser,
)
from repro.core.mapping import MappingAlgorithm, MappingResult, Objective
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile, ProfileEntry
from repro.core.redundancy import (
    FixedHardeningRedundancyOpt,
    RedundancyDecision,
    RedundancyOpt,
)
from repro.core.reexecution import ReExecutionDecision, ReExecutionOpt
from repro.core.sfp import SFPAnalysis, SFPReport

__all__ = [
    "Application",
    "Architecture",
    "ArchitectureEnumerator",
    "DesignResult",
    "DesignStrategy",
    "ExecutionProfile",
    "ExhaustiveSearch",
    "FaultModel",
    "FixedHardeningRedundancyOpt",
    "HVersion",
    "HardeningModel",
    "MappingAlgorithm",
    "MappingResult",
    "Message",
    "Node",
    "NodeType",
    "Objective",
    "Process",
    "ProcessMapping",
    "ProfileEntry",
    "RedundancyDecision",
    "RedundancyOpt",
    "ReExecutionDecision",
    "ReExecutionOpt",
    "SFPAnalysis",
    "SFPReport",
    "TaskGraph",
    "TechnologyModel",
    "acceptance_rate",
    "all_strategies",
    "doubling_cost_node_type",
    "failure_probability_from_ser",
    "infeasible_result",
    "linear_cost_node_type",
    "max_hardening_strategy",
    "min_hardening_strategy",
    "optimized_strategy",
]
