"""Application model: processes, messages and acyclic task graphs.

The paper (Section 2) models an application ``A`` as a set of directed acyclic
graphs ``G_k(V_k, E_k)``.  Each node ``P_i`` is a *process*; an edge ``e_ij``
is a *message* carrying the output of ``P_i`` to ``P_j``.  A process becomes
ready once all of its input messages have arrived and cannot be preempted.

This module provides three classes:

* :class:`Process` — a non-preemptable unit of computation.
* :class:`Message` — a directed data dependency with a worst-case bus
  transmission time.
* :class:`TaskGraph` — one DAG of processes and messages (thin wrapper around
  :class:`networkx.DiGraph` with validation and timing helpers).
* :class:`Application` — a set of task graphs plus the global real-time and
  reliability parameters (deadline ``D``, period ``T``, recovery overhead
  ``mu``, reliability goal ``rho`` and the time unit ``tau``).

All times are expressed in milliseconds, matching the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.exceptions import ModelError
from repro.utils.validation import (
    require_in_unit_interval,
    require_non_negative,
    require_positive,
)

#: One hour expressed in milliseconds — the paper's default time unit ``tau``.
ONE_HOUR_MS = 3_600_000.0


@dataclass(frozen=True)
class Process:
    """A non-preemptable process of the application.

    Parameters
    ----------
    name:
        Unique identifier of the process within the application.
    nominal_wcet:
        Optional worst-case execution time (ms) on a *reference* node without
        hardening.  It is used by the synthetic generator and by execution
        profile builders; algorithms never read it directly — they always go
        through an :class:`~repro.core.profile.ExecutionProfile`.
    criticality:
        Optional designer-provided criticality weight.  It is not used by the
        paper's heuristics but is kept for the replication policy extension.
    """

    name: str
    nominal_wcet: Optional[float] = None
    criticality: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("Process name must be a non-empty string")
        if self.nominal_wcet is not None:
            require_positive(self.nominal_wcet, f"nominal_wcet of {self.name}")
        require_positive(self.criticality, f"criticality of {self.name}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Message:
    """A message exchanged between two processes over the shared bus.

    The worst-case transmission time is an input of the problem (Section 2:
    "the worst-case size of messages is given, which implicitly can be
    translated into the worst-case transmission time on the bus").  If the
    communicating processes end up mapped to the same computation node the
    message is exchanged through local memory and takes zero time on the bus.
    """

    name: str
    source: str
    destination: str
    transmission_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("Message name must be a non-empty string")
        if self.source == self.destination:
            raise ModelError(
                f"Message {self.name} connects {self.source} to itself; "
                "self-loops are not allowed in an acyclic task graph"
            )
        require_non_negative(self.transmission_time, f"transmission_time of {self.name}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.source}->{self.destination})"


class TaskGraph:
    """A directed acyclic graph of processes connected by messages."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError("TaskGraph name must be a non-empty string")
        self.name = name
        self._graph = nx.DiGraph()
        self._messages: Dict[Tuple[str, str], Message] = {}
        # Structure caches (topological order, adjacency) — rebuilt lazily and
        # dropped on every mutation.  The DSE heuristics query graph structure
        # thousands of times per exploration while the graph never changes.
        self._topo_cache: Optional[List[str]] = None
        self._adjacency_cache: Optional[
            Tuple[Dict[str, List[str]], Dict[str, List[str]]]
        ] = None
        self._generations_cache: Optional[List[List[str]]] = None
        self._token_cache: Optional[Tuple] = None
        self._process_list_cache: Optional[List[Process]] = None

    def _invalidate_structure_caches(self) -> None:
        self._topo_cache = None
        self._adjacency_cache = None
        self._generations_cache = None
        self._token_cache = None
        self._process_list_cache = None

    def _adjacency(self) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        if self._adjacency_cache is None:
            predecessors = {
                name: list(self._graph.predecessors(name)) for name in self._graph
            }
            successors = {
                name: list(self._graph.successors(name)) for name in self._graph
            }
            self._adjacency_cache = (predecessors, successors)
        return self._adjacency_cache

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Add ``process`` to the graph.  Re-adding the same name is an error."""
        if process.name in self._graph:
            raise ModelError(
                f"Process {process.name} already exists in task graph {self.name}"
            )
        self._invalidate_structure_caches()
        self._graph.add_node(process.name, process=process)
        return process

    def add_message(self, message: Message) -> Message:
        """Add a data dependency; both endpoints must already be processes."""
        for endpoint in (message.source, message.destination):
            if endpoint not in self._graph:
                raise ModelError(
                    f"Message {message.name} references unknown process {endpoint} "
                    f"in task graph {self.name}"
                )
        key = (message.source, message.destination)
        if key in self._messages:
            raise ModelError(
                f"A message from {message.source} to {message.destination} "
                f"already exists in task graph {self.name}"
            )
        self._invalidate_structure_caches()
        self._graph.add_edge(message.source, message.destination, message=message)
        self._messages[key] = message
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(message.source, message.destination)
            del self._messages[key]
            raise ModelError(
                f"Adding message {message.name} would create a cycle in task "
                f"graph {self.name}"
            )
        return message

    def remove_message(self, source: str, destination: str) -> Message:
        """Remove (and return) the message from ``source`` to ``destination``.

        This is the supported way to rewire a task graph in place (remove one
        dependency, then :meth:`add_message` its replacement); it keeps the
        structure caches and the structural token consistent.
        """
        key = (source, destination)
        message = self._messages.get(key)
        if message is None:
            raise ModelError(
                f"No message from {source} to {destination} in task graph {self.name}"
            )
        self._invalidate_structure_caches()
        self._graph.remove_edge(source, destination)
        del self._messages[key]
        return message

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[Process]:
        """All processes, in insertion order."""
        if self._process_list_cache is None:
            self._process_list_cache = [
                self._graph.nodes[name]["process"] for name in self._graph.nodes
            ]
        return list(self._process_list_cache)

    @property
    def process_names(self) -> List[str]:
        return list(self._graph.nodes)

    @property
    def messages(self) -> List[Message]:
        """All messages, in insertion order."""
        return list(self._messages.values())

    def process(self, name: str) -> Process:
        try:
            return self._graph.nodes[name]["process"]
        except KeyError as exc:
            raise ModelError(f"Unknown process {name} in task graph {self.name}") from exc

    def message_between(self, source: str, destination: str) -> Optional[Message]:
        """Return the message from ``source`` to ``destination`` or ``None``."""
        return self._messages.get((source, destination))

    def has_process(self, name: str) -> bool:
        return name in self._graph

    def predecessors(self, name: str) -> List[str]:
        return list(self._adjacency()[0][name])

    def successors(self, name: str) -> List[str]:
        return list(self._adjacency()[1][name])

    def incoming_messages(self, name: str) -> List[Message]:
        return [self._messages[(pred, name)] for pred in self._adjacency()[0][name]]

    def outgoing_messages(self, name: str) -> List[Message]:
        return [self._messages[(name, succ)] for succ in self._adjacency()[1][name]]

    def sources(self) -> List[str]:
        """Processes with no predecessors (entry points of the graph)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Processes with no successors (exit points of the graph)."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def topological_order(self) -> List[str]:
        if self._topo_cache is None:
            self._topo_cache = list(nx.topological_sort(self._graph))
        return list(self._topo_cache)

    def adjacency_maps(self) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        """Cached ``(predecessor map, successor map)`` of the whole graph.

        The returned dictionaries are the graph's internal caches — treat
        them as read-only.  Hot paths (scheduling priorities, readiness
        checks) use this instead of per-process :meth:`predecessors` /
        :meth:`successors` calls, which copy their result lists.
        """
        return self._adjacency()

    def topological_generations(self) -> List[List[str]]:
        """Antichain layers of the DAG: every process's predecessors live in
        strictly earlier layers.  Cached; treat the result as read-only."""
        if self._generations_cache is None:
            self._generations_cache = [
                sorted(generation)
                for generation in nx.topological_generations(self._graph)
            ]
        return self._generations_cache

    def structure_token(self) -> Tuple:
        """Value token of the graph structure.

        Any mutation through the construction API — adding or removing a
        process or message, including edits that preserve the process and
        message *counts* (rewired edges, renamed messages, changed
        transmission times) — yields a different token, so consumers that
        memoize derived structure (the list scheduler, compiled scheduler
        kernels) can use it as their guard.  Cached alongside the other
        structure caches; like them, it does not observe mutations that
        bypass the public API.
        """
        if self._token_cache is None:
            self._token_cache = (
                tuple(self._graph.nodes),
                tuple(
                    (message.name, message.source, message.destination,
                     message.transmission_time)
                    for message in self._messages.values()
                ),
            )
        return self._token_cache

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __iter__(self) -> Iterator[Process]:
        return iter(self.processes)

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def critical_path_length(
        self,
        execution_time: Callable[[str], float],
        include_messages: bool = True,
    ) -> float:
        """Length of the longest path through the graph.

        Parameters
        ----------
        execution_time:
            Callable returning the execution time of a process given its name.
        include_messages:
            When true, message transmission times contribute to the path
            length (the pessimistic assumption that every dependency crosses
            the bus); when false only computation contributes (the fully
            local, single-node view).
        """
        longest: Dict[str, float] = {}
        for name in self.topological_order():
            best_arrival = 0.0
            for pred in self.predecessors(name):
                arrival = longest[pred]
                if include_messages:
                    message = self._messages[(pred, name)]
                    arrival += message.transmission_time
                best_arrival = max(best_arrival, arrival)
            longest[name] = best_arrival + execution_time(name)
        return max(longest.values(), default=0.0)

    def downward_rank(
        self,
        execution_time: Callable[[str], float],
        include_messages: bool = True,
    ) -> Dict[str, float]:
        """Longest path from each process to any sink (inclusive of itself).

        This is the classic *upward rank* priority used by list schedulers:
        processes with a longer remaining path are scheduled first.
        """
        rank: Dict[str, float] = {}
        for name in reversed(self.topological_order()):
            best_tail = 0.0
            for succ in self.successors(name):
                tail = rank[succ]
                if include_messages:
                    message = self._messages[(name, succ)]
                    tail += message.transmission_time
                best_tail = max(best_tail, tail)
            rank[name] = best_tail + execution_time(name)
        return rank

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying :class:`networkx.DiGraph`."""
        return self._graph.copy()


class Application:
    """A complete application: task graphs plus real-time/reliability goals.

    Parameters
    ----------
    name:
        Human-readable application name.
    deadline:
        Global hard deadline ``D`` in milliseconds; the worst-case schedule
        length of one application iteration must not exceed it.
    period:
        Application period ``T`` in milliseconds.  Defaults to the deadline,
        matching the paper's worked example (Appendix A.2 uses ``T = 360 ms``
        for the application whose deadline is 360 ms).
    reliability_goal:
        ``rho = 1 - gamma``; the probability that the system survives all
        transient faults during one time unit ``tau``.
    time_unit:
        Duration ``tau`` over which the reliability goal is expressed, in
        milliseconds.  The paper uses one hour.
    recovery_overhead:
        Default recovery overhead ``mu`` in milliseconds charged before every
        re-execution.  Individual processes may override it through
        ``recovery_overheads``.
    recovery_overheads:
        Optional per-process overrides of the recovery overhead (the synthetic
        benchmarks draw ``mu`` per process as 1-10 % of its WCET).
    """

    def __init__(
        self,
        name: str,
        deadline: float,
        reliability_goal: float,
        recovery_overhead: float = 0.0,
        period: Optional[float] = None,
        time_unit: float = ONE_HOUR_MS,
        recovery_overheads: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not name:
            raise ModelError("Application name must be a non-empty string")
        self.name = name
        self.deadline = require_positive(deadline, "deadline")
        self.reliability_goal = require_in_unit_interval(reliability_goal, "reliability_goal")
        # Bumped whenever any recovery overhead changes; consumers that
        # snapshot the per-process mu values (compiled scheduler kernels)
        # guard their caches on (identity, recovery_version).
        self._recovery_version = 0
        self.recovery_overhead = require_non_negative(recovery_overhead, "recovery_overhead")
        self.period = require_positive(period if period is not None else deadline, "period")
        self.time_unit = require_positive(time_unit, "time_unit")
        self._graphs: Dict[str, TaskGraph] = {}
        self._recovery_overheads: Dict[str, float] = {}
        # Name-list cache guarded by the structural token (hot paths — the
        # scheduler's per-call mapping validation above all — ask for the
        # process names of an unchanged application thousands of times).
        self._names_cache: Optional[Tuple[Tuple, List[str]]] = None
        if recovery_overheads:
            for process_name, value in recovery_overheads.items():
                self._recovery_overheads[process_name] = require_non_negative(
                    value, f"recovery overhead of {process_name}"
                )

    @property
    def recovery_overhead(self) -> float:
        """Default recovery overhead ``mu`` for processes without an override."""
        return self._recovery_overhead

    @recovery_overhead.setter
    def recovery_overhead(self, value: float) -> None:
        self._recovery_overhead = require_non_negative(value, "recovery_overhead")
        self._recovery_version += 1

    @property
    def recovery_version(self) -> int:
        """Mutation counter: changes whenever any recovery overhead is edited."""
        return self._recovery_version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_graph(self, graph: TaskGraph) -> TaskGraph:
        """Attach a task graph; process names must be globally unique."""
        if graph.name in self._graphs:
            raise ModelError(f"Task graph {graph.name} already part of {self.name}")
        existing = set(self.process_names())
        clash = existing.intersection(graph.process_names)
        if clash:
            raise ModelError(
                f"Task graph {graph.name} redefines processes {sorted(clash)} "
                f"already present in application {self.name}"
            )
        self._graphs[graph.name] = graph
        return graph

    def new_graph(self, name: str) -> TaskGraph:
        """Create, attach and return an empty task graph."""
        graph = TaskGraph(name)
        return self.add_graph(graph)

    def set_recovery_overhead(self, process_name: str, value: float) -> None:
        """Override the recovery overhead ``mu`` for one process."""
        if process_name not in set(self.process_names()):
            raise ModelError(
                f"Cannot set recovery overhead: unknown process {process_name}"
            )
        self._recovery_overheads[process_name] = require_non_negative(
            value, f"recovery overhead of {process_name}"
        )
        self._recovery_version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def graphs(self) -> List[TaskGraph]:
        return list(self._graphs.values())

    def graph(self, name: str) -> TaskGraph:
        try:
            return self._graphs[name]
        except KeyError as exc:
            raise ModelError(f"Unknown task graph {name} in application {self.name}") from exc

    @property
    def gamma(self) -> float:
        """Maximum allowed probability of system failure per time unit."""
        return 1.0 - self.reliability_goal

    @property
    def iterations_per_time_unit(self) -> float:
        """Number of application iterations executed during ``tau`` (= tau/T)."""
        return self.time_unit / self.period

    def processes(self) -> List[Process]:
        """All processes of all task graphs, in graph insertion order."""
        result: List[Process] = []
        for graph in self._graphs.values():
            result.extend(graph.processes)
        return result

    def process_names(self) -> List[str]:
        token = self.structure_token()
        cached = self._names_cache
        if cached is None or cached[0] != token:
            names = [process.name for process in self.processes()]
            cached = self._names_cache = (token, names, frozenset(names))
        return list(cached[1])

    def process_name_set(self) -> frozenset:
        """The set of process names (cached alongside :meth:`process_names`)."""
        token = self.structure_token()
        cached = self._names_cache
        if cached is None or cached[0] != token:
            self.process_names()
            cached = self._names_cache
        return cached[2]

    def process(self, name: str) -> Process:
        for graph in self._graphs.values():
            if graph.has_process(name):
                return graph.process(name)
        raise ModelError(f"Unknown process {name} in application {self.name}")

    def graph_of(self, process_name: str) -> TaskGraph:
        """Return the task graph containing ``process_name``."""
        for graph in self._graphs.values():
            if graph.has_process(process_name):
                return graph
        raise ModelError(f"Unknown process {process_name} in application {self.name}")

    def messages(self) -> List[Message]:
        result: List[Message] = []
        for graph in self._graphs.values():
            result.extend(graph.messages)
        return result

    def recovery_overhead_of(self, process_name: str) -> float:
        """Recovery overhead ``mu`` charged before re-executing a process."""
        return self._recovery_overheads.get(process_name, self.recovery_overhead)

    def number_of_processes(self) -> int:
        return sum(len(graph) for graph in self._graphs.values())

    def structure_token(self) -> Tuple:
        """Structural token over all task graphs (see TaskGraph.structure_token)."""
        return tuple(
            (graph.name, graph.structure_token())
            for graph in self._graphs.values()
        )

    def validate(self) -> None:
        """Check global consistency; raise :class:`ModelError` when violated."""
        if not self._graphs:
            raise ModelError(f"Application {self.name} has no task graphs")
        if self.number_of_processes() == 0:
            raise ModelError(f"Application {self.name} has no processes")
        if self.period > self.deadline:
            # A period longer than the deadline is legal (the schedule must
            # simply finish before the deadline within each period), but a
            # deadline longer than the period would allow overlapping
            # iterations which the static cyclic schedule does not model.
            return
        if self.deadline > self.period:
            raise ModelError(
                f"Application {self.name}: deadline ({self.deadline}) exceeds "
                f"period ({self.period}); overlapping iterations are not supported"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Application(name={self.name!r}, graphs={len(self._graphs)}, "
            f"processes={self.number_of_processes()}, deadline={self.deadline}, "
            f"rho={self.reliability_goal})"
        )


def build_chain_application(
    name: str,
    wcets: Iterable[float],
    deadline: float,
    reliability_goal: float,
    recovery_overhead: float,
    message_time: float = 0.0,
) -> Application:
    """Convenience builder: a single linear chain ``P1 -> P2 -> ... -> Pn``.

    Useful in tests and examples where the exact graph shape is irrelevant.
    """
    application = Application(
        name=name,
        deadline=deadline,
        reliability_goal=reliability_goal,
        recovery_overhead=recovery_overhead,
    )
    graph = application.new_graph(f"{name}_chain")
    previous: Optional[Process] = None
    for index, wcet in enumerate(wcets, start=1):
        process = graph.add_process(Process(f"P{index}", nominal_wcet=wcet))
        if previous is not None:
            graph.add_message(
                Message(
                    name=f"m{index - 1}",
                    source=previous.name,
                    destination=process.name,
                    transmission_time=message_time,
                )
            )
        previous = process
    return application
