"""Platform model: hardened node versions, node types and architectures.

The paper (Section 2) assumes a distributed architecture of computation nodes
connected by a single fault-tolerant bus.  Each node ``Nj`` is available in
several *h-versions* ``Nj^h`` — progressively more hardened (and more
expensive, and usually slower) variants of the same node.  An *architecture*
is a selection of node instances together with the hardening level chosen for
each of them.

Three classes model this:

* :class:`HVersion` — one hardening level of a node type (level + cost).
* :class:`NodeType` — a node with its full ladder of h-versions.
* :class:`Node` — an instance of a node type inside an architecture, carrying
  the currently selected hardening level (mutable, because the optimization
  heuristics raise and lower it).
* :class:`Architecture` — an ordered collection of nodes plus the shared bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.exceptions import ModelError
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class HVersion:
    """One hardening level of a node type.

    Parameters
    ----------
    level:
        Hardening level ``h``; the paper numbers levels from 1 (no hardening
        beyond the baseline) upwards.
    cost:
        Monetary/area cost ``C_j^h`` of using this version.
    """

    level: int
    cost: float

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ModelError(f"Hardening level must be >= 1, got {self.level}")
        require_non_negative(self.cost, f"cost of hardening level {self.level}")


class NodeType:
    """A computation node together with all of its available h-versions.

    Parameters
    ----------
    name:
        Unique name of the node type (e.g. ``"N1"`` or ``"ETM"``).
    h_versions:
        The available hardening levels.  Levels must be the consecutive
        integers ``1..H`` — the optimization heuristics move up and down this
        ladder one level at a time.
    speed_factor:
        Relative speed of the node used by generators and by the architecture
        enumeration order ("fastest architecture first").  A factor of 1.0 is
        the reference node; larger factors mean *slower* nodes (WCETs scale
        up).  Execution profiles may override per-process times arbitrarily;
        the factor is only a ranking hint plus a generator input.
    """

    def __init__(
        self,
        name: str,
        h_versions: Sequence[HVersion],
        speed_factor: float = 1.0,
    ) -> None:
        if not name:
            raise ModelError("NodeType name must be a non-empty string")
        if not h_versions:
            raise ModelError(f"NodeType {name} must offer at least one h-version")
        levels = sorted(version.level for version in h_versions)
        expected = list(range(1, len(levels) + 1))
        if levels != expected:
            raise ModelError(
                f"NodeType {name}: hardening levels must be consecutive integers "
                f"starting at 1, got {levels}"
            )
        self.name = name
        self.speed_factor = require_positive(speed_factor, f"speed_factor of {name}")
        self._versions: Dict[int, HVersion] = {
            version.level: version for version in h_versions
        }

    # ------------------------------------------------------------------
    @property
    def hardening_levels(self) -> List[int]:
        """All available levels in increasing order."""
        return sorted(self._versions)

    @property
    def min_hardening(self) -> int:
        return 1

    @property
    def max_hardening(self) -> int:
        return len(self._versions)

    def version(self, level: int) -> HVersion:
        try:
            return self._versions[level]
        except KeyError as exc:
            raise ModelError(
                f"NodeType {self.name} has no hardening level {level}; "
                f"available: {self.hardening_levels}"
            ) from exc

    def cost(self, level: int) -> float:
        """Cost ``C_j^h`` of the h-version at ``level``."""
        return self.version(level).cost

    @property
    def min_cost(self) -> float:
        """Cost of the cheapest (least hardened) version."""
        return self.cost(self.min_hardening)

    @property
    def max_cost(self) -> float:
        return self.cost(self.max_hardening)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NodeType(name={self.name!r}, levels={self.hardening_levels}, "
            f"speed_factor={self.speed_factor})"
        )


def linear_cost_node_type(
    name: str,
    base_cost: float,
    levels: int,
    speed_factor: float = 1.0,
) -> NodeType:
    """Build a node type whose cost grows linearly with the hardening level.

    This matches the synthetic setup of Section 7 ("we have assumed that the
    hardware cost increases linearly with the hardening level"): level ``h``
    costs ``base_cost * h``.
    """
    require_positive(base_cost, "base_cost")
    if levels < 1:
        raise ModelError(f"levels must be >= 1, got {levels}")
    versions = [HVersion(level=h, cost=base_cost * h) for h in range(1, levels + 1)]
    return NodeType(name, versions, speed_factor=speed_factor)


def doubling_cost_node_type(
    name: str,
    base_cost: float,
    levels: int,
    speed_factor: float = 1.0,
) -> NodeType:
    """Build a node type whose cost doubles with each hardening level.

    The motivational examples of the paper (Fig. 1 and Fig. 3) use costs of
    16/32/64 and 10/20/40 — i.e. a doubling ladder.
    """
    require_positive(base_cost, "base_cost")
    if levels < 1:
        raise ModelError(f"levels must be >= 1, got {levels}")
    versions = [
        HVersion(level=h, cost=base_cost * (2 ** (h - 1))) for h in range(1, levels + 1)
    ]
    return NodeType(name, versions, speed_factor=speed_factor)


class Node:
    """A node instance inside an architecture with its selected h-version."""

    def __init__(self, name: str, node_type: NodeType, hardening: Optional[int] = None) -> None:
        if not name:
            raise ModelError("Node name must be a non-empty string")
        self.name = name
        self.node_type = node_type
        self._hardening = node_type.min_hardening
        if hardening is not None:
            self.hardening = hardening

    # ------------------------------------------------------------------
    @property
    def hardening(self) -> int:
        """Currently selected hardening level ``h``."""
        return self._hardening

    @hardening.setter
    def hardening(self, level: int) -> None:
        # Validate through the node type so invalid levels fail loudly.
        self.node_type.version(level)
        self._hardening = level

    @property
    def cost(self) -> float:
        """Cost of the node at its current hardening level."""
        return self.node_type.cost(self._hardening)

    def can_harden(self) -> bool:
        return self._hardening < self.node_type.max_hardening

    def can_soften(self) -> bool:
        return self._hardening > self.node_type.min_hardening

    def harden(self) -> None:
        """Raise the hardening level by one."""
        if not self.can_harden():
            raise ModelError(f"Node {self.name} is already at maximum hardening")
        self._hardening += 1

    def soften(self) -> None:
        """Lower the hardening level by one."""
        if not self.can_soften():
            raise ModelError(f"Node {self.name} is already at minimum hardening")
        self._hardening -= 1

    def copy(self) -> "Node":
        return Node(self.name, self.node_type, hardening=self._hardening)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node(name={self.name!r}, type={self.node_type.name!r}, h={self._hardening})"


class Architecture:
    """A selected set of computation nodes connected by one shared bus.

    The architecture owns the nodes (and therefore the hardening decision for
    each of them); the bus is modelled separately in :mod:`repro.comm.bus` and
    only referenced here so that scheduling has a single entry point.
    """

    def __init__(self, nodes: Sequence[Node], bus: Optional[object] = None) -> None:
        if not nodes:
            raise ModelError("An architecture needs at least one computation node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ModelError(f"Duplicate node names in architecture: {names}")
        self._nodes: Dict[str, Node] = {node.name: node for node in nodes}
        self.bus = bus

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_node_types(
        cls,
        node_types: Sequence[NodeType],
        bus: Optional[object] = None,
        name_prefix: str = "",
    ) -> "Architecture":
        """Create an architecture with one node instance per node type."""
        nodes = [
            Node(f"{name_prefix}{node_type.name}", node_type) for node_type in node_types
        ]
        return cls(nodes, bus=bus)

    def copy(self) -> "Architecture":
        """Deep-enough copy: nodes are copied, the bus object is shared."""
        return Architecture([node.copy() for node in self.nodes], bus=self.bus)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise ModelError(f"Unknown node {name} in architecture") from exc

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    # ------------------------------------------------------------------
    # cost and hardening management
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total cost of the architecture at the current hardening levels."""
        return sum(node.cost for node in self._nodes.values())

    @property
    def minimum_cost(self) -> float:
        """Cost if every node used its cheapest (least hardened) version."""
        return sum(node.node_type.min_cost for node in self._nodes.values())

    def hardening_vector(self) -> Dict[str, int]:
        """Mapping node name -> current hardening level."""
        return {name: node.hardening for name, node in self._nodes.items()}

    def apply_hardening_vector(self, levels: Dict[str, int]) -> None:
        """Set hardening levels from a ``{node name: level}`` mapping."""
        unknown = set(levels) - set(self._nodes)
        if unknown:
            raise ModelError(f"Hardening vector references unknown nodes {sorted(unknown)}")
        for name, level in levels.items():
            self._nodes[name].hardening = level

    def set_min_hardening(self) -> None:
        """Reset all nodes to their minimum hardening level (paper line 5)."""
        for node in self._nodes.values():
            node.hardening = node.node_type.min_hardening

    def set_max_hardening(self) -> None:
        """Set all nodes to their maximum hardening level (MAX baseline)."""
        for node in self._nodes.values():
            node.hardening = node.node_type.max_hardening

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = ", ".join(
            f"{node.name}:{node.node_type.name}^{node.hardening}" for node in self.nodes
        )
        return f"Architecture({summary}, cost={self.cost})"
