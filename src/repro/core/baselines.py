"""MIN and MAX baseline strategies (Section 7).

The experimental evaluation compares the paper's OPT strategy against two
baselines obtained by removing the hardening optimization step from the
mapping algorithm:

* **MIN** — only the minimum hardening levels are used; the reliability goal
  must be reached exclusively with software re-execution.
* **MAX** — only the maximum hardening levels are used; re-executions are
  still added if needed, but the hardware is always the most expensive and
  slowest version.

Both baselines reuse the full architecture-exploration and mapping machinery
of :class:`~repro.core.design_strategy.DesignStrategy`; only the redundancy
optimizer differs (the hardening level is locked).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.architecture import NodeType
from repro.core.design_strategy import DesignStrategy
from repro.core.mapping import MappingAlgorithm
from repro.core.redundancy import FixedHardeningRedundancyOpt, RedundancyOpt
from repro.core.reexecution import ReExecutionOpt
from repro.scheduling.list_scheduler import ListScheduler


def _mapping_algorithm_with(
    redundancy_optimizer,
    mapping_algorithm: Optional[MappingAlgorithm],
) -> MappingAlgorithm:
    """Clone the tuning of an existing mapping algorithm with a new optimizer."""
    if mapping_algorithm is None:
        return MappingAlgorithm(redundancy_optimizer=redundancy_optimizer)
    return MappingAlgorithm(
        redundancy_optimizer=redundancy_optimizer,
        max_iterations=mapping_algorithm.max_iterations,
        stop_after_no_improvement=mapping_algorithm.stop_after_no_improvement,
        tabu_tenure=mapping_algorithm.tabu_tenure,
        max_candidates=mapping_algorithm.max_candidates,
    )


def optimized_strategy(
    node_types: Sequence[NodeType],
    mapping_algorithm: Optional[MappingAlgorithm] = None,
    scheduler: Optional[ListScheduler] = None,
    reexecution_opt: Optional[ReExecutionOpt] = None,
) -> DesignStrategy:
    """The paper's OPT strategy: full hardening/re-execution trade-off."""
    redundancy = RedundancyOpt(scheduler=scheduler, reexecution_opt=reexecution_opt)
    algorithm = _mapping_algorithm_with(redundancy, mapping_algorithm)
    return DesignStrategy(node_types, mapping_algorithm=algorithm, strategy_name="OPT")


def min_hardening_strategy(
    node_types: Sequence[NodeType],
    mapping_algorithm: Optional[MappingAlgorithm] = None,
    scheduler: Optional[ListScheduler] = None,
    reexecution_opt: Optional[ReExecutionOpt] = None,
) -> DesignStrategy:
    """MIN baseline: minimum hardening, software fault tolerance only."""
    redundancy = FixedHardeningRedundancyOpt(
        "min", scheduler=scheduler, reexecution_opt=reexecution_opt
    )
    algorithm = _mapping_algorithm_with(redundancy, mapping_algorithm)
    return DesignStrategy(node_types, mapping_algorithm=algorithm, strategy_name="MIN")


def max_hardening_strategy(
    node_types: Sequence[NodeType],
    mapping_algorithm: Optional[MappingAlgorithm] = None,
    scheduler: Optional[ListScheduler] = None,
    reexecution_opt: Optional[ReExecutionOpt] = None,
) -> DesignStrategy:
    """MAX baseline: maximum hardening on every node."""
    redundancy = FixedHardeningRedundancyOpt(
        "max", scheduler=scheduler, reexecution_opt=reexecution_opt
    )
    algorithm = _mapping_algorithm_with(redundancy, mapping_algorithm)
    return DesignStrategy(node_types, mapping_algorithm=algorithm, strategy_name="MAX")


def all_strategies(
    node_types: Sequence[NodeType],
    mapping_algorithm: Optional[MappingAlgorithm] = None,
) -> dict:
    """The three strategies compared in the paper, keyed by their name."""
    return {
        "MIN": min_hardening_strategy(node_types, mapping_algorithm),
        "MAX": max_hardening_strategy(node_types, mapping_algorithm),
        "OPT": optimized_strategy(node_types, mapping_algorithm),
    }
