"""DesignStrategy — architecture selection heuristic (Section 6, Fig. 5).

The strategy explores the space of architectures (subsets of the available
node types), from a single fastest node up to the full node set, and keeps the
cheapest architecture for which the application is schedulable and reliable:

1. Start with the monoprocessor architecture built from the fastest node
   (``n = 1``).
2. For the current architecture (with minimum hardening levels), skip it if
   even its minimum cost cannot beat the best-so-far cost.
3. Run the mapping heuristic with the *schedule length* cost function; if the
   best achievable worst-case schedule length exceeds the deadline, the
   architecture (and any slower architecture with the same node count) cannot
   work — move to ``n + 1`` nodes.
4. Otherwise run the mapping heuristic again with the *cost* function to
   cheapen the design without losing schedulability, and record it if it
   improves on the best-so-far cost.
5. Move to the next-fastest architecture with ``n`` nodes, or to ``n + 1``
   when the size-``n`` alternatives are exhausted.

The MIN and MAX baselines of Section 7 reuse the same exploration but lock the
hardening levels (see :mod:`repro.core.baselines`).
"""

from __future__ import annotations

from dataclasses import replace
from itertools import combinations
from math import inf
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture, Node, NodeType
from repro.core.evaluation import DesignResult, infeasible_result
from repro.core.exceptions import OptimizationError
from repro.core.mapping import MappingAlgorithm, MappingResult, Objective
from repro.core.profile import ExecutionProfile
from repro.engine import EvaluationEngine


class ArchitectureEnumerator:
    """Enumerate candidate architectures in the paper's exploration order.

    For a given node count ``n`` the candidates are all subsets of ``n``
    distinct node types, ordered from fastest to slowest (smaller sum of
    speed factors first, ties broken by name for determinism).
    """

    def __init__(self, node_types: Sequence[NodeType]) -> None:
        if not node_types:
            raise OptimizationError("At least one node type is required")
        names = [node_type.name for node_type in node_types]
        if len(set(names)) != len(names):
            raise OptimizationError(f"Duplicate node type names: {names}")
        self.node_types = list(node_types)

    @property
    def max_nodes(self) -> int:
        return len(self.node_types)

    def candidates(self, node_count: int) -> List[Tuple[NodeType, ...]]:
        """All architectures with exactly ``node_count`` nodes, fastest first."""
        if not 1 <= node_count <= self.max_nodes:
            return []
        subsets = combinations(self.node_types, node_count)
        return sorted(
            subsets,
            key=lambda subset: (
                sum(node_type.speed_factor for node_type in subset),
                tuple(node_type.name for node_type in subset),
            ),
        )

    def build(self, subset: Iterable[NodeType]) -> Architecture:
        """Instantiate an architecture (min hardening) from a node-type subset."""
        nodes = [Node(node_type.name, node_type) for node_type in subset]
        architecture = Architecture(nodes)
        architecture.set_min_hardening()
        return architecture


class DesignStrategy:
    """The paper's OPT design strategy.

    Parameters
    ----------
    node_types:
        The library of available computation nodes (each with its h-versions).
    mapping_algorithm:
        The mapping heuristic used to evaluate each candidate architecture.
        Baselines inject a mapping algorithm whose redundancy optimizer locks
        the hardening levels.
    strategy_name:
        Label stored in the produced :class:`DesignResult` (``"OPT"``,
        ``"MIN"``, ``"MAX"`` ...).
    use_engine:
        When ``True`` (default) each :meth:`explore` call runs against an
        :class:`~repro.engine.engine.EvaluationEngine` — a fresh one per call
        unless a shared engine is injected — so revisited design points are
        served from cache.  Disable only to benchmark the unmemoized path;
        results are bit-identical either way.
    """

    def __init__(
        self,
        node_types: Sequence[NodeType],
        mapping_algorithm: Optional[MappingAlgorithm] = None,
        strategy_name: str = "OPT",
        use_engine: bool = True,
    ) -> None:
        self.enumerator = ArchitectureEnumerator(node_types)
        self.mapping_algorithm = (
            mapping_algorithm if mapping_algorithm is not None else MappingAlgorithm()
        )
        self.strategy_name = strategy_name
        self.use_engine = use_engine

    # ------------------------------------------------------------------
    def explore(
        self,
        application: Application,
        profile: ExecutionProfile,
        max_architecture_cost: Optional[float] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> DesignResult:
        """Explore architectures and return the best (cheapest feasible) design.

        ``max_architecture_cost`` only prunes the exploration (architectures
        whose minimum cost already exceeds it are skipped); acceptance against
        ``ArC`` is re-checked by the caller via
        :meth:`DesignResult.is_accepted`.

        ``engine`` lets callers share one evaluation engine across several
        strategies exploring the same (application, profile) — e.g. the
        synthetic experiment harness runs MIN / MAX / OPT against one engine
        so design points evaluated by one strategy are free for the others.
        """
        application.validate()
        if engine is None and self.use_engine:
            engine = EvaluationEngine(application, profile)
        # Attribute only this exploration's engine activity to the result when
        # the caller shares an engine across strategies.
        hits_before = engine.stats.hits if engine is not None else 0
        misses_before = engine.stats.misses if engine is not None else 0
        computed_before = engine.evaluations if engine is not None else 0
        batch_rows_before = engine.batch.rows if engine is not None else 0
        batch_cold_before = engine.batch.cold_rows if engine is not None else 0
        self.mapping_algorithm.use_engine(engine)
        try:
            best, total_evaluations = self._explore(
                application, profile, max_architecture_cost
            )
        finally:
            self.mapping_algorithm.use_engine(None)
        cache_hits = engine.stats.hits - hits_before if engine is not None else 0
        cache_misses = engine.stats.misses - misses_before if engine is not None else 0
        points_computed = (
            engine.evaluations - computed_before if engine is not None else 0
        )
        batch_rows = (
            engine.batch.rows - batch_rows_before if engine is not None else 0
        )
        batch_cold_rows = (
            engine.batch.cold_rows - batch_cold_before if engine is not None else 0
        )

        if best is None:
            return infeasible_result(
                self.strategy_name,
                application.name,
                reason="no architecture meets the deadline and reliability goal",
                evaluations=total_evaluations,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                points_computed=points_computed,
                batch_rows=batch_rows,
                batch_cold_rows=batch_cold_rows,
            )
        return replace(
            best,
            evaluations=total_evaluations,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            points_computed=points_computed,
            batch_rows=batch_rows,
            batch_cold_rows=batch_cold_rows,
        )

    def _explore(
        self,
        application: Application,
        profile: ExecutionProfile,
        max_architecture_cost: Optional[float],
    ):
        best: Optional[DesignResult] = None
        best_cost = inf
        if max_architecture_cost is not None:
            cost_cap = max_architecture_cost
        else:
            cost_cap = inf
        total_evaluations = 0

        node_count = 1
        while node_count <= self.enumerator.max_nodes:
            advanced = False
            for subset in self.enumerator.candidates(node_count):
                architecture = self.enumerator.build(subset)
                if architecture.minimum_cost >= min(best_cost, cost_cap + 1e-9):
                    # Even at minimum hardening this architecture cannot beat
                    # the best cost so far or fit the cost cap — skip it
                    # without evaluating (paper line 6).  Note the cap prune
                    # applies from the very first candidate, before any
                    # feasible design is known.
                    continue
                schedule_result = self.mapping_algorithm.optimize(
                    application,
                    architecture,
                    profile,
                    objective=Objective.SCHEDULE_LENGTH,
                )
                if schedule_result is not None:
                    total_evaluations += schedule_result.evaluations
                if (
                    schedule_result is None
                    or schedule_result.schedule_length > application.deadline
                ):
                    # Not even the fastest mapping fits the deadline on this
                    # architecture: adding more nodes is the only way forward
                    # (paper line 15).
                    node_count += 1
                    advanced = True
                    break
                cost_result = self.mapping_algorithm.optimize(
                    application,
                    architecture,
                    profile,
                    objective=Objective.COST,
                    initial_mapping=schedule_result.mapping,
                )
                if cost_result is not None:
                    total_evaluations += cost_result.evaluations
                chosen = cost_result if cost_result is not None else schedule_result
                if chosen.is_feasible and chosen.cost < best_cost:
                    best_cost = chosen.cost
                    best = self._to_result(application, architecture, chosen)
            if not advanced:
                node_count += 1

        return best, total_evaluations

    # ------------------------------------------------------------------
    def _to_result(
        self,
        application: Application,
        architecture: Architecture,
        mapping_result: MappingResult,
    ) -> DesignResult:
        decision = mapping_result.decision
        node_types = {node.name: node.node_type.name for node in architecture}
        return DesignResult(
            strategy=self.strategy_name,
            application=application.name,
            feasible=True,
            node_types=node_types,
            hardening=dict(decision.hardening),
            reexecutions=dict(decision.reexecutions),
            mapping=mapping_result.mapping,
            schedule=decision.schedule,
            schedule_length=decision.schedule_length,
            deadline=application.deadline,
            cost=decision.cost,
            meets_reliability=decision.meets_reliability,
            evaluations=mapping_result.evaluations,
        )
