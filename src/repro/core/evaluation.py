"""Design-point evaluation records and acceptance criteria.

Section 7 of the paper counts *accepted* applications: an application is
accepted by a strategy if the produced implementation (architecture +
hardening + mapping + re-executions + schedule)

* meets the reliability goal,
* meets the deadline, and
* does not exceed the maximum architectural cost ``ArC``.

:class:`DesignResult` captures everything a strategy decided for one
application so the experiment harness (and the user) can inspect why a design
was or was not accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mapping_model import ProcessMapping
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class DesignResult:
    """Outcome of one design-space exploration run for one application."""

    strategy: str
    application: str
    feasible: bool
    node_types: Dict[str, str] = field(default_factory=dict)
    hardening: Dict[str, int] = field(default_factory=dict)
    reexecutions: Dict[str, int] = field(default_factory=dict)
    mapping: Optional[ProcessMapping] = None
    schedule: Optional[Schedule] = None
    schedule_length: float = float("inf")
    deadline: float = float("inf")
    cost: float = float("inf")
    meets_reliability: bool = False
    failure_reason: str = ""
    #: Design points *examined* by the search (tabu-move evaluations); this is
    #: the paper's notion of search effort and is identical with or without
    #: caching.
    evaluations: int = 0
    # Engine counters attributed to this exploration.  Excluded from
    # equality: a warm-cache run must compare equal to a cold one as long as
    # the *design* is identical.  ``points_computed`` counts design points
    # actually evaluated (decision-cache misses that ran the re-execution
    # optimizer + scheduler) — on a warm cache it approaches zero while
    # ``evaluations`` stays constant.
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    points_computed: int = field(default=0, compare=False)
    #: Batched-partition counters (also excluded from equality): rows handed
    #: to batched neighbourhood lookups, and the residual cold rows that
    #: reached a kernel.  ``batch_cold_rows / batch_rows`` is the fill rate
    #: of the blocks the batch kernels actually saw.
    batch_rows: int = field(default=0, compare=False)
    batch_cold_rows: int = field(default=0, compare=False)

    # ------------------------------------------------------------------
    @property
    def meets_deadline(self) -> bool:
        return self.schedule_length <= self.deadline

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of engine cache lookups served from cache (0.0 if none)."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def batch_fill_rate(self) -> float:
        """Cold fraction of batched rows (0.0 when nothing was batched)."""
        if not self.batch_rows:
            return 0.0
        return self.batch_cold_rows / self.batch_rows

    def is_accepted(self, max_architecture_cost: Optional[float] = None) -> bool:
        """Paper acceptance criterion: reliable, schedulable, affordable."""
        if not self.feasible:
            return False
        if not self.meets_reliability or not self.meets_deadline:
            return False
        if max_architecture_cost is not None and self.cost > max_architecture_cost:
            return False
        return True

    def summary(self) -> str:
        """One-line human-readable summary used by the CLI and examples."""
        if not self.feasible:
            return (
                f"[{self.strategy}] {self.application}: infeasible"
                + (f" ({self.failure_reason})" if self.failure_reason else "")
            )
        nodes = ", ".join(
            f"{name}={self.node_types.get(name, '?')}^h{self.hardening.get(name, '?')}"
            f"(k={self.reexecutions.get(name, 0)})"
            for name in sorted(self.hardening)
        )
        return (
            f"[{self.strategy}] {self.application}: cost={self.cost:.1f}, "
            f"SL={self.schedule_length:.1f}/{self.deadline:.1f} ms, "
            f"reliable={self.meets_reliability}, nodes: {nodes}"
        )


def infeasible_result(
    strategy: str,
    application: str,
    reason: str,
    evaluations: int = 0,
    cache_hits: int = 0,
    cache_misses: int = 0,
    points_computed: int = 0,
    batch_rows: int = 0,
    batch_cold_rows: int = 0,
) -> DesignResult:
    """Convenience constructor for an infeasible design outcome."""
    return DesignResult(
        strategy=strategy,
        application=application,
        feasible=False,
        failure_reason=reason,
        evaluations=evaluations,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        points_computed=points_computed,
        batch_rows=batch_rows,
        batch_cold_rows=batch_cold_rows,
    )


def acceptance_rate(
    results: List[DesignResult], max_architecture_cost: Optional[float] = None
) -> float:
    """Fraction (0..1) of results accepted under the given cost cap."""
    if not results:
        return 0.0
    accepted = sum(1 for result in results if result.is_accepted(max_architecture_cost))
    return accepted / len(results)
