"""Exception hierarchy of the library.

Every exception raised on purpose by :mod:`repro` derives from
:class:`ReproError`, so that callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ModelError(ReproError):
    """An application, architecture or profile is malformed or inconsistent."""


class ProfileError(ModelError):
    """A WCET or failure-probability entry is missing from an execution profile."""


class MappingError(ReproError):
    """A process-to-node mapping is invalid for the given architecture."""


class SchedulingError(ReproError):
    """The scheduler could not construct a static schedule."""


class ReliabilityError(ReproError):
    """The reliability goal cannot be reached with the allowed redundancy."""


class OptimizationError(ReproError):
    """A design-space exploration heuristic failed to produce any solution."""
