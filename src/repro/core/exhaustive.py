"""Exhaustive (optimal) design-space search for small problem instances.

The paper's DesignStrategy / MappingAlgorithm / RedundancyOpt stack is a
heuristic; to quantify how far it lands from the optimum this module provides
a brute-force search that enumerates

* every candidate architecture (every subset of the node-type library up to a
  configurable size),
* every mapping of processes to the architecture's nodes, and
* every combination of hardening levels,

sizes the re-execution budgets with the same SFP-driven ``ReExecutionOpt`` and
keeps the cheapest combination that is schedulable and reliable.  The search
space grows as ``nodes^processes * levels^nodes`` per architecture, so the
class refuses instances beyond a configurable size — it exists to validate
the heuristics on small instances (see
``benchmarks/test_bench_ablation_optimality.py``), not to replace them.
"""

from __future__ import annotations

from itertools import combinations, product
from math import inf
from typing import List, Optional, Sequence, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture, Node, NodeType
from repro.core.evaluation import DesignResult, infeasible_result
from repro.core.exceptions import OptimizationError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.redundancy import RedundancyDecision, _RedundancyEvaluator
from repro.core.reexecution import ReExecutionOpt
from repro.scheduling.list_scheduler import ListScheduler


class ExhaustiveSearch:
    """Optimal baseline: enumerate architectures, mappings and hardening levels.

    Parameters
    ----------
    node_types:
        The node-type library to choose architectures from.
    max_processes / max_nodes:
        Safety limits; instances beyond them raise :class:`OptimizationError`
        instead of silently running for hours.
    """

    def __init__(
        self,
        node_types: Sequence[NodeType],
        scheduler: Optional[ListScheduler] = None,
        reexecution_opt: Optional[ReExecutionOpt] = None,
        max_processes: int = 8,
        max_nodes: int = 2,
    ) -> None:
        if not node_types:
            raise OptimizationError("At least one node type is required")
        self.node_types = list(node_types)
        self.evaluator = _RedundancyEvaluator(
            scheduler=scheduler, reexecution_opt=reexecution_opt
        )
        self.max_processes = max_processes
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def explore(
        self,
        application: Application,
        profile: ExecutionProfile,
        max_architecture_cost: Optional[float] = None,
    ) -> DesignResult:
        """Return the cheapest feasible design over the whole search space."""
        application.validate()
        n_processes = application.number_of_processes()
        if n_processes > self.max_processes:
            raise OptimizationError(
                f"Exhaustive search limited to {self.max_processes} processes, "
                f"got {n_processes}; use DesignStrategy for larger instances"
            )
        processes = application.process_names()
        evaluated = 0
        best: Optional[Tuple[float, Architecture, ProcessMapping, RedundancyDecision]] = None

        for size in range(1, min(self.max_nodes, len(self.node_types)) + 1):
            for subset in combinations(self.node_types, size):
                architecture = Architecture([Node(nt.name, nt) for nt in subset])
                node_names = architecture.node_names
                level_choices = [nt.hardening_levels for nt in subset]
                for assignment in product(node_names, repeat=len(processes)):
                    mapping = ProcessMapping(dict(zip(processes, assignment)))
                    if not self._mapping_supported(mapping, architecture, profile):
                        continue
                    for levels in product(*level_choices):
                        hardening = dict(zip(node_names, levels))
                        cost = sum(
                            node_type.cost(level)
                            for node_type, level in zip(subset, levels)
                        )
                        if max_architecture_cost is not None and cost > max_architecture_cost:
                            continue
                        if best is not None and cost >= best[0]:
                            continue
                        decision = self.evaluator.evaluate_hardening(
                            application, architecture, mapping, profile, hardening
                        )
                        evaluated += 1
                        if not decision.is_feasible:
                            continue
                        best = (decision.cost, architecture, mapping, decision)

        if best is None:
            return infeasible_result(
                "EXHAUSTIVE",
                application.name,
                reason="no feasible design in the enumerated space",
                evaluations=evaluated,
            )
        cost, architecture, mapping, decision = best
        return DesignResult(
            strategy="EXHAUSTIVE",
            application=application.name,
            feasible=True,
            node_types={node.name: node.node_type.name for node in architecture},
            hardening=dict(decision.hardening),
            reexecutions=dict(decision.reexecutions),
            mapping=mapping,
            schedule=decision.schedule,
            schedule_length=decision.schedule_length,
            deadline=application.deadline,
            cost=cost,
            meets_reliability=decision.meets_reliability,
            evaluations=evaluated,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _mapping_supported(
        mapping: ProcessMapping, architecture: Architecture, profile: ExecutionProfile
    ) -> bool:
        """Whether every process has a profile entry on its assigned node."""
        for process, node_name in mapping.items():
            node = architecture.node(node_name)
            if not profile.supports(process, node.node_type.name):
                return False
        return True
