"""Transient-fault and hardening models.

Section 7 of the paper describes the synthetic setup: three fabrication
technologies with average soft error rates (SER) per clock cycle of 1e-10,
1e-11 and 1e-12 at the minimum hardening level; five hardening levels; a
*hardening performance degradation* (HPD) between 5 % and 100 % spread
linearly over the levels; and costs growing linearly with the level.

This module turns those technology-level parameters into the per-process
quantities the rest of the library consumes:

* :class:`TechnologyModel` — raw SER per clock cycle and clock frequency.
* :class:`HardeningModel` — how each hardening level scales the SER (fault
  reduction) and the WCET (performance degradation).
* :class:`FaultModel` — combines both and derives ``p_ijh``/``t_ijh`` tables,
  i.e. an :class:`~repro.core.profile.ExecutionProfile`, for a whole
  application/platform.

The derivation is analytic (``p = 1 - (1 - SER_h)^cycles``); the Monte-Carlo
fault-injection campaign in :mod:`repro.faults.injection` provides an
empirical counterpart and is cross-validated against this model in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.application import Application
from repro.core.architecture import NodeType
from repro.core.exceptions import ModelError
from repro.core.profile import ExecutionProfile
from repro.utils.validation import (
    require_in_unit_interval,
    require_non_negative,
    require_positive,
)

#: SER per clock cycle of the densest technology considered in the paper.
SER_HIGH = 1e-10
#: SER per clock cycle of the intermediate technology.
SER_MEDIUM = 1e-11
#: SER per clock cycle of the most mature (least dense) technology.
SER_LOW = 1e-12


@dataclass(frozen=True)
class TechnologyModel:
    """Fabrication-technology parameters of a computation node.

    Parameters
    ----------
    ser_per_cycle:
        Average probability that one clock cycle is hit by a soft error, at
        the minimum hardening level.
    clock_mhz:
        Clock frequency of the node in MHz, used to convert a WCET expressed
        in milliseconds into a number of clock cycles.
    """

    ser_per_cycle: float
    clock_mhz: float = 100.0

    def __post_init__(self) -> None:
        require_in_unit_interval(self.ser_per_cycle, "ser_per_cycle")
        require_positive(self.clock_mhz, "clock_mhz")

    def cycles_for(self, wcet_ms: float) -> float:
        """Number of clock cycles needed to execute for ``wcet_ms`` milliseconds."""
        require_positive(wcet_ms, "wcet_ms")
        return wcet_ms * 1e-3 * self.clock_mhz * 1e6


class HardeningModel:
    """How hardening levels scale the soft error rate and the WCET.

    Parameters
    ----------
    levels:
        Number of hardening levels (the paper uses 5 in the synthetic
        experiments and 3 in the motivational examples).
    ser_reduction_per_level:
        Multiplicative reduction of the SER for each additional hardening
        level.  The paper's tables (Fig. 1, Fig. 3) show roughly two orders of
        magnitude per level, so the default is 100.
    performance_degradation:
        Total hardening performance degradation (HPD) in percent between the
        minimum and the maximum hardening level.  Per the paper, level 1
        always adds 1 % to the WCET and the increase grows linearly up to HPD
        at the maximum level (e.g. HPD=100 % gives 1, 25, 50, 75, 100 %).
    """

    def __init__(
        self,
        levels: int = 5,
        ser_reduction_per_level: float = 100.0,
        performance_degradation: float = 25.0,
    ) -> None:
        if levels < 1:
            raise ModelError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.ser_reduction_per_level = require_positive(
            ser_reduction_per_level, "ser_reduction_per_level"
        )
        if self.ser_reduction_per_level < 1.0:
            raise ModelError(
                "ser_reduction_per_level must be >= 1 (hardening cannot make "
                "the error rate worse)"
            )
        self.performance_degradation = require_non_negative(
            performance_degradation, "performance_degradation"
        )

    # ------------------------------------------------------------------
    def ser_scale(self, level: int) -> float:
        """Multiplier applied to the raw SER at hardening ``level``.

        Level 1 is the baseline (scale 1); every further level divides the
        SER by ``ser_reduction_per_level``.
        """
        self._check_level(level)
        return self.ser_reduction_per_level ** (-(level - 1))

    def wcet_increase_percent(self, level: int) -> float:
        """Percentage added to the WCET at hardening ``level``.

        Follows the paper's linear interpolation: level 1 adds 1 %, the top
        level adds ``performance_degradation`` %, intermediate levels are
        spaced linearly.  With a single level the increase is simply the full
        degradation.
        """
        self._check_level(level)
        if self.performance_degradation == 0.0:
            return 0.0
        if self.levels == 1:
            return self.performance_degradation
        first = min(1.0, self.performance_degradation)
        last = self.performance_degradation
        step = (last - first) / (self.levels - 1)
        return first + step * (level - 1)

    def wcet_scale(self, level: int) -> float:
        """Multiplier applied to the baseline WCET at hardening ``level``."""
        return 1.0 + self.wcet_increase_percent(level) / 100.0

    def hardening_levels(self) -> List[int]:
        return list(range(1, self.levels + 1))

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.levels:
            raise ModelError(
                f"Hardening level {level} outside the supported range 1..{self.levels}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HardeningModel(levels={self.levels}, "
            f"ser_reduction_per_level={self.ser_reduction_per_level}, "
            f"HPD={self.performance_degradation}%)"
        )


def failure_probability_from_ser(ser_per_cycle: float, cycles: float) -> float:
    """Probability that at least one cycle of an execution is hit by a fault.

    ``p = 1 - (1 - SER)^cycles``.  For the tiny SER values used here the
    result is numerically indistinguishable from ``SER * cycles`` but the
    exact form is kept so the function is also correct for the aggressive
    error rates of the motivational examples (e.g. 4e-2 in Fig. 3).
    """
    require_in_unit_interval(ser_per_cycle, "ser_per_cycle")
    require_non_negative(cycles, "cycles")
    if ser_per_cycle == 0.0 or cycles == 0.0:
        return 0.0
    survival_per_cycle = 1.0 - ser_per_cycle
    probability = 1.0 - survival_per_cycle**cycles
    return min(max(probability, 0.0), 1.0)


class FaultModel:
    """Derives execution profiles from technology + hardening parameters.

    Parameters
    ----------
    technology:
        Either a single :class:`TechnologyModel` shared by all node types, or
        a mapping ``{node type name: TechnologyModel}``.
    hardening:
        The :class:`HardeningModel` describing SER reduction and HPD per
        level.  All node types share the same hardening model (as in the
        paper's synthetic setup); heterogeneous ladders can be expressed by
        building profiles per node type and merging them.
    """

    def __init__(
        self,
        technology: TechnologyModel | Mapping[str, TechnologyModel],
        hardening: HardeningModel,
    ) -> None:
        self._default_technology: Optional[TechnologyModel]
        self._technologies: Dict[str, TechnologyModel]
        if isinstance(technology, TechnologyModel):
            self._default_technology = technology
            self._technologies = {}
        else:
            self._default_technology = None
            self._technologies = dict(technology)
            if not self._technologies:
                raise ModelError("technology mapping must not be empty")
        self.hardening = hardening

    # ------------------------------------------------------------------
    def technology_for(self, node_type_name: str) -> TechnologyModel:
        if node_type_name in self._technologies:
            return self._technologies[node_type_name]
        if self._default_technology is not None:
            return self._default_technology
        raise ModelError(
            f"No technology model registered for node type {node_type_name!r}"
        )

    def failure_probability(
        self, node_type_name: str, wcet_ms: float, level: int
    ) -> float:
        """``p_ijh`` for an execution of ``wcet_ms`` on ``node_type`` at ``level``."""
        technology = self.technology_for(node_type_name)
        ser = technology.ser_per_cycle * self.hardening.ser_scale(level)
        cycles = technology.cycles_for(wcet_ms)
        return failure_probability_from_ser(ser, cycles)

    def wcet(self, baseline_wcet_ms: float, speed_factor: float, level: int) -> float:
        """``t_ijh`` given the process baseline WCET and the node speed factor."""
        require_positive(baseline_wcet_ms, "baseline_wcet_ms")
        require_positive(speed_factor, "speed_factor")
        return baseline_wcet_ms * speed_factor * self.hardening.wcet_scale(level)

    # ------------------------------------------------------------------
    def build_profile(
        self,
        application: Application,
        node_types: Sequence[NodeType],
        baseline_wcets: Optional[Mapping[str, float]] = None,
    ) -> ExecutionProfile:
        """Derive the full ``t_ijh``/``p_ijh`` table for an application.

        Parameters
        ----------
        application:
            The application whose processes need profile entries.
        node_types:
            The candidate node types of the platform.
        baseline_wcets:
            Optional ``{process name: WCET on the reference node}`` mapping;
            when omitted each process must carry a ``nominal_wcet``.
        """
        profile = ExecutionProfile()
        for process in application.processes():
            if baseline_wcets is not None and process.name in baseline_wcets:
                baseline = baseline_wcets[process.name]
            elif process.nominal_wcet is not None:
                baseline = process.nominal_wcet
            else:
                raise ModelError(
                    f"Process {process.name} has no nominal WCET and no entry in "
                    "baseline_wcets; cannot derive its execution profile"
                )
            for node_type in node_types:
                levels = node_type.hardening_levels
                if len(levels) > self.hardening.levels:
                    raise ModelError(
                        f"Node type {node_type.name} offers {len(levels)} hardening "
                        f"levels but the hardening model only describes "
                        f"{self.hardening.levels}"
                    )
                for level in levels:
                    wcet = self.wcet(baseline, node_type.speed_factor, level)
                    probability = self.failure_probability(node_type.name, wcet, level)
                    profile.add_entry(process.name, node_type.name, level, wcet, probability)
        return profile
