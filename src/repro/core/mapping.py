"""MappingAlgorithm — tabu-search mapping optimization (Section 6.2).

The mapping heuristic explores process-to-node assignments for a fixed
candidate architecture.  Every evaluated mapping is completed into a full
design point by the redundancy optimizer (hardening levels + re-executions +
schedule); the mapping heuristic then compares design points under one of two
cost functions:

* ``Objective.SCHEDULE_LENGTH`` — minimize the worst-case schedule length
  (used by the design strategy to find out whether the architecture can be
  schedulable at all), and
* ``Objective.COST`` — minimize the architecture cost among schedulable,
  reliable solutions (used to cheapen an already schedulable architecture).

The search follows the paper's description: processes on the critical path of
the current best schedule are candidates for re-mapping; recently moved
processes are *tabu* for a few iterations; processes that have waited long are
prioritized; a move is accepted if it improves on the best-so-far solution
(aspiration criterion, even for tabu processes) or, failing that, the best
non-tabu move is taken to keep exploring; the search stops after a number of
iterations without improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from math import inf
from typing import Dict, List, Optional, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import MappingError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.redundancy import RedundancyDecision, RedundancyOpt, _RedundancyEvaluator
from repro.engine import EvaluationEngine
from repro.scheduling.schedule import Schedule


class Objective(Enum):
    """Cost functions supported by the mapping heuristic."""

    SCHEDULE_LENGTH = "schedule_length"
    COST = "cost"


@dataclass(frozen=True)
class MappingResult:
    """Best design point found by the mapping heuristic for one architecture."""

    mapping: ProcessMapping
    decision: RedundancyDecision
    objective: Objective
    objective_value: float
    evaluations: int

    @property
    def schedule(self) -> Schedule:
        return self.decision.schedule

    @property
    def schedule_length(self) -> float:
        return self.decision.schedule_length

    @property
    def cost(self) -> float:
        return self.decision.cost

    @property
    def is_feasible(self) -> bool:
        return self.decision.is_feasible


class MappingAlgorithm:
    """Tabu-search mapping optimization.

    Parameters
    ----------
    redundancy_optimizer:
        Object with an ``optimize(application, architecture, mapping, profile)``
        method returning a :class:`RedundancyDecision` or ``None`` — and,
        optionally, a neighbourhood-level ``optimize_batch(application,
        architecture, mappings, profile)`` used for the tabu move list (the
        scalar method is called per move otherwise).  The OPT strategy passes
        :class:`~repro.core.redundancy.RedundancyOpt`; the MIN
        and MAX baselines pass
        :class:`~repro.core.redundancy.FixedHardeningRedundancyOpt`.
    max_iterations:
        Hard cap on tabu-search iterations.
    stop_after_no_improvement:
        The search stops after this many consecutive iterations without
        improving the best-so-far solution (the paper's stopping rule).
    tabu_tenure:
        Number of iterations a re-mapped process stays tabu.
    max_candidates:
        At most this many critical-path processes are considered for
        re-mapping per iteration (keeps the neighbourhood small).
    engine:
        Optional :class:`~repro.engine.engine.EvaluationEngine` forwarded to
        the redundancy optimizer so revisited design points (tabu moves, the
        COST pass re-evaluating the SCHEDULE_LENGTH winner, overlapping
        hardening trials) are served from cache.
    """

    def __init__(
        self,
        redundancy_optimizer: Optional[_RedundancyEvaluator] = None,
        max_iterations: int = 12,
        stop_after_no_improvement: int = 4,
        tabu_tenure: int = 3,
        max_candidates: int = 4,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.redundancy_optimizer = (
            redundancy_optimizer if redundancy_optimizer is not None else RedundancyOpt()
        )
        self.max_iterations = max_iterations
        self.stop_after_no_improvement = stop_after_no_improvement
        self.tabu_tenure = tabu_tenure
        self.max_candidates = max_candidates
        self.engine: Optional[EvaluationEngine] = None
        if engine is not None:
            self.use_engine(engine)

    # ------------------------------------------------------------------
    def use_engine(self, engine: Optional[EvaluationEngine]) -> None:
        """Attach (or detach, with ``None``) an evaluation engine."""
        self.engine = engine
        optimizer = self.redundancy_optimizer
        if hasattr(optimizer, "use_engine"):
            optimizer.use_engine(engine)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        profile: ExecutionProfile,
        objective: Objective = Objective.SCHEDULE_LENGTH,
        initial_mapping: Optional[ProcessMapping] = None,
    ) -> Optional[MappingResult]:
        """Optimize the mapping of ``application`` onto ``architecture``.

        Returns ``None`` if no evaluated mapping admits a feasible redundancy
        decision (neither hardenable into schedulability nor able to reach the
        reliability goal) — for the ``SCHEDULE_LENGTH`` objective this means
        the architecture is unusable; for ``COST`` it means no schedulable
        design exists to cheapen.
        """
        evaluations = 0
        mapping = (
            initial_mapping.copy()
            if initial_mapping is not None
            else self.initial_mapping(application, architecture, profile)
        )

        def evaluate(candidate: ProcessMapping) -> Tuple[float, Optional[RedundancyDecision]]:
            nonlocal evaluations
            evaluations += 1
            decision = self.redundancy_optimizer.optimize(
                application, architecture, candidate, profile
            )
            return self._objective_value(decision, objective), decision

        best_value, best_decision = evaluate(mapping)
        best_mapping = mapping.copy()
        current_mapping = mapping
        current_value = best_value

        tabu: Dict[str, int] = {}
        waiting: Dict[str, int] = {name: 0 for name in application.process_names()}
        stagnation = 0

        for _ in range(self.max_iterations):
            if stagnation >= self.stop_after_no_improvement:
                break
            reference_decision = best_decision
            candidates = self._critical_candidates(
                application, architecture, current_mapping, reference_decision, waiting
            )
            moves = self._candidate_moves(candidates, architecture, current_mapping, profile)
            if not moves:
                break
            # The whole neighbourhood in one batched optimizer call: the
            # optimization memo is partitioned once over the move list and
            # only cold mappings run the redundancy heuristic (bit-identical
            # to per-move optimize calls, see optimize_batch).
            candidate_mappings = [
                current_mapping.moved(process, node_name)
                for process, node_name in moves
            ]
            optimizer = self.redundancy_optimizer
            if hasattr(optimizer, "optimize_batch"):
                decisions = optimizer.optimize_batch(
                    application, architecture, candidate_mappings, profile
                )
            else:  # duck-typed optimizer without the batched entry point
                decisions = [
                    optimizer.optimize(
                        application, architecture, candidate_mapping, profile
                    )
                    for candidate_mapping in candidate_mappings
                ]
            evaluations += len(moves)
            evaluated: List[
                Tuple[float, str, str, Optional[RedundancyDecision], ProcessMapping]
            ] = [
                (
                    self._objective_value(decision, objective),
                    process,
                    node_name,
                    decision,
                    candidate_mapping,
                )
                for (process, node_name), decision, candidate_mapping in zip(
                    moves, decisions, candidate_mappings
                )
            ]
            evaluated.sort(key=lambda item: (item[0], item[1], item[2]))

            chosen = self._select_move(evaluated, best_value, tabu)
            if chosen is None:
                stagnation += 1
                self._age_counters(tabu, waiting, moved_process=None)
                continue
            value, process, node_name, decision, candidate_mapping = chosen
            current_mapping = candidate_mapping
            current_value = value
            self._age_counters(tabu, waiting, moved_process=process)
            tabu[process] = self.tabu_tenure
            if value < best_value:
                best_value = value
                best_decision = decision
                best_mapping = candidate_mapping.copy()
                stagnation = 0
            else:
                stagnation += 1

        if best_decision is None or best_value == inf:
            return None
        return MappingResult(
            mapping=best_mapping,
            decision=best_decision,
            objective=objective,
            objective_value=best_value,
            evaluations=evaluations,
        )

    # ------------------------------------------------------------------
    # initial mapping
    # ------------------------------------------------------------------
    def initial_mapping(
        self,
        application: Application,
        architecture: Architecture,
        profile: ExecutionProfile,
    ) -> ProcessMapping:
        """Load-balancing greedy initial mapping.

        Processes are visited in topological order (per graph) and assigned to
        the supporting node with the smallest accumulated load after adding
        the process's WCET at the node's minimum hardening level.
        """
        mapping = ProcessMapping()
        load: Dict[str, float] = {node.name: 0.0 for node in architecture}
        for graph in application.graphs:
            for process in graph.topological_order():
                best: Optional[Tuple[float, str, float]] = None
                for node in architecture:
                    node_type = node.node_type
                    if not profile.supports(process, node_type.name, node_type.min_hardening):
                        continue
                    wcet = profile.wcet(process, node_type.name, node_type.min_hardening)
                    projected = load[node.name] + wcet
                    key = (projected, node.name)
                    if best is None or key < (best[0], best[1]):
                        best = (projected, node.name, wcet)
                if best is None:
                    raise MappingError(
                        f"Process {process} cannot be mapped on any node of the "
                        "candidate architecture"
                    )
                _, node_name, wcet = best
                mapping.assign(process, node_name)
                load[node_name] += wcet
        return mapping

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _objective_value(
        decision: Optional[RedundancyDecision], objective: Objective
    ) -> float:
        if decision is None:
            return inf
        if objective is Objective.SCHEDULE_LENGTH:
            # Prefer feasible solutions; among infeasible ones shorter is still
            # better so the search has a gradient to follow.
            if decision.is_feasible:
                return decision.schedule_length
            return inf
        if not decision.is_feasible:
            return inf
        return decision.cost

    def _critical_candidates(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        decision: Optional[RedundancyDecision],
        waiting: Dict[str, int],
    ) -> List[str]:
        """Processes considered for re-mapping this iteration.

        Preference order: processes on the critical (longest worst-case) node
        of the current best schedule, then any process, ranked by how long the
        process has been waiting to be re-mapped.
        """
        critical: List[str] = []
        seen: set = set()
        if decision is not None:
            schedule = decision.schedule
            nodes = sorted(
                schedule.nodes(),
                key=lambda node: schedule.worst_case_node_completion(node),
                reverse=True,
            )
            for node in nodes:
                for entry in schedule.processes_on(node):
                    if entry.process not in seen:
                        seen.add(entry.process)
                        critical.append(entry.process)
                if len(critical) >= self.max_candidates:
                    break
        for process in application.process_names():
            if process not in seen:
                seen.add(process)
                critical.append(process)
        original_order = {process: index for index, process in enumerate(critical)}
        critical.sort(
            key=lambda process: (-waiting.get(process, 0), original_order[process])
        )
        return critical[: self.max_candidates]

    @staticmethod
    def _candidate_moves(
        candidates: List[str],
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> List[Tuple[str, str]]:
        """All (process, target node) pairs that change the current mapping."""
        moves: List[Tuple[str, str]] = []
        for process in candidates:
            current_node = mapping.node_of(process)
            for node in architecture:
                if node.name == current_node:
                    continue
                if not profile.supports(
                    process, node.node_type.name, node.node_type.min_hardening
                ):
                    continue
                moves.append((process, node.name))
        return moves

    @staticmethod
    def _select_move(
        evaluated: List[Tuple[float, str, str, Optional[RedundancyDecision], ProcessMapping]],
        best_value: float,
        tabu: Dict[str, int],
    ):
        """Tabu-search move selection with aspiration.

        The overall best move is taken when it improves on the best-so-far
        solution (even if the process is tabu).  Otherwise the best non-tabu
        move is taken, even when it degrades the current solution, so the
        search can escape local minima.
        """
        if not evaluated:
            return None
        best_move = evaluated[0]
        if best_move[0] < best_value:
            return best_move
        for move in evaluated:
            if tabu.get(move[1], 0) <= 0 and move[0] < inf:
                return move
        return None

    @staticmethod
    def _age_counters(
        tabu: Dict[str, int], waiting: Dict[str, int], moved_process: Optional[str]
    ) -> None:
        for process in list(tabu):
            tabu[process] = max(0, tabu[process] - 1)
        for process in waiting:
            waiting[process] += 1
        if moved_process is not None:
            waiting[moved_process] = 0
