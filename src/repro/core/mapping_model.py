"""Process-to-node mapping data type.

A mapping ``M`` assigns every process of the application to exactly one node
instance of the architecture (the paper writes ``M(Pi) = Nj^h``).  The class
below is a thin, validated wrapper around a ``{process name: node name}``
dictionary with the convenience queries used throughout the heuristics and
the SFP analysis.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import MappingError
from repro.core.profile import ExecutionProfile


class ProcessMapping:
    """Assignment of processes to architecture nodes."""

    def __init__(self, assignment: Optional[Mapping[str, str]] = None) -> None:
        self._assignment: Dict[str, str] = dict(assignment or {})

    # ------------------------------------------------------------------
    # construction / modification
    # ------------------------------------------------------------------
    def assign(self, process: str, node: str) -> None:
        """Map ``process`` onto ``node`` (overwrites any previous assignment)."""
        self._assignment[process] = node

    def copy(self) -> "ProcessMapping":
        return ProcessMapping(self._assignment)

    def moved(self, process: str, node: str) -> "ProcessMapping":
        """Return a copy of the mapping with one process re-mapped."""
        clone = self.copy()
        clone.assign(process, node)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, process: str) -> str:
        try:
            return self._assignment[process]
        except KeyError as exc:
            raise MappingError(f"Process {process} is not mapped to any node") from exc

    def processes_on(self, node: str) -> List[str]:
        """All processes mapped to ``node`` (insertion order)."""
        return [process for process, mapped in self._assignment.items() if mapped == node]

    def is_mapped(self, process: str) -> bool:
        return process in self._assignment

    def items(self):
        return self._assignment.items()

    def as_dict(self) -> Dict[str, str]:
        return dict(self._assignment)

    def used_nodes(self) -> List[str]:
        """Names of nodes that host at least one process."""
        seen: Dict[str, None] = {}
        for node in self._assignment.values():
            seen.setdefault(node, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessMapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessMapping({self._assignment})"

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(
        self,
        application: Application,
        architecture: Architecture,
        profile: Optional[ExecutionProfile] = None,
    ) -> None:
        """Check that the mapping is complete and consistent.

        * every process of the application is mapped,
        * every target node exists in the architecture,
        * (optionally) the execution profile has an entry for every
          process/node-type pair at the node's current hardening level.
        """
        application_processes = set(application.process_names())
        mapped_processes = set(self._assignment)
        missing = application_processes - mapped_processes
        if missing:
            raise MappingError(f"Unmapped processes: {sorted(missing)}")
        extra = mapped_processes - application_processes
        if extra:
            raise MappingError(f"Mapping references unknown processes: {sorted(extra)}")
        for process, node_name in self._assignment.items():
            if not architecture.has_node(node_name):
                raise MappingError(
                    f"Process {process} mapped to unknown node {node_name}"
                )
            if profile is not None:
                node = architecture.node(node_name)
                if not profile.supports(process, node.node_type.name, node.hardening):
                    raise MappingError(
                        f"Process {process} cannot execute on node {node_name} "
                        f"({node.node_type.name} at hardening {node.hardening}): "
                        "no execution profile entry"
                    )
