"""Process-to-node mapping data type.

A mapping ``M`` assigns every process of the application to exactly one node
instance of the architecture (the paper writes ``M(Pi) = Nj^h``).  The class
below is a thin, validated wrapper around a ``{process name: node name}``
dictionary with the convenience queries used throughout the heuristics and
the SFP analysis.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import MappingError
from repro.core.profile import ExecutionProfile


class ProcessMapping:
    """Assignment of processes to architecture nodes."""

    def __init__(self, assignment: Optional[Mapping[str, str]] = None) -> None:
        self._assignment: Dict[str, str] = dict(assignment or {})
        # Bumped on every in-place mutation; (identity, version) lets hot
        # paths (scheduler kernels) guard one-slot memos of derived tables
        # in O(1) instead of re-deriving or re-hashing the assignment.
        self._version = 0
        # Mapped-name set guarded by the version (validate runs per schedule
        # call, the set only changes when the assignment does).
        self._names_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # construction / modification
    # ------------------------------------------------------------------
    def assign(self, process: str, node: str) -> None:
        """Map ``process`` onto ``node`` (overwrites any previous assignment)."""
        self._assignment[process] = node
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever the assignment is edited in place."""
        return self._version

    def copy(self) -> "ProcessMapping":
        return ProcessMapping(self._assignment)

    def moved(self, process: str, node: str) -> "ProcessMapping":
        """Return a copy of the mapping with one process re-mapped."""
        clone = self.copy()
        clone.assign(process, node)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, process: str) -> str:
        try:
            return self._assignment[process]
        except KeyError as exc:
            raise MappingError(f"Process {process} is not mapped to any node") from exc

    def processes_on(self, node: str) -> List[str]:
        """All processes mapped to ``node`` (insertion order)."""
        return [process for process, mapped in self._assignment.items() if mapped == node]

    def is_mapped(self, process: str) -> bool:
        return process in self._assignment

    def mapped_names(self) -> frozenset:
        """The set of mapped process names (cached until the next edit)."""
        cached = self._names_cache
        if cached is None or cached[0] != self._version:
            cached = self._names_cache = (
                self._version,
                frozenset(self._assignment),
            )
        return cached[1]

    def items(self):
        return self._assignment.items()

    def as_dict(self) -> Dict[str, str]:
        return dict(self._assignment)

    def used_nodes(self) -> List[str]:
        """Names of nodes that host at least one process."""
        seen: Dict[str, None] = {}
        for node in self._assignment.values():
            seen.setdefault(node, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessMapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessMapping({self._assignment})"

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(
        self,
        application: Application,
        architecture: Architecture,
        profile: Optional[ExecutionProfile] = None,
    ) -> None:
        """Check that the mapping is complete and consistent.

        * every process of the application is mapped,
        * every target node exists in the architecture,
        * (optionally) the execution profile has an entry for every
          process/node-type pair at the node's current hardening level.
        """
        application_processes = application.process_name_set()
        mapped_processes = self.mapped_names()
        if application_processes != mapped_processes:
            missing = application_processes - mapped_processes
            if missing:
                raise MappingError(f"Unmapped processes: {sorted(missing)}")
            extra = mapped_processes - application_processes
            raise MappingError(f"Mapping references unknown processes: {sorted(extra)}")
        # Fast path: a mapping assigns many processes to few nodes.  When
        # every used node exists and its supported-process set (cached per
        # (node type, hardening)) covers every mapped process, the mapping is
        # valid without walking the per-process assignment in Python.  The
        # check is sufficient but stricter than necessary, so a miss falls
        # back to the exact per-process loop for the precise error message.
        used_nodes = set(self._assignment.values())
        fast_path_valid = True
        for node_name in used_nodes:
            if not architecture.has_node(node_name):
                fast_path_valid = False
                break
            if profile is not None:
                node = architecture.node(node_name)
                supported = profile.supported_processes(
                    node.node_type.name, node.hardening
                )
                if not supported >= mapped_processes:
                    fast_path_valid = False
                    break
        if fast_path_valid:
            return

        # Slow path: resolve each distinct target node once and name the
        # offending process in the error.
        resolved: Dict[str, tuple] = {}
        supports = profile.supports if profile is not None else None
        for process, node_name in self._assignment.items():
            node_key = resolved.get(node_name)
            if node_key is None:
                if not architecture.has_node(node_name):
                    raise MappingError(
                        f"Process {process} mapped to unknown node {node_name}"
                    )
                if profile is None:
                    resolved[node_name] = node_key = (node_name,)
                else:
                    node = architecture.node(node_name)
                    resolved[node_name] = node_key = (
                        node.node_type.name,
                        node.hardening,
                    )
            if supports is not None and not supports(process, *node_key):
                raise MappingError(
                    f"Process {process} cannot execute on node {node_name} "
                    f"({node_key[0]} at hardening {node_key[1]}): "
                    "no execution profile entry"
                )
