"""Execution profiles: WCET ``t_ijh`` and failure probability ``p_ijh`` tables.

The paper assumes that, for every process ``Pi``, node type ``Nj`` and
hardening level ``h``, two quantities are known:

* ``t_ijh`` — the worst-case execution time of ``Pi`` on the h-version
  ``Nj^h`` (obtained with WCET analysis tools in the paper), and
* ``p_ijh`` — the probability that a single execution of ``Pi`` on ``Nj^h``
  fails because of a transient fault (obtained with fault injection tools in
  the paper).

:class:`ExecutionProfile` stores both tables and is the single source of
truth queried by the scheduler, the SFP analysis and every heuristic.  It can
be populated three ways:

* explicitly, entry by entry (used for the paper's motivational examples whose
  tables are printed in Fig. 1 and Fig. 3),
* analytically from a :class:`~repro.core.fault_model.FaultModel` (used for
  the large synthetic experiments), or
* empirically from a Monte-Carlo fault-injection campaign
  (:mod:`repro.faults.injection`), which substitutes the fault-injection tools
  referenced by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture, Node, NodeType
from repro.core.exceptions import ProfileError
from repro.utils.validation import require_in_unit_interval, require_positive

ProfileKey = Tuple[str, str, int]


@dataclass(frozen=True)
class ProfileEntry:
    """One row of the execution profile: ``(t_ijh, p_ijh)``."""

    wcet: float
    failure_probability: float

    def __post_init__(self) -> None:
        require_positive(self.wcet, "wcet")
        require_in_unit_interval(self.failure_probability, "failure_probability")


class ExecutionProfile:
    """Table of worst-case execution times and failure probabilities.

    Entries are keyed by ``(process name, node type name, hardening level)``.
    A missing entry means the process cannot be mapped onto that node (the
    mapping heuristics respect this), except that a completely unknown
    process/node pair raises :class:`ProfileError` to catch typos early.
    """

    def __init__(self) -> None:
        self._entries: Dict[ProfileKey, ProfileEntry] = {}
        self._known_processes: Set[str] = set()
        self._known_node_types: Set[str] = set()
        # Per (node type, hardening) supported-process sets, built lazily for
        # the mapping-validation fast path and discarded on every add_entry.
        self._supported_cache: Dict[Tuple[str, int], frozenset] = {}
        # Bumped on every add_entry; (identity, version) lets consumers that
        # snapshot the table (compiled scheduler kernels) guard their caches
        # against in-place profile edits.
        self._version = 0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_entry(
        self,
        process: str,
        node_type: str,
        hardening: int,
        wcet: float,
        failure_probability: float,
    ) -> None:
        """Add (or overwrite) the entry for one (process, node, level) triple."""
        key = (process, node_type, hardening)
        self._entries[key] = ProfileEntry(wcet=wcet, failure_probability=failure_probability)
        self._known_processes.add(process)
        self._known_node_types.add(node_type)
        self._supported_cache.clear()
        self._version += 1

    @classmethod
    def from_tables(
        cls,
        wcet: Mapping[ProfileKey, float],
        failure_probability: Mapping[ProfileKey, float],
    ) -> "ExecutionProfile":
        """Build a profile from two parallel ``{(p, n, h): value}`` tables."""
        missing = set(wcet) ^ set(failure_probability)
        if missing:
            raise ProfileError(
                f"WCET and failure-probability tables disagree on keys: {sorted(missing)}"
            )
        profile = cls()
        for key, time in wcet.items():
            process, node_type, hardening = key
            profile.add_entry(
                process, node_type, hardening, time, failure_probability[key]
            )
        return profile

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lookup(self, process: str, node_type: str, hardening: int) -> ProfileEntry:
        key = (process, node_type, hardening)
        try:
            return self._entries[key]
        except KeyError as exc:
            raise ProfileError(
                f"No profile entry for process {process!r} on node type "
                f"{node_type!r} at hardening level {hardening}"
            ) from exc

    def wcet(self, process: str, node_type: str, hardening: int) -> float:
        """Worst-case execution time ``t_ijh`` in milliseconds."""
        return self._lookup(process, node_type, hardening).wcet

    def failure_probability(self, process: str, node_type: str, hardening: int) -> float:
        """Probability ``p_ijh`` that a single execution fails."""
        return self._lookup(process, node_type, hardening).failure_probability

    def wcet_on_node(self, process: str, node: Node) -> float:
        """WCET of ``process`` on a node instance at its current hardening."""
        return self.wcet(process, node.node_type.name, node.hardening)

    def failure_probability_on_node(self, process: str, node: Node) -> float:
        return self.failure_probability(process, node.node_type.name, node.hardening)

    def supports(self, process: str, node_type: str, hardening: Optional[int] = None) -> bool:
        """Whether ``process`` can be mapped to ``node_type`` (at ``hardening``)."""
        if hardening is not None:
            return (process, node_type, hardening) in self._entries
        return any(
            key[0] == process and key[1] == node_type for key in self._entries
        )

    def supported_processes(self, node_type: str, hardening: int) -> frozenset:
        """All processes with an entry for ``(node_type, hardening)`` (cached).

        Backs the mapping-validation fast path: a mapping is trivially valid
        on a node whose supported-process set covers every mapped process.
        """
        key = (node_type, hardening)
        supported = self._supported_cache.get(key)
        if supported is None:
            supported = self._supported_cache[key] = frozenset(
                process
                for process, entry_type, entry_level in self._entries
                if entry_type == node_type and entry_level == hardening
            )
        return supported

    def processes(self) -> List[str]:
        return sorted(self._known_processes)

    def node_types(self) -> List[str]:
        return sorted(self._known_node_types)

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever an entry is added or overwritten."""
        return self._version

    def entries(self) -> Dict[ProfileKey, ProfileEntry]:
        """A copy of the raw table (used by serialization)."""
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # validation and derived quantities
    # ------------------------------------------------------------------
    def validate_against(
        self,
        application: Application,
        node_types: Iterable[NodeType],
    ) -> None:
        """Check the profile covers every (process, node type, level) triple.

        A profile may legitimately omit triples for processes that cannot run
        on a given node type, but the common case in the paper is full
        coverage; this helper lets generators and loaders verify it.
        """
        problems: List[str] = []
        for process in application.process_names():
            for node_type in node_types:
                for level in node_type.hardening_levels:
                    if (process, node_type.name, level) not in self._entries:
                        problems.append(f"({process}, {node_type.name}, h={level})")
        if problems:
            preview = ", ".join(problems[:8])
            raise ProfileError(
                f"Execution profile is missing {len(problems)} entries, e.g. {preview}"
            )

    def average_wcet(self, process: str, node_type: str) -> float:
        """Average WCET of a process over all hardening levels of a node type."""
        values = [
            entry.wcet
            for key, entry in self._entries.items()
            if key[0] == process and key[1] == node_type
        ]
        if not values:
            raise ProfileError(
                f"No entries for process {process!r} on node type {node_type!r}"
            )
        return sum(values) / len(values)

    def fastest_node_type_for(
        self, process: str, node_types: Iterable[NodeType]
    ) -> NodeType:
        """Node type with the smallest WCET for ``process`` at min hardening."""
        best: Optional[Tuple[float, NodeType]] = None
        for node_type in node_types:
            if not self.supports(process, node_type.name, node_type.min_hardening):
                continue
            time = self.wcet(process, node_type.name, node_type.min_hardening)
            if best is None or time < best[0]:
                best = (time, node_type)
        if best is None:
            raise ProfileError(f"Process {process!r} cannot run on any offered node type")
        return best[1]

    def architecture_supports(self, process: str, architecture: Architecture) -> bool:
        """Whether at least one node of ``architecture`` can execute ``process``."""
        return any(
            self.supports(process, node.node_type.name, node.hardening)
            for node in architecture
        )
