"""RedundancyOpt — hardware/software redundancy trade-off (Section 6.3).

For a fixed mapping, the heuristic decides the hardening level of every node
and the number of re-executions on each node such that

* the reliability goal is met (delegated to
  :class:`~repro.core.reexecution.ReExecutionOpt`),
* the worst-case schedule length fits the deadline, and
* the architecture cost is as low as possible.

Following the paper, the heuristic first *increases* hardening greedily until
a schedulable solution is found (more hardening means fewer re-executions and
therefore less recovery slack, at the price of slower execution), then
*trims* hardening level by level as long as the application stays schedulable,
keeping the cheapest schedulable alternative at every step.

A fixed-hardening variant (:class:`FixedHardeningRedundancyOpt`) implements
the MIN and MAX baselines of Section 7, where the hardening optimization step
is removed and only the software redundancy is optimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import OptimizationError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.reexecution import ReExecutionOpt
from repro.engine import MISS, EvaluationEngine
from repro.engine.fingerprint import (
    architecture_fingerprint,
    hardening_fingerprint,
    mapping_fingerprint,
)
from repro.scheduling.list_scheduler import ListScheduler
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class RedundancyDecision:
    """Hardening levels + re-executions + resulting schedule for one mapping."""

    hardening: Dict[str, int]
    reexecutions: Dict[str, int]
    schedule: Schedule
    cost: float
    schedule_length: float
    meets_deadline: bool
    meets_reliability: bool

    @property
    def is_feasible(self) -> bool:
        """Schedulable and reliable — the two hard constraints of the paper."""
        return self.meets_deadline and self.meets_reliability


class _RedundancyEvaluator:
    """Shared machinery: evaluate one hardening vector for a fixed mapping.

    When an :class:`~repro.engine.engine.EvaluationEngine` is attached (via
    :meth:`use_engine`), every evaluated design point — (architecture,
    mapping, hardening vector) under the bound (application, profile) — is
    memoized, so revisited points skip both the re-execution optimization and
    the list scheduler.  Cached :class:`RedundancyDecision` objects are shared
    between callers and must be treated as immutable (their dict fields are
    copied by every consumer that mutates).
    """

    def __init__(
        self,
        scheduler: Optional[ListScheduler] = None,
        reexecution_opt: Optional[ReExecutionOpt] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else ListScheduler()
        self.reexecution_opt = (
            reexecution_opt if reexecution_opt is not None else ReExecutionOpt()
        )
        self.engine: Optional[EvaluationEngine] = None
        if engine is not None:
            self.use_engine(engine)

    # ------------------------------------------------------------------
    def use_engine(self, engine: Optional[EvaluationEngine]) -> None:
        """Attach (or detach, with ``None``) an evaluation engine."""
        self.engine = engine
        self.reexecution_opt.engine = engine

    def _active_engine(
        self, application: Application, profile: ExecutionProfile
    ) -> Optional[EvaluationEngine]:
        """The attached engine, if it is bound to this (application, profile)."""
        engine = self.engine
        if engine is not None and engine.matches(application, profile):
            return engine
        return None

    def _evaluator_signature(self) -> Tuple:
        """Configuration part of the cache keys.

        Two evaluators with the same signature produce identical decisions
        for identical design points, so MIN / MAX / OPT strategies can share
        one engine.
        """
        bus = getattr(self.scheduler, "bus", None)
        if bus is None:
            bus_signature = None
        elif hasattr(bus, "signature"):
            bus_signature = bus.signature()
        else:
            bus_signature = (type(bus).__name__,)
        return (
            type(self.scheduler).__name__,
            getattr(self.scheduler, "slack_sharing", None),
            bus_signature,
            self.reexecution_opt.max_reexecutions_per_node,
            self.reexecution_opt.decimals,
        )

    # ------------------------------------------------------------------
    def evaluate_hardening(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        hardening: Dict[str, int],
    ) -> RedundancyDecision:
        """Evaluate one hardening vector: re-executions, schedule, cost."""
        engine = self._active_engine(application, profile)
        # The cache key treats the hardening vector as a *total* description
        # of the node levels; a partial vector (legal for the unmemoized
        # path — apply_hardening_vector only updates the named nodes) would
        # alias design points that differ in the unnamed nodes' current
        # levels, so it bypasses the cache.
        if engine is None or len(hardening) != len(architecture):
            return self._evaluate_hardening(
                application, architecture, mapping, profile, hardening
            )
        key = (
            self._evaluator_signature(),
            architecture_fingerprint(architecture),
            mapping_fingerprint(mapping),
            hardening_fingerprint(hardening),
        )
        decision = engine.decisions.get(key)
        if decision is MISS:
            decision = engine.decisions.put(
                key,
                self._evaluate_hardening(
                    application, architecture, mapping, profile, hardening
                ),
            )
            engine.evaluations += 1
        return decision

    def _evaluate_hardening(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        hardening: Dict[str, int],
    ) -> RedundancyDecision:
        candidate = architecture.copy()
        candidate.apply_hardening_vector(hardening)
        reexecution = self.reexecution_opt.optimize(
            application, candidate, mapping, profile
        )
        if reexecution is None:
            # Reliability goal unreachable at this hardening level; schedule
            # with zero re-executions only to report a schedule length.
            budgets: Dict[str, int] = {node.name: 0 for node in candidate}
            meets_reliability = False
        else:
            budgets = reexecution.reexecutions
            meets_reliability = True
        schedule = self.scheduler.schedule(
            application, candidate, mapping, profile, budgets
        )
        return RedundancyDecision(
            hardening=dict(hardening),
            reexecutions=dict(budgets),
            schedule=schedule,
            cost=candidate.cost,
            schedule_length=schedule.length,
            meets_deadline=schedule.length <= application.deadline,
            meets_reliability=meets_reliability,
        )


class RedundancyOpt(_RedundancyEvaluator):
    """Hardening/re-execution trade-off heuristic of the paper (OPT)."""

    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        """Return the cheapest feasible redundancy decision for ``mapping``.

        Returns ``None`` when no hardening level combination yields a solution
        that is both schedulable and reliable (the mapping is then discarded
        by the caller, as in the paper's Fig. 4d discussion).
        """
        engine = self._active_engine(application, profile)
        if engine is not None:
            key = (
                type(self).__name__,
                self._evaluator_signature(),
                architecture_fingerprint(architecture),
                mapping_fingerprint(mapping),
            )
            return engine.optimizations.memoize(
                key,
                lambda: self._optimize(application, architecture, mapping, profile),
            )
        return self._optimize(application, architecture, mapping, profile)

    def _optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        hardening = {
            node.name: node.node_type.min_hardening for node in architecture
        }
        decision = self.evaluate_hardening(
            application, architecture, mapping, profile, hardening
        )

        # ---------------- Phase 1: harden until feasible -----------------
        visited = 0
        max_steps = sum(
            node.node_type.max_hardening - node.node_type.min_hardening
            for node in architecture
        )
        while not decision.is_feasible and visited <= max_steps:
            best_candidate: Optional[
                Tuple[Tuple[int, float], Dict[str, int], RedundancyDecision]
            ] = None
            for node in architecture:
                level = hardening[node.name]
                if level >= node.node_type.max_hardening:
                    continue
                trial = dict(hardening)
                trial[node.name] = level + 1
                trial_decision = self.evaluate_hardening(
                    application, architecture, mapping, profile, trial
                )
                # Rank: feasible reliability first, then shorter schedules.
                key = (
                    0 if trial_decision.meets_reliability else 1,
                    trial_decision.schedule_length,
                )
                if best_candidate is None or key < best_candidate[0]:
                    best_candidate = (key, trial, trial_decision)
            if best_candidate is None:
                return None
            _, hardening, decision = best_candidate
            visited += 1
        if not decision.is_feasible:
            return None

        # ---------------- Phase 2: trim hardening to cut cost ------------
        improved = True
        while improved:
            improved = False
            best_candidate = None
            for node in architecture:
                level = hardening[node.name]
                if level <= node.node_type.min_hardening:
                    continue
                trial = dict(hardening)
                trial[node.name] = level - 1
                trial_decision = self.evaluate_hardening(
                    application, architecture, mapping, profile, trial
                )
                if not trial_decision.is_feasible:
                    continue
                key = (trial_decision.cost, trial_decision.schedule_length)
                if best_candidate is None or key < best_candidate[0]:
                    best_candidate = (key, trial, trial_decision)
            if best_candidate is not None and best_candidate[2].cost < decision.cost:
                _, hardening, decision = best_candidate
                improved = True
        return decision


class FixedHardeningRedundancyOpt(_RedundancyEvaluator):
    """Baseline redundancy optimizer with the hardening level locked.

    ``policy="min"`` reproduces the paper's MIN strategy (cheapest, least
    hardened nodes; reliability achieved through re-execution only), while
    ``policy="max"`` reproduces MAX (most hardened versions only).
    """

    def __init__(
        self,
        policy: str,
        scheduler: Optional[ListScheduler] = None,
        reexecution_opt: Optional[ReExecutionOpt] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(scheduler=scheduler, reexecution_opt=reexecution_opt, engine=engine)
        if policy not in ("min", "max"):
            raise OptimizationError(
                f"FixedHardeningRedundancyOpt policy must be 'min' or 'max', got {policy!r}"
            )
        self.policy = policy

    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        engine = self._active_engine(application, profile)
        if engine is not None:
            key = (
                type(self).__name__,
                self.policy,
                self._evaluator_signature(),
                architecture_fingerprint(architecture),
                mapping_fingerprint(mapping),
            )
            return engine.optimizations.memoize(
                key,
                lambda: self._optimize(application, architecture, mapping, profile),
            )
        return self._optimize(application, architecture, mapping, profile)

    def _optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        hardening = {
            node.name: (
                node.node_type.min_hardening
                if self.policy == "min"
                else node.node_type.max_hardening
            )
            for node in architecture
        }
        decision = self.evaluate_hardening(
            application, architecture, mapping, profile, hardening
        )
        if not decision.is_feasible:
            return None
        return decision
