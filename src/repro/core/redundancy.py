"""RedundancyOpt — hardware/software redundancy trade-off (Section 6.3).

For a fixed mapping, the heuristic decides the hardening level of every node
and the number of re-executions on each node such that

* the reliability goal is met (delegated to
  :class:`~repro.core.reexecution.ReExecutionOpt`),
* the worst-case schedule length fits the deadline, and
* the architecture cost is as low as possible.

Following the paper, the heuristic first *increases* hardening greedily until
a schedulable solution is found (more hardening means fewer re-executions and
therefore less recovery slack, at the price of slower execution), then
*trims* hardening level by level as long as the application stays schedulable,
keeping the cheapest schedulable alternative at every step.

A fixed-hardening variant (:class:`FixedHardeningRedundancyOpt`) implements
the MIN and MAX baselines of Section 7, where the hardening optimization step
is removed and only the software redundancy is optimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import OptimizationError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.reexecution import ReExecutionOpt
from repro.engine import MISS, EvaluationEngine
from repro.engine.fingerprint import (
    architecture_fingerprint,
    hardening_fingerprint,
    mapping_fingerprint,
)
from repro.scheduling.list_scheduler import ListScheduler
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class RedundancyDecision:
    """Hardening levels + re-executions + resulting schedule for one mapping."""

    hardening: Dict[str, int]
    reexecutions: Dict[str, int]
    schedule: Schedule
    cost: float
    schedule_length: float
    meets_deadline: bool
    meets_reliability: bool

    @property
    def is_feasible(self) -> bool:
        """Schedulable and reliable — the two hard constraints of the paper."""
        return self.meets_deadline and self.meets_reliability


class _RedundancyEvaluator:
    """Shared machinery: evaluate one hardening vector for a fixed mapping.

    When an :class:`~repro.engine.engine.EvaluationEngine` is attached (via
    :meth:`use_engine`), every evaluated design point — (architecture,
    mapping, hardening vector) under the bound (application, profile) — is
    memoized, so revisited points skip both the re-execution optimization and
    the list scheduler.  Cached :class:`RedundancyDecision` objects are shared
    between callers and must be treated as immutable (their dict fields are
    copied by every consumer that mutates).
    """

    def __init__(
        self,
        scheduler: Optional[ListScheduler] = None,
        reexecution_opt: Optional[ReExecutionOpt] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else ListScheduler()
        self.reexecution_opt = (
            reexecution_opt if reexecution_opt is not None else ReExecutionOpt()
        )
        self.engine: Optional[EvaluationEngine] = None
        if engine is not None:
            self.use_engine(engine)

    # ------------------------------------------------------------------
    def use_engine(self, engine: Optional[EvaluationEngine]) -> None:
        """Attach (or detach, with ``None``) an evaluation engine."""
        self.engine = engine
        self.reexecution_opt.engine = engine

    def _active_engine(
        self, application: Application, profile: ExecutionProfile
    ) -> Optional[EvaluationEngine]:
        """The attached engine, if it is bound to this (application, profile)."""
        engine = self.engine
        if engine is not None and engine.matches(application, profile):
            return engine
        return None

    def _evaluator_signature(self) -> Tuple:
        """Configuration part of the cache keys.

        Two evaluators with the same signature produce identical decisions
        for identical design points, so MIN / MAX / OPT strategies can share
        one engine.
        """
        bus = getattr(self.scheduler, "bus", None)
        if bus is None:
            bus_signature = None
        elif hasattr(bus, "signature"):
            bus_signature = bus.signature()
        else:
            bus_signature = (type(bus).__name__,)
        return (
            type(self.scheduler).__name__,
            getattr(self.scheduler, "slack_sharing", None),
            bus_signature,
            self.reexecution_opt.max_reexecutions_per_node,
            self.reexecution_opt.decimals,
        )

    # ------------------------------------------------------------------
    def evaluate_hardening(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        hardening: Dict[str, int],
    ) -> RedundancyDecision:
        """Evaluate one hardening vector: re-executions, schedule, cost."""
        engine = self._active_engine(application, profile)
        # The cache key treats the hardening vector as a *total* description
        # of the node levels; a partial vector (legal for the unmemoized
        # path — apply_hardening_vector only updates the named nodes) would
        # alias design points that differ in the unnamed nodes' current
        # levels, so it bypasses the cache.
        if engine is None or len(hardening) != len(architecture):
            return self._evaluate_hardening(
                application, architecture, mapping, profile, hardening
            )
        key = (
            self._evaluator_signature(),
            architecture_fingerprint(architecture),
            mapping_fingerprint(mapping),
            hardening_fingerprint(hardening),
        )
        decision = engine.decisions.get(key)
        if decision is MISS:
            decision = engine.decisions.put(
                key,
                self._evaluate_hardening(
                    application, architecture, mapping, profile, hardening
                ),
            )
            engine.evaluations += 1
        return decision

    def _evaluate_hardening(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        hardening: Dict[str, int],
    ) -> RedundancyDecision:
        candidate = architecture.copy()
        candidate.apply_hardening_vector(hardening)
        reexecution = self.reexecution_opt.optimize(
            application, candidate, mapping, profile
        )
        if reexecution is None:
            # Reliability goal unreachable at this hardening level; schedule
            # with zero re-executions only to report a schedule length.
            budgets: Dict[str, int] = {node.name: 0 for node in candidate}
            meets_reliability = False
        else:
            budgets = reexecution.reexecutions
            meets_reliability = True
        schedule = self.scheduler.schedule(
            application, candidate, mapping, profile, budgets
        )
        return RedundancyDecision(
            hardening=dict(hardening),
            reexecutions=dict(budgets),
            schedule=schedule,
            cost=candidate.cost,
            schedule_length=schedule.length,
            meets_deadline=schedule.length <= application.deadline,
            meets_reliability=meets_reliability,
        )

    # ------------------------------------------------------------------
    # batched neighbourhood evaluation
    # ------------------------------------------------------------------
    def evaluate_hardening_batch(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        trials: Sequence[Dict[str, int]],
    ) -> List[RedundancyDecision]:
        """Evaluate a whole hardening neighbourhood in one partitioned pass.

        The trial block is partitioned against the decision memo in one
        :meth:`~repro.engine.cache.MemoCache.get_many` call (key prefix —
        evaluator signature, architecture and mapping fingerprints — computed
        once instead of per trial); only the residual cold rows run the
        re-execution optimizer, and their schedules are built through
        :meth:`~repro.scheduling.list_scheduler.ListScheduler.schedule_batch`.
        Results and cache counters are bit-identical to sequential
        :meth:`evaluate_hardening` calls.
        """
        engine = self._active_engine(application, profile)
        if engine is None or any(
            len(trial) != len(architecture) for trial in trials
        ):
            # Partial vectors bypass the cache (see evaluate_hardening);
            # keep the whole block on the scalar path for uniform counters.
            return [
                self.evaluate_hardening(
                    application, architecture, mapping, profile, trial
                )
                for trial in trials
            ]
        prefix = (
            self._evaluator_signature(),
            architecture_fingerprint(architecture),
            mapping_fingerprint(mapping),
        )
        keys = [prefix + (hardening_fingerprint(trial),) for trial in trials]
        values, cold, duplicates = engine.decisions.get_many(keys)
        if cold:
            computed = self._evaluate_hardening_batch(
                application,
                architecture,
                mapping,
                profile,
                [trials[position] for position in cold],
            )
            for position, decision in zip(cold, computed):
                values[position] = engine.decisions.put(keys[position], decision)
            engine.evaluations += len(cold)
            for position, first in duplicates.items():
                values[position] = values[first]
        engine.record_batch(rows=len(keys), cold_rows=len(cold))
        return values

    def _evaluate_hardening_batch(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        trials: Sequence[Dict[str, int]],
    ) -> List[RedundancyDecision]:
        """Evaluate the cold rows of a hardening neighbourhood.

        Two batch-level savings over the scalar loop, both value-preserving:

        * the base point's per-node failure-probability tuples are derived
          once and shared — a sibling recomputes only the tuples of nodes
          whose hardening it flips (the tuple is a pure function of node
          type, hardening level and the mapped process list);
        * the per-row schedules are built in one
          :meth:`~repro.scheduling.list_scheduler.ListScheduler.schedule_batch`
          call, amortizing the kernel's compiled tables across the block.
        """
        if not trials:
            return []
        base_levels = {node.name: node.hardening for node in architecture}
        processes_on = {
            node.name: mapping.processes_on(node.name) for node in architecture
        }
        base_probabilities: Dict[str, Tuple[float, ...]] = {
            node.name: tuple(
                profile.failure_probability(
                    process, node.node_type.name, node.hardening
                )
                for process in processes_on[node.name]
            )
            for node in architecture
        }
        problems: List[Tuple[Architecture, Dict[str, Tuple[float, ...]]]] = []
        for trial in trials:
            candidate = architecture.copy()
            candidate.apply_hardening_vector(trial)
            probabilities: Dict[str, Tuple[float, ...]] = {}
            for node in candidate:
                name = node.name
                if node.hardening == base_levels[name]:
                    probabilities[name] = base_probabilities[name]
                else:
                    probabilities[name] = tuple(
                        profile.failure_probability(
                            process, node.node_type.name, node.hardening
                        )
                        for process in processes_on[name]
                    )
            problems.append((candidate, probabilities))
        reexecutions = self.reexecution_opt.optimize_many(
            application, problems, mapping, profile
        )
        rows: List[Tuple[Architecture, ProcessMapping, Dict[str, int]]] = []
        partial: List[Tuple[Dict[str, int], Architecture, Dict[str, int], bool]] = []
        for trial, (candidate, _), reexecution in zip(
            trials, problems, reexecutions
        ):
            if reexecution is None:
                budgets: Dict[str, int] = {node.name: 0 for node in candidate}
                meets_reliability = False
            else:
                budgets = reexecution.reexecutions
                meets_reliability = True
            rows.append((candidate, mapping, budgets))
            partial.append((trial, candidate, budgets, meets_reliability))
        schedules = self.scheduler.schedule_batch(application, rows, profile)
        return [
            RedundancyDecision(
                hardening=dict(trial),
                reexecutions=dict(budgets),
                schedule=schedule,
                cost=candidate.cost,
                schedule_length=schedule.length,
                meets_deadline=schedule.length <= application.deadline,
                meets_reliability=meets_reliability,
            )
            for (trial, candidate, budgets, meets_reliability), schedule in zip(
                partial, schedules
            )
        ]

    # ------------------------------------------------------------------
    def _optimization_prefix(self, architecture: Architecture) -> Tuple:
        """Optimization-memo key minus the mapping fingerprint.

        Subclasses extend this with their own configuration (e.g. the fixed
        hardening policy).  ``optimize_batch`` computes it once per
        neighbourhood; the scalar ``optimize`` appends one mapping
        fingerprint to the identical prefix.
        """
        return (
            type(self).__name__,
            self._evaluator_signature(),
            architecture_fingerprint(architecture),
        )

    def optimize_batch(
        self,
        application: Application,
        architecture: Architecture,
        mappings: Sequence[ProcessMapping],
        profile: ExecutionProfile,
    ) -> List[Optional[RedundancyDecision]]:
        """Optimize redundancy for a whole mapping neighbourhood.

        The tabu-search move generator emits sibling mappings of one base
        point; this partitions them against the optimization memo in one
        pass (evaluator signature and architecture fingerprint hashed once)
        and runs the optimizer only on the cold rows.  Bit-identical, with
        identical counters, to sequential :meth:`optimize` calls.
        """
        engine = self._active_engine(application, profile)
        if engine is None:
            return [
                self._optimize(application, architecture, mapping, profile)
                for mapping in mappings
            ]
        prefix = self._optimization_prefix(architecture)
        keys = [
            prefix + (mapping_fingerprint(mapping),) for mapping in mappings
        ]
        values, cold, duplicates = engine.optimizations.get_many(keys)
        if cold:
            for position in cold:
                values[position] = engine.optimizations.put(
                    keys[position],
                    self._optimize(
                        application, architecture, mappings[position], profile
                    ),
                )
            for position, first in duplicates.items():
                values[position] = values[first]
        engine.record_batch(rows=len(keys), cold_rows=len(cold))
        return values

    def _optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        raise NotImplementedError


class RedundancyOpt(_RedundancyEvaluator):
    """Hardening/re-execution trade-off heuristic of the paper (OPT)."""

    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        """Return the cheapest feasible redundancy decision for ``mapping``.

        Returns ``None`` when no hardening level combination yields a solution
        that is both schedulable and reliable (the mapping is then discarded
        by the caller, as in the paper's Fig. 4d discussion).
        """
        engine = self._active_engine(application, profile)
        if engine is not None:
            key = self._optimization_prefix(architecture) + (
                mapping_fingerprint(mapping),
            )
            return engine.optimizations.memoize(
                key,
                lambda: self._optimize(application, architecture, mapping, profile),
            )
        return self._optimize(application, architecture, mapping, profile)

    def _optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        hardening = {
            node.name: node.node_type.min_hardening for node in architecture
        }
        decision = self.evaluate_hardening(
            application, architecture, mapping, profile, hardening
        )

        # ---------------- Phase 1: harden until feasible -----------------
        visited = 0
        max_steps = sum(
            node.node_type.max_hardening - node.node_type.min_hardening
            for node in architecture
        )
        while not decision.is_feasible and visited <= max_steps:
            # One +1-hardening sibling per non-maxed node — the whole
            # neighbourhood evaluated as one batch.
            trials = []
            for node in architecture:
                level = hardening[node.name]
                if level >= node.node_type.max_hardening:
                    continue
                trial = dict(hardening)
                trial[node.name] = level + 1
                trials.append(trial)
            trial_decisions = self.evaluate_hardening_batch(
                application, architecture, mapping, profile, trials
            )
            best_candidate: Optional[
                Tuple[Tuple[int, float], Dict[str, int], RedundancyDecision]
            ] = None
            for trial, trial_decision in zip(trials, trial_decisions):
                # Rank: feasible reliability first, then shorter schedules.
                key = (
                    0 if trial_decision.meets_reliability else 1,
                    trial_decision.schedule_length,
                )
                if best_candidate is None or key < best_candidate[0]:
                    best_candidate = (key, trial, trial_decision)
            if best_candidate is None:
                return None
            _, hardening, decision = best_candidate
            visited += 1
        if not decision.is_feasible:
            return None

        # ---------------- Phase 2: trim hardening to cut cost ------------
        improved = True
        while improved:
            improved = False
            trials = []
            for node in architecture:
                level = hardening[node.name]
                if level <= node.node_type.min_hardening:
                    continue
                trial = dict(hardening)
                trial[node.name] = level - 1
                trials.append(trial)
            trial_decisions = self.evaluate_hardening_batch(
                application, architecture, mapping, profile, trials
            )
            best_candidate = None
            for trial, trial_decision in zip(trials, trial_decisions):
                if not trial_decision.is_feasible:
                    continue
                key = (trial_decision.cost, trial_decision.schedule_length)
                if best_candidate is None or key < best_candidate[0]:
                    best_candidate = (key, trial, trial_decision)
            if best_candidate is not None and best_candidate[2].cost < decision.cost:
                _, hardening, decision = best_candidate
                improved = True
        return decision


class FixedHardeningRedundancyOpt(_RedundancyEvaluator):
    """Baseline redundancy optimizer with the hardening level locked.

    ``policy="min"`` reproduces the paper's MIN strategy (cheapest, least
    hardened nodes; reliability achieved through re-execution only), while
    ``policy="max"`` reproduces MAX (most hardened versions only).
    """

    def __init__(
        self,
        policy: str,
        scheduler: Optional[ListScheduler] = None,
        reexecution_opt: Optional[ReExecutionOpt] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(scheduler=scheduler, reexecution_opt=reexecution_opt, engine=engine)
        if policy not in ("min", "max"):
            raise OptimizationError(
                f"FixedHardeningRedundancyOpt policy must be 'min' or 'max', got {policy!r}"
            )
        self.policy = policy

    def _optimization_prefix(self, architecture: Architecture) -> Tuple:
        """The shared prefix with the fixed policy between name and signature."""
        return (
            type(self).__name__,
            self.policy,
            self._evaluator_signature(),
            architecture_fingerprint(architecture),
        )

    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        engine = self._active_engine(application, profile)
        if engine is not None:
            key = self._optimization_prefix(architecture) + (
                mapping_fingerprint(mapping),
            )
            return engine.optimizations.memoize(
                key,
                lambda: self._optimize(application, architecture, mapping, profile),
            )
        return self._optimize(application, architecture, mapping, profile)

    def _optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[RedundancyDecision]:
        hardening = {
            node.name: (
                node.node_type.min_hardening
                if self.policy == "min"
                else node.node_type.max_hardening
            )
            for node in architecture
        }
        decision = self.evaluate_hardening(
            application, architecture, mapping, profile, hardening
        )
        if not decision.is_feasible:
            return None
        return decision
