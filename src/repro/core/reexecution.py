"""ReExecutionOpt — greedy assignment of software re-executions (Section 6.3).

Given an architecture with fixed hardening levels and a mapping, the heuristic
finds the smallest numbers of re-executions ``k_j`` per node such that the
system reliability goal ``rho`` is met, using the SFP analysis of Appendix A.

The paper: "It starts without any re-executions in software and increases the
number of re-executions in a greedy fashion ... the exploration of the number
of re-executions is guided towards the largest increase in the system
reliability."  At each step, the node whose additional re-execution lowers the
system failure probability the most receives one more re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import EvaluationEngine

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.sfp import KernelSpec, SFPAnalysis, reliability_over_time_unit
from repro.kernels.registry import resolve_kernel
from repro.utils.rounding import DEFAULT_DECIMALS


@dataclass(frozen=True)
class ReExecutionDecision:
    """Result of the re-execution optimization."""

    reexecutions: Dict[str, int]
    system_failure_per_iteration: float
    reliability_over_time_unit: float
    meets_goal: bool

    @property
    def total_reexecutions(self) -> int:
        return sum(self.reexecutions.values())


@dataclass
class _LockstepTrial:
    """Mutable per-trial state of one lockstep greedy run.

    All per-node state is kept in lists aligned with ``node_names`` (the
    architecture's node order): the greedy inner loop substitutes one slot,
    snapshots the tuple and restores the slot, which avoids a per-element
    dictionary lookup in the hottest expression of the whole optimizer.
    """

    index: int
    node_names: List[str]
    probabilities: List[Tuple[float, ...]]
    budgets: List[int] = field(default_factory=list)
    exceedance: List[float] = field(default_factory=list)
    system: float = 0.0


class ReExecutionOpt:
    """Greedy re-execution assignment driven by the SFP analysis.

    Parameters
    ----------
    max_reexecutions_per_node:
        Safety cap on ``k_j``; if the goal is not reached within the cap on
        every node the heuristic reports failure (``None``), which the caller
        interprets as "this hardening level cannot satisfy the reliability
        goal with software redundancy alone".
    decimals:
        Rounding accuracy forwarded to the SFP analysis.
    engine:
        Optional :class:`~repro.engine.engine.EvaluationEngine` serving the
        per-node exceedance and system-failure memo tables.  The greedy loop
        re-queries the same (node, budget) exceedances on every iteration, so
        memoization removes most of the Decimal-chain recomputation.  Results
        are bit-identical with and without an engine.
    kernel:
        SFP kernel backend for the unmemoized path (an engine brings its
        own); a speed knob only, every backend is bit-identical.
    """

    def __init__(
        self,
        max_reexecutions_per_node: int = 20,
        decimals: int = DEFAULT_DECIMALS,
        engine: Optional["EvaluationEngine"] = None,
        kernel: KernelSpec = None,
    ) -> None:
        if max_reexecutions_per_node < 0:
            raise ValueError(
                "max_reexecutions_per_node must be >= 0, got "
                f"{max_reexecutions_per_node}"
            )
        self.max_reexecutions_per_node = max_reexecutions_per_node
        self.decimals = decimals
        self.engine = engine
        self.kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------
    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        node_probabilities: Optional[Dict[str, Tuple[float, ...]]] = None,
    ) -> Optional[ReExecutionDecision]:
        """Return the cheapest re-execution assignment meeting ``rho``.

        Returns ``None`` when the goal cannot be met within the per-node cap
        (typically because the hardening level is too low for the error rate).

        ``node_probabilities`` optionally supplies the per-node failure
        probability tuples directly (the ordered values an
        :class:`~repro.core.sfp.SFPAnalysis` over the same inputs would
        derive).  The batched redundancy evaluator uses this to share the
        base point's tuples across a hardening neighbourhood, recomputing
        only the flipped node's tuple per sibling.
        """
        engine = self.engine
        node_names = [node.name for node in architecture]
        # Ordered tuples: the DP sums are order-sensitive in their last bits,
        # and the engine memo must reproduce the unmemoized result exactly.
        if node_probabilities is None:
            analysis = SFPAnalysis(
                application, architecture, mapping, profile,
                decimals=self.decimals, engine=engine, kernel=self.kernel,
            )
            probabilities: Dict[str, Tuple[float, ...]] = {
                node.name: tuple(analysis.node_failure_probabilities(node))
                for node in architecture
            }
        else:
            probabilities = node_probabilities

        kernel = self.kernel
        decimals = self.decimals
        cap = self.max_reexecutions_per_node
        # Batched neighbourhood evaluation is an engine feature: the engine
        # partitions each block against its memo and hands the residual cold
        # rows to the kernel's vectorized pass.  Gated on the kernel's
        # ``supports_batch`` so scalar-kernel runs keep the scalar call
        # sequence; both paths are bit-identical with identical counters.
        batched = engine is not None and engine.kernel.supports_batch

        # Per-node state lives in lists aligned with ``node_names``: the
        # candidate tuples below are substitute-snapshot-restore over one
        # flat list, which keeps the hottest expression of the optimizer
        # free of per-element dictionary lookups.
        prob_list = [probabilities[name] for name in node_names]
        count = len(node_names)

        def union_failure(values: Tuple[float, ...]) -> float:
            if engine is not None:
                return engine.system_failure(values, decimals)
            return kernel.system_failure(values, decimals)

        budget_list = [0] * count
        if batched and engine is not None:
            ex_list = engine.batch_node_exceedance(
                [(block, 0) for block in prob_list], decimals
            )
        elif engine is not None:
            ex_list = [
                engine.node_exceedance(block, 0, decimals) for block in prob_list
            ]
        else:
            ex_list = [
                kernel.probability_exceeds(block, 0, decimals)
                for block in prob_list
            ]

        goal = application.reliability_goal
        time_unit = application.time_unit
        period = application.period

        system = union_failure(tuple(ex_list))
        reliability = reliability_over_time_unit(system, time_unit, period)
        while reliability < goal:
            eligible = [
                i
                for i in range(count)
                if budget_list[i] < cap
                # Nodes without mapped processes: re-executions cannot help.
                and prob_list[i]
            ]
            if batched and engine is not None and eligible:
                # The whole iteration's candidate block in one engine call:
                # same keys in the same order as the scalar loop below, so
                # cache counters and values are identical.
                candidate_list: Optional[List[float]] = (
                    engine.batch_node_exceedance(
                        [(prob_list[i], budget_list[i] + 1) for i in eligible],
                        decimals,
                    )
                )
            else:
                candidate_list = None
            best_index = -1
            best_system = system
            best_exceedance = 0.0
            for slot, i in enumerate(eligible):
                if candidate_list is not None:
                    candidate_exceedance = candidate_list[slot]
                elif engine is not None:
                    candidate_exceedance = engine.node_exceedance(
                        prob_list[i], budget_list[i] + 1, decimals
                    )
                else:
                    candidate_exceedance = kernel.probability_exceeds(
                        prob_list[i], budget_list[i] + 1, decimals
                    )
                previous = ex_list[i]
                ex_list[i] = candidate_exceedance
                candidate_values = tuple(ex_list)
                ex_list[i] = previous
                candidate_system = union_failure(candidate_values)
                if candidate_system < best_system:
                    # Only a strict improvement is accepted, so stagnation
                    # (no candidate lowers the rounded system failure) is
                    # detectable below.
                    best_index = i
                    best_system = candidate_system
                    best_exceedance = candidate_exceedance
            if best_index < 0:
                # No additional re-execution improves the (rounded) system
                # failure probability: the goal is unreachable in software.
                return None
            budget_list[best_index] += 1
            ex_list[best_index] = best_exceedance
            system = union_failure(tuple(ex_list))
            reliability = reliability_over_time_unit(system, time_unit, period)

        return ReExecutionDecision(
            reexecutions=dict(zip(node_names, budget_list)),
            system_failure_per_iteration=system,
            reliability_over_time_unit=reliability,
            meets_goal=True,
        )

    # ------------------------------------------------------------------
    def optimize_many(
        self,
        application: Application,
        rows: Sequence[Tuple[Architecture, Dict[str, Tuple[float, ...]]]],
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> List[Optional[ReExecutionDecision]]:
        """Greedy assignment for a block of sibling problems, in lockstep.

        ``rows`` pairs each candidate architecture with its per-node failure
        probability tuples (as :meth:`optimize` would derive them).  With a
        batching engine the trials advance together: every lockstep round
        gathers one greedy iteration's candidate queries from *all* still
        active trials into a single :meth:`~repro.engine.engine.
        EvaluationEngine.batch_node_exceedance` call, which is what makes
        neighbourhood blocks wide enough for the vectorized kernel pass.

        Each trial's greedy decisions depend only on its own values, and its
        own query sequence is exactly the scalar one — interleaving trials
        only regroups the multiset of memo queries, so per-trial results are
        bit-identical to sequential :meth:`optimize` calls and the cache
        counter totals are unchanged.
        """
        engine = self.engine
        if engine is None or not engine.kernel.supports_batch or len(rows) <= 1:
            return [
                self.optimize(
                    application,
                    architecture,
                    mapping,
                    profile,
                    node_probabilities=probabilities,
                )
                for architecture, probabilities in rows
            ]

        goal = application.reliability_goal
        time_unit = application.time_unit
        period = application.period
        decimals = self.decimals
        cap = self.max_reexecutions_per_node
        results: List[Optional[ReExecutionDecision]] = [None] * len(rows)

        # Initial (budget 0) exceedance of every trial in one block.
        names_per_row = [
            [node.name for node in architecture] for architecture, _ in rows
        ]
        probs_per_row = [
            [probabilities[name] for name in node_names]
            for (_, probabilities), node_names in zip(rows, names_per_row)
        ]
        requests = [
            (block, 0) for prob_list in probs_per_row for block in prob_list
        ]
        initial = engine.batch_node_exceedance(requests, decimals)

        active: List[_LockstepTrial] = []
        position = 0
        for index, node_names in enumerate(names_per_row):
            count = len(node_names)
            ex_list = initial[position : position + count]
            position += count
            system = engine.system_failure(tuple(ex_list), decimals)
            reliability = reliability_over_time_unit(system, time_unit, period)
            if reliability >= goal:
                results[index] = ReExecutionDecision(
                    reexecutions=dict.fromkeys(node_names, 0),
                    system_failure_per_iteration=system,
                    reliability_over_time_unit=reliability,
                    meets_goal=True,
                )
            else:
                active.append(
                    _LockstepTrial(
                        index=index,
                        node_names=node_names,
                        probabilities=probs_per_row[index],
                        budgets=[0] * count,
                        exceedance=ex_list,
                        system=system,
                    )
                )

        while active:
            # One greedy iteration per active trial; all candidate queries of
            # the round go through a single partitioned batch.
            eligible_per_trial: List[List[int]] = []
            batch_requests: List[Tuple[Tuple[float, ...], int]] = []
            for trial in active:
                budgets = trial.budgets
                prob_list = trial.probabilities
                eligible = [
                    i
                    for i in range(len(prob_list))
                    if budgets[i] < cap and prob_list[i]
                ]
                eligible_per_trial.append(eligible)
                batch_requests.extend(
                    (prob_list[i], budgets[i] + 1) for i in eligible
                )
            values = (
                engine.batch_node_exceedance(batch_requests, decimals)
                if batch_requests
                else []
            )
            position = 0
            survivors: List[_LockstepTrial] = []
            for trial, eligible in zip(active, eligible_per_trial):
                ex_list = trial.exceedance
                best_index = -1
                best_system = trial.system
                best_exceedance = 0.0
                for i in eligible:
                    candidate_exceedance = values[position]
                    position += 1
                    previous = ex_list[i]
                    ex_list[i] = candidate_exceedance
                    candidate_values = tuple(ex_list)
                    ex_list[i] = previous
                    candidate_system = engine.system_failure(
                        candidate_values, decimals
                    )
                    if candidate_system < best_system:
                        best_index = i
                        best_system = candidate_system
                        best_exceedance = candidate_exceedance
                if best_index < 0:
                    # Stagnation: the goal is unreachable in software for this
                    # trial — its slot stays None, exactly like optimize().
                    continue
                trial.budgets[best_index] += 1
                ex_list[best_index] = best_exceedance
                system = engine.system_failure(tuple(ex_list), decimals)
                reliability = reliability_over_time_unit(system, time_unit, period)
                trial.system = system
                if reliability >= goal:
                    results[trial.index] = ReExecutionDecision(
                        reexecutions=dict(zip(trial.node_names, trial.budgets)),
                        system_failure_per_iteration=system,
                        reliability_over_time_unit=reliability,
                        meets_goal=True,
                    )
                else:
                    survivors.append(trial)
            active = survivors
        return results

    # ------------------------------------------------------------------
    def evaluate(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        reexecutions: Dict[str, int],
    ) -> ReExecutionDecision:
        """Evaluate a user-supplied assignment without optimizing it."""
        analysis = SFPAnalysis(
            application, architecture, mapping, profile, decimals=self.decimals,
            engine=self.engine, kernel=self.kernel,
        )
        report = analysis.evaluate(reexecutions)
        return ReExecutionDecision(
            reexecutions=dict(report.reexecutions),
            system_failure_per_iteration=report.system_failure_per_iteration,
            reliability_over_time_unit=report.reliability_over_time_unit,
            meets_goal=report.meets_goal,
        )
