"""ReExecutionOpt — greedy assignment of software re-executions (Section 6.3).

Given an architecture with fixed hardening levels and a mapping, the heuristic
finds the smallest numbers of re-executions ``k_j`` per node such that the
system reliability goal ``rho`` is met, using the SFP analysis of Appendix A.

The paper: "It starts without any re-executions in software and increases the
number of re-executions in a greedy fashion ... the exploration of the number
of re-executions is guided towards the largest increase in the system
reliability."  At each step, the node whose additional re-execution lowers the
system failure probability the most receives one more re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import EvaluationEngine

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.sfp import KernelSpec, SFPAnalysis, reliability_over_time_unit
from repro.kernels.registry import resolve_kernel
from repro.utils.rounding import DEFAULT_DECIMALS


@dataclass(frozen=True)
class ReExecutionDecision:
    """Result of the re-execution optimization."""

    reexecutions: Dict[str, int]
    system_failure_per_iteration: float
    reliability_over_time_unit: float
    meets_goal: bool

    @property
    def total_reexecutions(self) -> int:
        return sum(self.reexecutions.values())


class ReExecutionOpt:
    """Greedy re-execution assignment driven by the SFP analysis.

    Parameters
    ----------
    max_reexecutions_per_node:
        Safety cap on ``k_j``; if the goal is not reached within the cap on
        every node the heuristic reports failure (``None``), which the caller
        interprets as "this hardening level cannot satisfy the reliability
        goal with software redundancy alone".
    decimals:
        Rounding accuracy forwarded to the SFP analysis.
    engine:
        Optional :class:`~repro.engine.engine.EvaluationEngine` serving the
        per-node exceedance and system-failure memo tables.  The greedy loop
        re-queries the same (node, budget) exceedances on every iteration, so
        memoization removes most of the Decimal-chain recomputation.  Results
        are bit-identical with and without an engine.
    kernel:
        SFP kernel backend for the unmemoized path (an engine brings its
        own); a speed knob only, every backend is bit-identical.
    """

    def __init__(
        self,
        max_reexecutions_per_node: int = 20,
        decimals: int = DEFAULT_DECIMALS,
        engine: Optional["EvaluationEngine"] = None,
        kernel: KernelSpec = None,
    ) -> None:
        if max_reexecutions_per_node < 0:
            raise ValueError(
                "max_reexecutions_per_node must be >= 0, got "
                f"{max_reexecutions_per_node}"
            )
        self.max_reexecutions_per_node = max_reexecutions_per_node
        self.decimals = decimals
        self.engine = engine
        self.kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------
    def optimize(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
    ) -> Optional[ReExecutionDecision]:
        """Return the cheapest re-execution assignment meeting ``rho``.

        Returns ``None`` when the goal cannot be met within the per-node cap
        (typically because the hardening level is too low for the error rate).
        """
        engine = self.engine
        analysis = SFPAnalysis(
            application, architecture, mapping, profile, decimals=self.decimals,
            engine=engine, kernel=self.kernel,
        )
        node_names = [node.name for node in architecture]
        # Ordered tuples: the DP sums are order-sensitive in their last bits,
        # and the engine memo must reproduce the unmemoized result exactly.
        probabilities: Dict[str, Tuple[float, ...]] = {
            node.name: tuple(analysis.node_failure_probabilities(node))
            for node in architecture
        }

        kernel = self.kernel

        def node_exceedance(name: str, budget: int) -> float:
            if engine is not None:
                return engine.node_exceedance(probabilities[name], budget, self.decimals)
            return kernel.probability_exceeds(probabilities[name], budget, self.decimals)

        def union_failure(values: Tuple[float, ...]) -> float:
            if engine is not None:
                return engine.system_failure(values, self.decimals)
            return kernel.system_failure(values, self.decimals)

        budgets: Dict[str, int] = {name: 0 for name in node_names}
        exceedance: Dict[str, float] = {
            name: node_exceedance(name, 0) for name in node_names
        }

        goal = application.reliability_goal
        time_unit = application.time_unit
        period = application.period

        def current_reliability() -> tuple[float, float]:
            system = union_failure(tuple(exceedance.values()))
            return system, reliability_over_time_unit(system, time_unit, period)

        system, reliability = current_reliability()
        while reliability < goal:
            best_node: Optional[str] = None
            best_system = system
            best_exceedance = 0.0
            for name in node_names:
                if budgets[name] >= self.max_reexecutions_per_node:
                    continue
                if not probabilities[name]:
                    # No process mapped on the node: re-executions cannot help.
                    continue
                candidate_exceedance = node_exceedance(name, budgets[name] + 1)
                candidate_values = tuple(
                    candidate_exceedance if other == name else exceedance[other]
                    for other in node_names
                )
                candidate_system = union_failure(candidate_values)
                if candidate_system < best_system or (
                    best_node is None and candidate_system <= best_system
                ):
                    # Strictly better, or a tie recorded only if nothing has
                    # been selected yet (so we can still detect stagnation).
                    if candidate_system < best_system:
                        best_node = name
                        best_system = candidate_system
                        best_exceedance = candidate_exceedance
            if best_node is None:
                # No additional re-execution improves the (rounded) system
                # failure probability: the goal is unreachable in software.
                return None
            budgets[best_node] += 1
            exceedance[best_node] = best_exceedance
            system, reliability = current_reliability()

        return ReExecutionDecision(
            reexecutions=dict(budgets),
            system_failure_per_iteration=system,
            reliability_over_time_unit=reliability,
            meets_goal=True,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        reexecutions: Dict[str, int],
    ) -> ReExecutionDecision:
        """Evaluate a user-supplied assignment without optimizing it."""
        analysis = SFPAnalysis(
            application, architecture, mapping, profile, decimals=self.decimals,
            engine=self.engine, kernel=self.kernel,
        )
        report = analysis.evaluate(reexecutions)
        return ReExecutionDecision(
            reexecutions=dict(report.reexecutions),
            system_failure_per_iteration=report.system_failure_per_iteration,
            reliability_over_time_unit=report.reliability_over_time_unit,
            meets_goal=report.meets_goal,
        )
