"""System Failure Probability (SFP) analysis — Appendix A of the paper.

The SFP analysis connects the hardening level of each computation node (which
determines the per-process failure probabilities ``p_ijh``) with the number of
re-executions ``k_j`` that must be provided in software on that node, such
that the whole system meets its reliability goal ``rho = 1 - gamma`` over a
time unit ``tau`` (one hour in the paper).

The chain of formulae (numbers refer to the paper):

(1) ``Pr(0; Nj^h) = prod_{Pi on Nj^h} (1 - p_ijh)``
    — probability that one application iteration executes on node ``Nj^h``
    without any process failing.

(2)/(3) ``Pr(f; Nj^h) = Pr(0; Nj^h) * sum_{f-fault scenarios} prod p``
    — probability that exactly ``f`` faults occur (as a combination *with
    repetitions* over the processes mapped on the node, because the same
    process may fail several times) and that all re-executions eventually
    succeed.  The inner sum is the complete homogeneous symmetric polynomial
    ``h_f`` of the failure probabilities; we evaluate it with an exact dynamic
    program instead of enumerating multisets (an enumerating reference
    implementation is kept for the test-suite).

(4) ``Pr(f > kj; Nj^h) = 1 - Pr(0; Nj^h) - sum_{f=1..kj} Pr(f; Nj^h)``
    — probability that more faults occur on the node than its re-execution
    budget can tolerate.

(5) ``Pr(U_j (f > kj)) = 1 - prod_j (1 - Pr(f > kj; Nj^h))``
    — probability that at least one node exceeds its budget in one iteration.

(6) ``(1 - Pr(U_j (f > kj)))^(tau / T) >= rho``
    — the reliability goal over the time unit.

All intermediate *success* probabilities are rounded **down** and all
*failure* probabilities are rounded **up** at a configurable accuracy
(1e-11 in the paper) so the analysis stays pessimistic; see
:mod:`repro.utils.rounding`.

The three hot primitives — formulae (1), (4) and (5) — are served by a
pluggable *kernel backend* (:mod:`repro.kernels`): the module-level functions
below delegate to the active backend (``--sfp-kernel`` /
``REPRO_SFP_KERNEL`` / fastest available), every backend being bit-identical
to the pure-Python reference by contract.  The combinatorial helpers
(:func:`complete_homogeneous_sum`, :func:`enumerate_fault_scenarios`,
:func:`probability_exactly`) stay here as the test-suite's independent
specification of the DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from math import prod
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports sfp)
    from repro.engine.engine import EvaluationEngine

from repro.core.application import Application
from repro.core.architecture import Architecture, Node
from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.kernels.base import SFPKernel
from repro.kernels.registry import resolve_kernel
from repro.utils.rounding import DEFAULT_DECIMALS, floor_probability
from repro.utils.validation import require_in_unit_interval, require_positive

#: Accepted by every ``kernel`` parameter: a backend instance, a registered
#: backend name, or ``None`` for the process-wide active backend.
KernelSpec = Union[SFPKernel, str, None]


# ----------------------------------------------------------------------
# Stateless building blocks operating on plain probability lists
# ----------------------------------------------------------------------
def probability_no_fault(
    failure_probabilities: Sequence[float],
    decimals: int = DEFAULT_DECIMALS,
    kernel: KernelSpec = None,
) -> float:
    """Formula (1): probability that none of the processes fails.

    An empty probability list (no process mapped on the node) trivially gives
    probability 1.
    """
    return resolve_kernel(kernel).probability_no_fault(
        failure_probabilities, decimals
    )


def complete_homogeneous_sum(
    failure_probabilities: Sequence[float], faults: int
) -> float:
    """Sum over all multisets of size ``faults`` of products of probabilities.

    This is the inner sum of formula (3), i.e. the complete homogeneous
    symmetric polynomial ``h_f(p_1, ..., p_m)``.  Evaluated with the standard
    dynamic program: ``h_f`` over the first ``i`` variables equals
    ``sum_j p_i^j * h_{f-j}`` over the first ``i-1`` variables.
    """
    if faults < 0:
        raise ModelError(f"Number of faults must be >= 0, got {faults}")
    if faults == 0:
        return 1.0
    if not failure_probabilities:
        return 0.0
    # table[f] holds h_f over the variables processed so far.
    table = [0.0] * (faults + 1)
    table[0] = 1.0
    for probability in failure_probabilities:
        for f in range(1, faults + 1):
            # h_f(new) = h_f(old) + p * h_{f-1}(new): classic recurrence for
            # complete homogeneous polynomials, processed in increasing f so
            # that repetitions of the current variable are included.
            table[f] = table[f] + probability * table[f - 1]
    return table[faults]


def enumerate_fault_scenarios(
    failure_probabilities: Sequence[float], faults: int
) -> List[float]:
    """Reference implementation of the multiset sum of formula (2)/(3).

    Returns the individual products, one per ``f``-fault scenario (combination
    with repetitions of the faulty processes).  Exponential in ``faults`` —
    only used by the test-suite to validate
    :func:`complete_homogeneous_sum`.
    """
    if faults == 0:
        return [1.0]
    indices = range(len(failure_probabilities))
    scenarios: List[float] = []
    for combo in combinations_with_replacement(indices, faults):
        scenarios.append(prod(failure_probabilities[i] for i in combo))
    return scenarios


def probability_exactly(
    failure_probabilities: Sequence[float],
    faults: int,
    decimals: int = DEFAULT_DECIMALS,
) -> float:
    """Formula (3): probability of recovering from exactly ``faults`` faults."""
    if faults == 0:
        return probability_no_fault(failure_probabilities, decimals)
    no_fault = probability_no_fault(failure_probabilities, decimals)
    raw = no_fault * complete_homogeneous_sum(failure_probabilities, faults)
    return floor_probability(raw, decimals)


def probability_exceeds(
    failure_probabilities: Sequence[float],
    reexecutions: int,
    decimals: int = DEFAULT_DECIMALS,
    kernel: KernelSpec = None,
) -> float:
    """Formula (4): probability that more than ``reexecutions`` faults occur.

    ``reexecutions`` is the per-node budget ``k_j``; the node fails when the
    number of faults in one iteration exceeds it.

    All of ``h_1 .. h_k`` are read off one dynamic-programming table built in
    a single pass over the probabilities (O(k·m) instead of the O(k²·m) of
    rebuilding the table per fault count).  The truncated table prefix after
    processing every variable is identical — operation for operation — to the
    table :func:`complete_homogeneous_sum` builds for each smaller fault
    count, so the per-term floating point results (and therefore the rounded
    output) are bit-identical to summing :func:`probability_exactly` values.

    The subtraction ``1 - Pr(0) - sum Pr(f)`` is carried out in exact decimal
    (or exact integer-quanta) arithmetic: the operands are already rounded to
    ``decimals`` digits, so the result matches the paper's hand computation
    (Appendix A.2) instead of picking up binary floating point noise.  The
    computation itself runs on the selected kernel backend
    (:mod:`repro.kernels`); all backends are bit-identical.
    """
    return resolve_kernel(kernel).probability_exceeds(
        failure_probabilities, reexecutions, decimals
    )


def system_failure_probability(
    per_node_exceedance: Sequence[float],
    decimals: int = DEFAULT_DECIMALS,
    kernel: KernelSpec = None,
) -> float:
    """Formula (5): probability that at least one node exceeds its budget.

    Evaluated in decimal arithmetic on the (already rounded) per-node
    exceedance probabilities so the union matches the paper's worked example
    digit for digit.
    """
    return resolve_kernel(kernel).system_failure(per_node_exceedance, decimals)


def reliability_over_time_unit(
    per_iteration_failure: float,
    time_unit: float,
    period: float,
) -> float:
    """Left-hand side of formula (6): survival probability over ``tau``."""
    require_in_unit_interval(per_iteration_failure, "per_iteration_failure")
    require_positive(time_unit, "time_unit")
    require_positive(period, "period")
    iterations = time_unit / period
    return (1.0 - per_iteration_failure) ** iterations


def meets_reliability_goal(
    per_iteration_failure: float,
    reliability_goal: float,
    time_unit: float,
    period: float,
) -> bool:
    """Formula (6): does the system satisfy ``rho`` over the time unit?"""
    require_in_unit_interval(reliability_goal, "reliability_goal")
    achieved = reliability_over_time_unit(per_iteration_failure, time_unit, period)
    return achieved >= reliability_goal


# ----------------------------------------------------------------------
# Analysis bound to an application / architecture / mapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SFPReport:
    """Outcome of one SFP evaluation for a concrete redundancy assignment."""

    per_node_failure: Dict[str, float]
    system_failure_per_iteration: float
    reliability_over_time_unit: float
    reliability_goal: float
    meets_goal: bool
    reexecutions: Dict[str, int]

    def margin(self) -> float:
        """How far above (positive) or below (negative) the goal we are."""
        return self.reliability_over_time_unit - self.reliability_goal


class SFPAnalysis:
    """SFP analysis bound to an application, architecture, mapping and profile.

    The object is cheap to construct; every query recomputes from the current
    hardening levels of the architecture nodes, so the optimization heuristics
    can mutate hardening in place and re-query.

    When an :class:`~repro.engine.engine.EvaluationEngine` is supplied, the
    per-node exceedance and the system-failure union are served from its memo
    tables (keyed by the ordered failure-probability tuples, which canonically
    encode node type, hardening level and mapped process multiset) — changing
    one node's hardening or moving one process recomputes only the affected
    node(s).

    ``kernel`` selects the SFP kernel backend for the unmemoized path (an
    engine brings its own backend); backends are bit-identical, so this is a
    speed knob, never a semantics knob.
    """

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        decimals: int = DEFAULT_DECIMALS,
        engine: Optional["EvaluationEngine"] = None,
        kernel: KernelSpec = None,
    ) -> None:
        self.application = application
        self.architecture = architecture
        self.mapping = mapping
        self.profile = profile
        self.decimals = decimals
        self.engine = engine
        self.kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------
    def node_failure_probabilities(self, node: Node) -> List[float]:
        """Failure probabilities of all processes mapped on ``node``."""
        return [
            self.profile.failure_probability(process, node.node_type.name, node.hardening)
            for process in self.mapping.processes_on(node.name)
        ]

    def probability_no_fault(self, node: Node) -> float:
        """Formula (1) for one node at its current hardening level."""
        return self.kernel.probability_no_fault(
            self.node_failure_probabilities(node), self.decimals
        )

    def probability_exactly(self, node: Node, faults: int) -> float:
        """Formula (3) for one node at its current hardening level."""
        return probability_exactly(
            self.node_failure_probabilities(node), faults, self.decimals
        )

    def node_exceedance(self, node: Node, reexecutions: int) -> float:
        """Formula (4): probability node ``Nj`` sees more than ``k_j`` faults."""
        probabilities = self.node_failure_probabilities(node)
        if self.engine is not None:
            return self.engine.node_exceedance(
                tuple(probabilities), reexecutions, self.decimals
            )
        return self.kernel.probability_exceeds(
            probabilities, reexecutions, self.decimals
        )

    def system_failure_per_iteration(self, reexecutions: Mapping[str, int]) -> float:
        """Formula (5) for the whole architecture."""
        exceedances = [
            self.node_exceedance(node, self._budget_of(node, reexecutions))
            for node in self.architecture
        ]
        if self.engine is not None:
            return self.engine.system_failure(tuple(exceedances), self.decimals)
        return self.kernel.system_failure(exceedances, self.decimals)

    def evaluate(self, reexecutions: Mapping[str, int]) -> SFPReport:
        """Full evaluation of formulae (1)-(6) for a redundancy assignment."""
        per_node = {
            node.name: self.node_exceedance(node, self._budget_of(node, reexecutions))
            for node in self.architecture
        }
        if self.engine is not None:
            system_per_iteration = self.engine.system_failure(
                tuple(per_node.values()), self.decimals
            )
        else:
            system_per_iteration = self.kernel.system_failure(
                list(per_node.values()), self.decimals
            )
        reliability = reliability_over_time_unit(
            system_per_iteration,
            self.application.time_unit,
            self.application.period,
        )
        return SFPReport(
            per_node_failure=per_node,
            system_failure_per_iteration=system_per_iteration,
            reliability_over_time_unit=reliability,
            reliability_goal=self.application.reliability_goal,
            meets_goal=reliability >= self.application.reliability_goal,
            reexecutions={
                node.name: self._budget_of(node, reexecutions)
                for node in self.architecture
            },
        )

    def meets_goal(self, reexecutions: Mapping[str, int]) -> bool:
        """Does the assignment of re-executions satisfy the reliability goal?"""
        return self.evaluate(reexecutions).meets_goal

    # ------------------------------------------------------------------
    @staticmethod
    def _budget_of(node: Node, reexecutions: Mapping[str, int]) -> int:
        budget = reexecutions.get(node.name, 0)
        if budget < 0:
            raise ModelError(
                f"Negative re-execution budget {budget} for node {node.name}"
            )
        return budget
