"""Memoized incremental evaluation engine for design-space exploration.

See :mod:`repro.engine.engine` for the architecture overview and
``PERFORMANCE.md`` at the repository root for the caching/invalidation model.
"""

from __future__ import annotations

from repro.engine.cache import CacheStats, MemoCache, MISS
from repro.engine.engine import EvaluationEngine
from repro.engine.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    context_fingerprint,
    hardening_fingerprint,
    mapping_fingerprint,
    profile_fingerprint,
    stable_context_fingerprint,
)
from repro.engine.store import (
    DEFAULT_MAX_BYTES,
    DesignPointStore,
    STORE_SCHEMA_VERSION,
    StoreStats,
    code_version_salt,
)

__all__ = [
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "DesignPointStore",
    "EvaluationEngine",
    "MemoCache",
    "MISS",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "application_fingerprint",
    "architecture_fingerprint",
    "code_version_salt",
    "context_fingerprint",
    "hardening_fingerprint",
    "mapping_fingerprint",
    "profile_fingerprint",
    "stable_context_fingerprint",
]
