"""Memoized incremental evaluation engine for design-space exploration.

See :mod:`repro.engine.engine` for the architecture overview and
``PERFORMANCE.md`` at the repository root for the caching/invalidation model.
"""

from repro.engine.cache import CacheStats, MemoCache, MISS
from repro.engine.engine import EvaluationEngine
from repro.engine.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    context_fingerprint,
    hardening_fingerprint,
    mapping_fingerprint,
    profile_fingerprint,
)

__all__ = [
    "CacheStats",
    "EvaluationEngine",
    "MemoCache",
    "MISS",
    "application_fingerprint",
    "architecture_fingerprint",
    "context_fingerprint",
    "hardening_fingerprint",
    "mapping_fingerprint",
    "profile_fingerprint",
]
