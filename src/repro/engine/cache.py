"""Hit/miss-counting caches used by the evaluation engine.

A :class:`MemoCache` is a plain dictionary plus hit/miss counters; the
counters are what the experiment harness and the CLI surface as the cache
hit rate.  ``None`` is a legitimate cached value (e.g. "this mapping admits
no feasible redundancy decision"), so lookups use a private sentinel instead
of ``None`` to signal a miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS = object()


@dataclass
class BatchStats:
    """Counters of batched cache partitions (neighbourhood evaluation).

    ``rows`` counts the rows handed to batched lookups, ``cold_rows`` the
    residual rows that fell through every memo table and reached a kernel.
    ``fill_rate`` is the cold fraction — how full the blocks handed to the
    batch kernels actually were (1.0 = every row computed, 0.0 = all served
    from cache).
    """

    calls: int = 0
    rows: int = 0
    cold_rows: int = 0

    @property
    def fill_rate(self) -> float:
        if not self.rows:
            return 0.0
        return self.cold_rows / self.rows

    def record(self, rows: int, cold_rows: int) -> None:
        self.calls += 1
        self.rows += rows
        self.cold_rows += cold_rows

    def __add__(self, other: "BatchStats") -> "BatchStats":
        return BatchStats(
            calls=self.calls + other.calls,
            rows=self.rows + other.rows,
            cold_rows=self.cold_rows + other.cold_rows,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "rows": self.rows,
            "cold_rows": self.cold_rows,
            "fill_rate": self.fill_rate,
        }


@dataclass
class CacheStats:
    """Aggregated cache counters surfaced to results and the CLI."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits + other.hits, misses=self.misses + other.misses)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class MemoCache:
    """Dictionary-backed memo table with hit/miss accounting.

    Entries may be *preloaded* from the persistent design-point store
    (:mod:`repro.engine.store`); hits on preloaded keys are additionally
    counted as ``disk_hits`` so the CLI can report how much work a warm
    start actually saved.
    """

    __slots__ = ("name", "_store", "hits", "misses", "_preloaded", "disk_hits")

    def __init__(self, name: str) -> None:
        self.name = name
        self._store: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self._preloaded: set[Hashable] = set()
        self.disk_hits = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Any:
        """Return the cached value or :data:`MISS`; updates the counters."""
        value = self._store.get(key, MISS)
        if value is MISS:
            self.misses += 1
        else:
            self.hits += 1
            if self._preloaded and key in self._preloaded:
                self.disk_hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        self._store[key] = value
        return value

    def memoize(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self.get(key)
        if value is MISS:
            value = self.put(key, compute())
        return value

    def get_many(
        self, keys: Sequence[Hashable]
    ) -> Tuple[List[Any], List[int], Dict[int, int]]:
        """Partition a batch of keys into cached values and cold positions.

        Returns ``(values, cold, duplicates)``: ``values[i]`` is the cached
        value or :data:`MISS`; ``cold`` lists the positions whose keys must
        be computed — **deduplicated**, only the first occurrence of an
        uncached key is cold; ``duplicates`` maps each later occurrence of a
        cold key to its first position.  Duplicate occurrences are counted as
        hits, exactly as the scalar loop (which computes and stores before
        the next lookup) would count them.  The caller computes the cold
        rows, stores them with :meth:`put`, and back-fills duplicates from
        the first occurrence (see ``EvaluationEngine.batch_node_exceedance``).
        """
        values: List[Any] = []
        cold: List[int] = []
        duplicates: Dict[int, int] = {}
        pending: Dict[Hashable, int] = {}
        store = self._store
        preloaded = self._preloaded
        for position, key in enumerate(keys):
            value = store.get(key, MISS)
            if value is not MISS:
                self.hits += 1
                if preloaded and key in preloaded:
                    self.disk_hits += 1
                values.append(value)
                continue
            first = pending.get(key)
            if first is None:
                self.misses += 1
                pending[key] = position
                cold.append(position)
            else:
                # The scalar sequence would have computed and stored the
                # first occurrence already, so this lookup is a hit.
                self.hits += 1
                duplicates[position] = first
            values.append(MISS)
        return values, cold, duplicates

    # ------------------------------------------------------------------
    # persistent-store integration
    # ------------------------------------------------------------------
    def load(self, entries: Dict[Hashable, Any]) -> int:
        """Preload entries (e.g. from disk) without touching hit counters.

        Already-present keys are kept (the in-memory value is at least as
        fresh); newly inserted keys are marked preloaded for
        ``disk_hits`` accounting.  Returns the number of entries inserted.
        """
        inserted = 0
        store = self._store
        preloaded = self._preloaded
        for key, value in entries.items():
            if key not in store:
                store[key] = value
                preloaded.add(key)
                inserted += 1
        return inserted

    def snapshot(self) -> Dict[Hashable, Any]:
        """A shallow copy of the current entries (for persisting)."""
        return dict(self._store)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop all entries (counters are kept — they describe history)."""
        self._store.clear()
        self._preloaded.clear()

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoCache(name={self.name!r}, entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
