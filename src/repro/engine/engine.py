"""Memoized incremental evaluation engine for the DSE hot path.

One :class:`EvaluationEngine` is bound to a single ``(application, profile)``
context — the quantities that stay fixed while the design-space exploration
stack (:class:`~repro.core.design_strategy.DesignStrategy` →
:class:`~repro.core.mapping.MappingAlgorithm` →
:class:`~repro.core.redundancy.RedundancyOpt` → SFP /
:class:`~repro.scheduling.list_scheduler.ListScheduler`) varies architecture,
mapping and hardening.  The engine owns four memo tables:

``decisions``
    Full :class:`~repro.core.redundancy.RedundancyDecision` per design point,
    keyed by (evaluator signature, architecture, mapping, hardening vector).
    Hits skip the re-execution optimization *and* the list scheduler.
``optimizations``
    Outcome of a whole redundancy-optimizer run (Phase 1 + Phase 2, or a
    fixed-hardening baseline) per (optimizer signature, architecture,
    mapping).  Hits make revisited tabu-search moves free.
``exceedance`` / ``no_fault``
    Per-node SFP quantities keyed by the ordered tuple of per-process failure
    probabilities (which canonically encodes node type × hardening level ×
    mapped process multiset) plus the re-execution budget ``k``.  Changing one
    node's hardening or moving one process only invalidates — by key
    construction — the affected node(s).
``system``
    Formula (5) unions keyed by the ordered per-node exceedance tuple.

All memoized computations are deterministic pure functions of their keys, so
a warm engine returns bit-identical results to a cold one; this is asserted
by the equivalence test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.core.application import Application
from repro.core.profile import ExecutionProfile
from repro.engine.cache import MISS, BatchStats, CacheStats, MemoCache
from repro.engine.fingerprint import (
    context_fingerprint,
    stable_context_fingerprint,
)
from repro.kernels.base import SFPKernel
from repro.kernels.registry import active_sched_kernel, resolve_kernel
from repro.utils.rounding import DEFAULT_DECIMALS


class EvaluationEngine:
    """Memoization context for one (application, profile) exploration.

    The engine is intentionally dumb about *what* it caches: the redundancy
    and mapping layers build the keys (see :mod:`repro.engine.fingerprint`)
    and decide what to store.  The engine guarantees bookkeeping (hit/miss
    counters, evaluation counts) and context safety via :meth:`matches` —
    a consumer handed an engine for a different application/profile must
    bypass it.
    """

    def __init__(
        self,
        application: Application,
        profile: ExecutionProfile,
        decimals: int = DEFAULT_DECIMALS,
        kernel: Union[SFPKernel, str, None] = None,
    ) -> None:
        self.application = application
        self.profile = profile
        self.decimals = decimals
        #: SFP kernel backend computing cache misses.  Backends are
        #: bit-identical, so the kernel is *not* part of any memo key and
        #: cached entries stay valid across kernel switches.
        self.kernel = resolve_kernel(kernel)
        #: Lazily-computed context hashes (see :attr:`context` and
        #: :meth:`stable_context`) — ``None`` until first requested.
        self._context: Union[int, None] = None
        self._stable_context: Union[str, None] = None
        self.decisions = MemoCache("decisions")
        self.optimizations = MemoCache("optimizations")
        self.exceedance = MemoCache("exceedance")
        self.no_fault = MemoCache("no_fault")
        self.system = MemoCache("system_failure")
        #: Number of design points actually evaluated (decision-cache misses
        #: that ran the re-execution optimizer + scheduler).
        self.evaluations = 0
        #: Counters of batched neighbourhood partitions (rows handed to
        #: batched lookups vs. residual cold rows that reached a kernel).
        self.batch = BatchStats()

    # ------------------------------------------------------------------
    # context safety
    # ------------------------------------------------------------------
    @property
    def context(self) -> int:
        """Content hash of the bound context (diagnostics and reports).

        Computed on first access: the canonical encoding walks the whole
        application and profile, which is pure overhead on the DSE hot path
        (context safety uses identity, see :meth:`matches`).
        """
        if self._context is None:
            self._context = context_fingerprint(self.application, self.profile)
        return self._context

    def stable_context(self) -> str:
        """Cross-process content hash of the bound context, computed once.

        The application and profile are immutable for the engine's lifetime
        (the premise of every memo table), so the canonical encoding —
        which walks both structures in full — runs at most once per engine
        instead of once per store interaction (warm + persist + path).
        """
        if self._stable_context is None:
            self._stable_context = stable_context_fingerprint(
                self.application, self.profile
            )
        return self._stable_context

    def matches(self, application: Application, profile: ExecutionProfile) -> bool:
        """Is the engine bound to exactly this (application, profile) pair?

        Identity comparison keeps the check O(1) on the hot path; the content
        fingerprint exists for diagnostics and persisted artifacts.
        """
        return application is self.application and profile is self.profile

    # ------------------------------------------------------------------
    # incremental SFP layer
    # ------------------------------------------------------------------
    def node_no_fault(
        self, probabilities: Tuple[float, ...], decimals: int
    ) -> float:
        """Memoized formula (1) for one node's failure-probability tuple."""
        cache = self.no_fault
        key = (probabilities, decimals)
        value = cache.get(key)
        if value is MISS:
            value = cache.put(
                key, self.kernel.probability_no_fault(probabilities, decimals)
            )
        return value

    def node_exceedance(
        self, probabilities: Tuple[float, ...], reexecutions: int, decimals: int
    ) -> float:
        """Memoized formula (4) for one node.

        The probability tuple is kept in mapping order (not sorted): the DP
        accumulates floating-point sums whose last bits depend on the order,
        and bit-identical results with the unmemoized path are a hard
        requirement.
        """
        cache = self.exceedance
        key = (probabilities, reexecutions, decimals)
        value = cache.get(key)
        if value is MISS:
            value = cache.put(
                key,
                self.kernel.probability_exceeds(
                    probabilities, reexecutions, decimals
                ),
            )
        return value

    def system_failure(
        self, exceedances: Tuple[float, ...], decimals: int
    ) -> float:
        """Memoized formula (5) for an ordered per-node exceedance tuple."""
        cache = self.system
        key = (exceedances, decimals)
        value = cache.get(key)
        if value is MISS:
            value = cache.put(
                key, self.kernel.system_failure(exceedances, decimals)
            )
        return value

    # ------------------------------------------------------------------
    # batched SFP layer — whole neighbourhoods per call
    # ------------------------------------------------------------------
    def batch_node_exceedance(
        self,
        requests: Sequence[Tuple[Tuple[float, ...], int]],
        decimals: int,
    ) -> List[float]:
        """Memoized formula (4) for a block of (probabilities, budget) rows.

        The batch is partitioned against the exceedance memo: hits (memo or
        warm store) are served in place, the residual cold block goes to the
        kernel's :meth:`~repro.kernels.base.SFPKernel.batch_probability_exceeds`
        in one call (vectorized on ``supports_batch`` backends, the scalar
        fallback loop otherwise).  Results and cache counters are identical
        to issuing the rows as sequential :meth:`node_exceedance` calls —
        duplicate rows inside one batch count as hits on their first
        occurrence's computation, exactly like the scalar sequence.
        """
        keys = [
            (probabilities, budget, decimals)
            for probabilities, budget in requests
        ]
        values, cold, duplicates = self.exceedance.get_many(keys)
        if cold:
            blocks = [requests[position][0] for position in cold]
            budgets = [requests[position][1] for position in cold]
            computed = self.kernel.batch_probability_exceeds(
                blocks, budgets, decimals
            )
            for position, value in zip(cold, computed):
                values[position] = self.exceedance.put(keys[position], value)
            for position, first in duplicates.items():
                values[position] = values[first]
        self.batch.record(rows=len(keys), cold_rows=len(cold))
        return values

    def record_batch(self, rows: int, cold_rows: int) -> None:
        """Attribute one batched partition done by a consumer layer.

        The redundancy layer partitions whole *design-point* neighbourhoods
        against the decision memo before any kernel is involved; its batch
        sizes and fill rates land in the same counters as the kernel-level
        partitions of :meth:`batch_node_exceedance`.
        """
        self.batch.record(rows=rows, cold_rows=cold_rows)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def caches(self) -> Sequence[MemoCache]:
        return (
            self.decisions,
            self.optimizations,
            self.exceedance,
            self.no_fault,
            self.system,
        )

    @property
    def stats(self) -> CacheStats:
        """Aggregate hit/miss counters over all memo tables."""
        total = CacheStats()
        for cache in self.caches:
            total = total + cache.stats
        return total

    @property
    def disk_hits(self) -> int:
        """Hits served by entries preloaded from the persistent store."""
        return sum(cache.disk_hits for cache in self.caches)

    def stats_by_cache(self) -> Dict[str, Dict[str, float]]:
        return {cache.name: cache.stats.as_dict() for cache in self.caches}

    def report(self) -> Dict[str, object]:
        """JSON-friendly summary used by the CLI and benchmark artifacts.

        ``sched_kernel`` reports the process-wide scheduler-kernel selection
        that computed this engine's decision-cache misses.  Like ``kernel``
        it is informational only: backends are bit-identical, so the choice
        can never affect a cached value.
        """
        total = self.stats
        return {
            "context": self.context,
            "evaluations": self.evaluations,
            "hits": total.hits,
            "misses": total.misses,
            "hit_rate": total.hit_rate,
            "disk_hits": self.disk_hits,
            "kernel": self.kernel.name,
            "sched_kernel": active_sched_kernel().name,
            "batch": self.batch.as_dict(),
            "caches": self.stats_by_cache(),
        }

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        for cache in self.caches:
            cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        total = self.stats
        return (
            f"EvaluationEngine(application={self.application.name!r}, "
            f"hits={total.hits}, misses={total.misses}, "
            f"evaluations={self.evaluations})"
        )
