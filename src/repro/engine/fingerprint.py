"""Canonical fingerprints of design-point components.

The evaluation engine memoizes design-point evaluations; the cache keys must
be *canonical* — two logically identical inputs must map to the same key —
and cheap to compute, because a fingerprint is taken for every evaluated
design point on the DSE hot path.

Fingerprint contracts:

* A :class:`~repro.core.mapping_model.ProcessMapping` is identified by the
  sorted ``(process, node)`` pairs — insertion order is irrelevant.
* An :class:`~repro.core.architecture.Architecture` is identified by the
  sorted ``(node name, node type name)`` pairs.  The hardening *ladder* of a
  node type is part of the platform and therefore covered by the engine's
  context fingerprint, not repeated per design point.  The *current* hardening
  levels are deliberately excluded: the redundancy heuristics mutate levels
  while exploring, and the hardening vector is keyed separately.
* A hardening vector is identified by its sorted ``(node name, level)`` pairs.
* Application and execution profile are identified by a content hash computed
  once per engine (they are immutable for the duration of one exploration).
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile

MappingFingerprint = Tuple[Tuple[str, str], ...]
HardeningFingerprint = Tuple[Tuple[str, int], ...]
ArchitectureFingerprint = Tuple[Tuple[str, str], ...]


def mapping_fingerprint(mapping: ProcessMapping) -> MappingFingerprint:
    """Canonical fingerprint of a process-to-node mapping."""
    return tuple(sorted(mapping.items()))


def hardening_fingerprint(hardening: Mapping[str, int]) -> HardeningFingerprint:
    """Canonical fingerprint of a hardening vector."""
    return tuple(sorted(hardening.items()))


def architecture_fingerprint(architecture: Architecture) -> ArchitectureFingerprint:
    """Canonical fingerprint of an architecture's node set (levels excluded)."""
    return tuple(
        sorted((node.name, node.node_type.name) for node in architecture)
    )


def application_fingerprint(application: Application) -> int:
    """Content hash of the application's graphs and global parameters."""
    return hash(_canonical_application(application))


def profile_fingerprint(profile: ExecutionProfile) -> int:
    """Content hash of the execution profile tables."""
    entries = tuple(
        sorted(
            (key, entry.wcet, entry.failure_probability)
            for key, entry in profile.entries().items()
        )
    )
    return hash(entries)


def context_fingerprint(application: Application, profile: ExecutionProfile) -> int:
    """Combined content hash identifying one (application, profile) context."""
    return hash((application_fingerprint(application), profile_fingerprint(profile)))


def _canonical_application(application: Application) -> Tuple:
    """Canonical content tuple of an application (same data as the hash)."""
    graphs = []
    for graph in application.graphs:
        processes = tuple(sorted(graph.process_names))
        edges = tuple(
            sorted(
                (message.source, message.destination, message.transmission_time)
                for message in graph.messages
            )
        )
        graphs.append((graph.name, processes, edges))
    overheads = tuple(
        sorted(
            (name, application.recovery_overhead_of(name))
            for name in application.process_names()
        )
    )
    return (
        application.name,
        application.deadline,
        application.period,
        application.reliability_goal,
        application.time_unit,
        tuple(graphs),
        overheads,
    )


def stable_context_fingerprint(
    application: Application, profile: ExecutionProfile
) -> str:
    """Cross-process content hash of one (application, profile) context.

    :func:`context_fingerprint` goes through Python's builtin ``hash``, which
    is salted per interpreter run (``PYTHONHASHSEED``) — fine for in-memory
    memo keys, useless for anything persisted.  This variant hashes the same
    canonical content tuples through SHA-256 of their ``repr`` (floats repr
    round-trip exactly, so the digest is stable across runs and platforms)
    and is the key the persistent design-point store files are named by.
    """
    entries = tuple(
        sorted(
            (key, entry.wcet, entry.failure_probability)
            for key, entry in profile.entries().items()
        )
    )
    canonical = repr((_canonical_application(application), entries))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
