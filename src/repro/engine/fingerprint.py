"""Canonical fingerprints of design-point components.

The evaluation engine memoizes design-point evaluations; the cache keys must
be *canonical* — two logically identical inputs must map to the same key —
and cheap to compute, because a fingerprint is taken for every evaluated
design point on the DSE hot path.

Fingerprint contracts:

* A :class:`~repro.core.mapping_model.ProcessMapping` is identified by the
  sorted ``(process, node)`` pairs — insertion order is irrelevant.
* An :class:`~repro.core.architecture.Architecture` is identified by the
  sorted ``(node name, node type name)`` pairs.  The hardening *ladder* of a
  node type is part of the platform and therefore covered by the engine's
  context fingerprint, not repeated per design point.  The *current* hardening
  levels are deliberately excluded: the redundancy heuristics mutate levels
  while exploring, and the hardening vector is keyed separately.
* A hardening vector is identified by its sorted ``(node name, level)`` pairs.
* Application and execution profile are identified by a content hash computed
  once per engine (they are immutable for the duration of one exploration).
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Tuple

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile

MappingFingerprint = Tuple[Tuple[str, str], ...]
HardeningFingerprint = Tuple[Tuple[str, int], ...]
ArchitectureFingerprint = Tuple[Tuple[str, str], ...]


def _canonical_encode(value: object) -> bytes:
    """Type-tagged canonical byte encoding of fingerprint key material.

    The encoding is injective over the supported types (``None``, ``bool``,
    ``int``, ``float``, ``str``, ``bytes`` and nested tuples/lists thereof):
    every value gets a one-byte type tag and a self-delimiting payload, so no
    two distinct values share an encoding and no ``repr()`` formatting ever
    enters a cache key.  Floats encode via ``float.hex()``, which is exact
    and locale/platform independent.
    """
    if value is None:
        return b"N;"
    if isinstance(value, bool):  # before int: bool is an int subtype
        return b"B1;" if value else b"B0;"
    if isinstance(value, int):
        payload = str(value).encode("ascii")
        return b"I" + payload + b";"
    if isinstance(value, float):
        return b"F" + value.hex().encode("ascii") + b";"
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return b"S" + str(len(payload)).encode("ascii") + b":" + payload
    if isinstance(value, bytes):
        return b"Y" + str(len(value)).encode("ascii") + b":" + value
    if isinstance(value, (tuple, list)):
        items = b"".join(_canonical_encode(item) for item in value)
        return b"T" + str(len(value)).encode("ascii") + b":" + items + b")"
    raise TypeError(
        f"unsupported fingerprint key material of type {type(value).__name__}"
    )


def _stable_digest(value: object) -> int:
    """128-bit content digest of ``value`` under the canonical encoding.

    Unlike builtin ``hash()`` this is independent of ``PYTHONHASHSEED``, the
    interpreter build and the process — the same content always digests to
    the same integer, on any machine.
    """
    digest = hashlib.sha256(_canonical_encode(value)).digest()
    return int.from_bytes(digest[:16], "big")


def mapping_fingerprint(mapping: ProcessMapping) -> MappingFingerprint:
    """Canonical fingerprint of a process-to-node mapping."""
    return tuple(sorted(mapping.items()))


def hardening_fingerprint(hardening: Mapping[str, int]) -> HardeningFingerprint:
    """Canonical fingerprint of a hardening vector."""
    return tuple(sorted(hardening.items()))


def architecture_fingerprint(architecture: Architecture) -> ArchitectureFingerprint:
    """Canonical fingerprint of an architecture's node set (levels excluded)."""
    return tuple(
        sorted((node.name, node.node_type.name) for node in architecture)
    )


def application_fingerprint(application: Application) -> int:
    """Content digest of the application's graphs and global parameters."""
    return _stable_digest(_canonical_application(application))


def profile_fingerprint(profile: ExecutionProfile) -> int:
    """Content digest of the execution profile tables."""
    return _stable_digest(_canonical_profile(profile))


def context_fingerprint(application: Application, profile: ExecutionProfile) -> int:
    """Combined content digest identifying one (application, profile) context."""
    return _stable_digest(
        (application_fingerprint(application), profile_fingerprint(profile))
    )


def _canonical_application(application: Application) -> Tuple[object, ...]:
    """Canonical content tuple of an application (same data as the hash)."""
    graphs = []
    for graph in application.graphs:
        processes = tuple(sorted(graph.process_names))
        edges = tuple(
            sorted(
                (message.source, message.destination, message.transmission_time)
                for message in graph.messages
            )
        )
        graphs.append((graph.name, processes, edges))
    overheads = tuple(
        sorted(
            (name, application.recovery_overhead_of(name))
            for name in application.process_names()
        )
    )
    return (
        application.name,
        application.deadline,
        application.period,
        application.reliability_goal,
        application.time_unit,
        tuple(graphs),
        overheads,
    )


def _canonical_profile(profile: ExecutionProfile) -> Tuple[object, ...]:
    """Canonical content tuple of an execution profile's tables."""
    return tuple(
        sorted(
            (key, entry.wcet, entry.failure_probability)
            for key, entry in profile.entries().items()
        )
    )


def stable_context_fingerprint(
    application: Application, profile: ExecutionProfile
) -> str:
    """Cross-process content hash of one (application, profile) context.

    The hex-string form of the same canonical content the in-memory
    fingerprints digest: SHA-256 of the type-tagged canonical encoding, with
    no ``hash()``/``repr()`` anywhere on the path, so the value is stable
    across interpreter runs (``PYTHONHASHSEED``), platforms and processes.
    It is the key the persistent design-point store files are named by.
    """
    canonical = (_canonical_application(application), _canonical_profile(profile))
    return hashlib.sha256(_canonical_encode(canonical)).hexdigest()
