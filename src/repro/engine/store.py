"""Persistent on-disk design-point store — warm starts across CLI runs.

The in-memory :class:`~repro.engine.engine.EvaluationEngine` dies with the
process, so every CLI invocation of the same sweep used to recompute every
design point from scratch.  The store persists an engine's memo tables to
disk, keyed by the **stable** content hash of the bound
``(application, profile)`` context (:func:`stable_context_fingerprint` —
``PYTHONHASHSEED``-independent, unlike the in-memory fingerprint), so a
second run of the same sweep starts warm.

Layout and lifecycle:

* One pickle file per context, named
  ``<sha256(salt | context)> .pkl`` under the store directory.  The salt
  folds in :data:`STORE_SCHEMA_VERSION` and the package version: any code
  change that could alter results makes old files unreachable (stale caches
  are *not found* rather than migrated — design points are cheap to recompute
  relative to the cost of a wrong hit).
* :meth:`DesignPointStore.warm` preloads a file's entries into an engine
  (marking them for ``disk_hits`` accounting); :meth:`DesignPointStore.persist`
  merges the engine's tables back (read-modify-write with an atomic
  ``os.replace``, so concurrent workers at worst lose entries, never corrupt
  files).
* A size cap is enforced after every persist: least-recently-used files
  (by mtime — ``warm`` touches files it reads) are evicted until the store
  fits.  The file just written is never evicted.

Pickle is appropriate here: the store is a local cache written and read only
by this package; it is not an interchange format and never loads data the
user did not put there.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import EvaluationEngine

#: Bump on any change to the persisted layout *or* to the numeric kernels'
#: result contract; old store files become unreachable (never migrated).
#: 2: fingerprints moved from repr()-based hashing to the type-tagged
#: canonical byte encoding (R001), renaming every context key.
STORE_SCHEMA_VERSION = 2

#: Default size cap of a store directory (bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Engine attribute name per persisted memo table.
PERSISTED_CACHES = ("decisions", "optimizations", "exceedance", "no_fault", "system")


def code_version_salt() -> str:
    """Salt tying store files to the code that produced them."""
    import repro  # deferred: repro/__init__ defines __version__ after its imports

    version = getattr(repro, "__version__", "unknown")
    return f"schema={STORE_SCHEMA_VERSION};version={version}"


@dataclass
class StoreStats:
    """Counters describing one store's activity in this process."""

    files_loaded: int = 0
    entries_loaded: int = 0
    files_persisted: int = 0
    entries_persisted: int = 0
    evicted_files: int = 0
    invalid_files: int = 0
    single_flight_leads: int = 0
    single_flight_waits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "files_loaded": self.files_loaded,
            "entries_loaded": self.entries_loaded,
            "files_persisted": self.files_persisted,
            "entries_persisted": self.entries_persisted,
            "evicted_files": self.evicted_files,
            "invalid_files": self.invalid_files,
            "single_flight_leads": self.single_flight_leads,
            "single_flight_waits": self.single_flight_waits,
        }


class DesignPointStore:
    """Directory-backed persistence for evaluation-engine memo tables."""

    def __init__(
        self,
        directory: Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        salt: Optional[str] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = StoreStats()
        self._sweep_stale_temp_files()

    # ------------------------------------------------------------------
    def context_key(self, engine: "EvaluationEngine") -> str:
        """Stable, salted file key for the engine's bound context."""
        return sha256(
            f"{self.salt}|{engine.stable_context()}".encode("utf-8")
        ).hexdigest()

    def path_for(self, engine: "EvaluationEngine") -> Path:
        return self.directory / f"{self.context_key(engine)}.pkl"

    # ------------------------------------------------------------------
    def warm(self, engine: "EvaluationEngine") -> int:
        """Preload a persisted context into ``engine``; returns entry count.

        Unreadable or mismatched files are treated as absent (and removed):
        a cache must never turn a corrupt byte into a wrong answer or a
        crash.
        """
        path = self.path_for(engine)
        payload = self._read(path)
        if payload is None:
            return 0
        loaded = 0
        for attribute in PERSISTED_CACHES:
            entries = payload["caches"].get(attribute)
            if entries:
                loaded += getattr(engine, attribute).load(entries)
        # Mark the file recently used so LRU eviction favours cold contexts.
        # The file may have been evicted by a concurrent process since we
        # read it — losing the touch is fine, crashing the sweep is not.
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.files_loaded += 1
        self.stats.entries_loaded += loaded
        return loaded

    def persist(self, engine: "EvaluationEngine") -> int:
        """Merge the engine's memo tables into the context's store file.

        Read-modify-write: entries already on disk are kept (union with the
        engine's, engine wins ties — the values are bit-identical anyway),
        the file is replaced atomically, and the store size cap is enforced
        afterwards.  Returns the number of entries written.
        """
        path = self.path_for(engine)
        existing = self._read(path)
        caches: Dict[str, Dict[object, object]] = {}
        total = 0
        for attribute in PERSISTED_CACHES:
            merged: Dict[object, object] = {}
            if existing is not None:
                merged.update(existing["caches"].get(attribute, {}))
            merged.update(getattr(engine, attribute).snapshot())
            caches[attribute] = merged
            total += len(merged)
        if total == 0:
            return 0
        payload = {
            "salt": self.salt,
            "context": self.context_key(engine),
            "caches": caches,
        }
        self._write_atomic(path, payload)
        self.stats.files_persisted += 1
        self.stats.entries_persisted += total
        self._enforce_cap(keep=path)
        return total

    # ------------------------------------------------------------------
    # single-flight: one computer per context across concurrent jobs
    # ------------------------------------------------------------------
    @contextmanager
    def single_flight(
        self,
        engine: "EvaluationEngine",
        stale_after: float = 600.0,
        poll_interval: float = 0.05,
        timeout: Optional[float] = None,
    ) -> Iterator[bool]:
        """Cross-process leader election for one engine context.

        Two concurrent jobs bound to the *same* ``(application, profile)``
        context would each compute every design point and race their
        ``persist`` calls (safe, but wasteful — the whole computation runs
        twice).  ``single_flight`` elects one leader per context via an
        ``O_CREAT | O_EXCL`` lock file named after the context key:

        * the **leader** (``yield True``) holds the lock for the body and
          releases it afterwards — it should warm, evaluate and persist as
          usual;
        * a **follower** (``yield False``) blocks until the lock disappears
          and only then enters the body — warming *after* the leader's
          persist, so every design point the leader computed is served from
          disk and the follower computes nothing.

        The guard degrades, never deadlocks: a lock older than
        ``stale_after`` seconds is treated as an orphan of a dead leader and
        broken, and an optional ``timeout`` bounds the total wait — in both
        cases the follower proceeds and at worst recomputes (bit-identical)
        design points, which is exactly the behavior without the guard.
        """
        lock_path = self.directory / f"{self.context_key(engine)}.lock"
        leader = self._try_lock(lock_path)
        if leader:
            self.stats.single_flight_leads += 1
        else:
            self.stats.single_flight_waits += 1
            self._await_lock_release(lock_path, stale_after, poll_interval, timeout)
        try:
            yield leader
        finally:
            if leader:
                self._discard(lock_path)

    def _try_lock(self, path: Path) -> bool:
        """Atomically create the lock file; False when another holder won."""
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable store directory: behave as if the lock were free —
            # the guard is an optimization, never a correctness gate.
            return True
        with os.fdopen(handle, "w") as stream:
            stream.write(str(os.getpid()))
        return True

    def _await_lock_release(
        self,
        path: Path,
        stale_after: float,
        poll_interval: float,
        timeout: Optional[float],
    ) -> None:
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                return  # leader released (or lock broken by a peer)
            if age > stale_after:
                # The leader died without releasing; break its lock so the
                # context can make progress.  At worst two processes compute
                # the same (bit-identical) entries — the pre-guard behavior.
                self._discard(path)
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    def directory_stats(self) -> Dict[str, int]:
        """Current on-disk footprint of the store (files and bytes).

        Counts only persisted context files; in-flight ``*.tmp`` and
        ``*.lock`` files are transient bookkeeping.  Used by the serve
        layer's ``/healthz`` endpoint.
        """
        files = 0
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            files += 1
        return {"files": files, "bytes": total, "max_bytes": self.max_bytes}

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> Optional[Dict[str, object]]:
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, foreign file, unpicklable after a refactor ...
            # a cache treats all of these as "not cached".
            self.stats.invalid_files += 1
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("salt") != self.salt
            or not isinstance(payload.get("caches"), dict)
        ):
            self.stats.invalid_files += 1
            self._discard(path)
            return None
        return payload

    def _write_atomic(self, path: Path, payload: Dict[str, object]) -> None:
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            self._discard(Path(temp_name))
            raise

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _sweep_stale_temp_files(self) -> None:
        """Remove ``*.tmp`` orphans left by writers that died mid-write.

        A live ``_write_atomic`` temp file exists for milliseconds; anything
        older than an hour is an orphan from a killed process.  Run once per
        store construction so long-lived directories stay clean even when
        they never exceed the size cap.
        """
        cutoff = time.time() - 3600.0
        for path in self.directory.glob("*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                continue

    def _enforce_cap(self, keep: Optional[Path] = None) -> None:
        """Evict least-recently-used files until the store fits the cap.

        Orphaned ``*.tmp`` files (an interrupted ``_write_atomic`` — SIGKILL,
        power loss) count toward the cap and are eviction candidates like any
        other file, so a crashing writer cannot grow the directory past the
        user's limit; live temp files are written and replaced within one
        call, so only stale ones are ever old enough to be evicted first.
        """
        files = []
        total = 0
        for pattern in ("*.pkl", "*.tmp"):
            for path in self.directory.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= self.max_bytes:
            return
        files.sort()  # oldest mtime first
        for _, size, path in files:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            self._discard(path)
            self.stats.evicted_files += 1
            total -= size
