"""Experiment harnesses reproducing the paper's figures and case study."""

from __future__ import annotations

from repro.experiments.motivational import (
    appendix_sfp_example,
    evaluate_fig3_alternatives,
    evaluate_fig4_alternatives,
    fig1_application,
    fig1_node_types,
    fig1_profile,
    fig3_application,
    fig3_node_type,
    fig3_profile,
)
from repro.experiments.synthetic import (
    AcceptanceExperiment,
    ExperimentPreset,
    SettingResult,
    figure_6a_hpd_sweep,
    figure_6b_cost_table,
    figure_6c_ser_sweep,
    figure_6d_ser_sweep,
)
from repro.experiments.cruise_control import (
    cruise_controller_application,
    cruise_controller_node_types,
    cruise_controller_profile,
    run_cruise_controller_study,
)

__all__ = [
    "AcceptanceExperiment",
    "ExperimentPreset",
    "SettingResult",
    "appendix_sfp_example",
    "cruise_controller_application",
    "cruise_controller_node_types",
    "cruise_controller_profile",
    "evaluate_fig3_alternatives",
    "evaluate_fig4_alternatives",
    "fig1_application",
    "fig1_node_types",
    "fig1_profile",
    "fig3_application",
    "fig3_node_type",
    "fig3_profile",
    "figure_6a_hpd_sweep",
    "figure_6b_cost_table",
    "figure_6c_ser_sweep",
    "figure_6d_ser_sweep",
    "run_cruise_controller_study",
]
