"""Vehicle cruise-controller (CC) case study (Section 7 of the paper).

The paper evaluates its strategies on a real-life cruise controller of 32
processes mapped on three automotive ECUs — the Electronic Throttle Module
(ETM), the Anti-lock Braking System (ABS) and the Transmission Control Module
(TCM) — with a deadline of 300 ms, a reliability goal of ``1 - 1.2e-5`` per
hour, five hardening levels with HPD = 25 %, linear cost functions and a soft
error rate of 2e-12 for the least hardened versions.  The published findings:

* the MIN strategy (no hardening, software re-execution only) cannot produce a
  schedulable implementation,
* MAX and OPT both can, and
* OPT is about 66 % cheaper than MAX because it hardens only where the
  schedule is actually tight.

The original CC task graph comes from the first author's licentiate thesis
and is not publicly available; the graph below is a faithful synthetic
reconstruction with the same size (32 processes), the same three-ECU
architecture and a control-flow structure typical of a cruise controller
(sensor acquisition → filtering → state estimation → control law →
arbitration → actuation, plus diagnostics and display).  WCETs are chosen so
the schedule pressure matches the published behaviour; see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, Node, NodeType, linear_cost_node_type
from repro.core.fault_model import FaultModel, HardeningModel, TechnologyModel
from repro.core.mapping import MappingAlgorithm, Objective
from repro.core.profile import ExecutionProfile
from repro.core.redundancy import FixedHardeningRedundancyOpt, RedundancyOpt
from repro.analysis.cost import relative_cost_saving

#: Deadline and period of the cruise controller, in milliseconds.
CC_DEADLINE = 300.0
#: Reliability goal of the case study.
CC_RELIABILITY_GOAL = 1.0 - 1.2e-5
#: Soft error rate per clock cycle of the least hardened modules.
CC_SER = 2e-12
#: Hardening performance degradation between the first and the fifth level.
CC_HPD = 25.0
#: Number of h-versions per ECU.
CC_HARDENING_LEVELS = 5
#: Clock frequency (MHz) used to convert WCETs into cycle counts.
CC_CLOCK_MHZ = 1000.0
#: Recovery overhead as a fraction of each process WCET (paper: 1-10 %).
CC_RECOVERY_FRACTION = 0.05
#: Worst-case bus transmission time of every CC message, in milliseconds.
CC_MESSAGE_TIME = 1.0

#: The 32 processes of the reconstructed cruise controller.  Each entry is
#: ``(name, WCET on the unhardened ECU in ms, list of predecessors)``.
CC_PROCESS_TABLE: List[Tuple[str, float, Tuple[str, ...]]] = [
    # -- sensor acquisition ------------------------------------------------
    ("read_speed_sensor", 12.0, ()),
    ("read_throttle_position", 6.0, ()),
    ("read_brake_pedal", 5.0, ()),
    ("read_driver_buttons", 4.0, ()),
    ("read_engine_rpm", 6.0, ()),
    ("read_gear_position", 4.0, ()),
    # -- filtering / validation --------------------------------------------
    ("filter_speed", 14.0, ("read_speed_sensor",)),
    ("filter_throttle", 8.0, ("read_throttle_position",)),
    ("validate_brake", 6.0, ("read_brake_pedal",)),
    ("debounce_buttons", 5.0, ("read_driver_buttons",)),
    ("filter_rpm", 7.0, ("read_engine_rpm",)),
    ("validate_gear", 5.0, ("read_gear_position",)),
    # -- state estimation ----------------------------------------------------
    ("estimate_vehicle_speed", 16.0, ("filter_speed",)),
    ("estimate_acceleration", 14.0, ("estimate_vehicle_speed",)),
    ("detect_override", 8.0, ("validate_brake", "filter_throttle")),
    ("determine_cc_state", 12.0, ("estimate_acceleration", "debounce_buttons", "detect_override")),
    ("compute_target_speed", 14.0, ("determine_cc_state",)),
    # -- control law ---------------------------------------------------------
    ("compute_speed_error", 10.0, ("compute_target_speed",)),
    ("pid_controller", 22.0, ("compute_speed_error", "filter_throttle")),
    ("feedforward_compensation", 14.0, ("pid_controller",)),
    ("compute_torque_request", 16.0, ("feedforward_compensation", "filter_rpm")),
    ("safety_monitor", 10.0, ("detect_override", "validate_brake")),
    # -- arbitration ----------------------------------------------------------
    ("check_abs_interlock", 7.0, ("validate_brake",)),
    ("check_transmission_interlock", 6.0, ("validate_gear",)),
    ("arbitrate_torque", 18.0, ("compute_torque_request", "check_abs_interlock")),
    ("limit_torque_rate", 14.0, ("arbitrate_torque",)),
    ("gear_advice", 9.0, ("arbitrate_torque", "validate_gear")),
    # -- actuation / outputs ---------------------------------------------------
    ("throttle_command", 40.0, ("limit_torque_rate",)),
    ("transmission_command", 12.0, ("gear_advice", "check_transmission_interlock")),
    ("brake_release_command", 8.0, ("safety_monitor",)),
    ("update_display", 8.0, ("determine_cc_state",)),
    ("log_diagnostics", 6.0, ("safety_monitor",)),
]

#: Base (unhardened) cost of each ECU; the cost grows linearly with the level.
CC_NODE_BASE_COSTS: Dict[str, float] = {"ETM": 4.0, "ABS": 3.0, "TCM": 3.0}


def cruise_controller_application() -> Application:
    """Build the 32-process cruise-controller application."""
    application = Application(
        name="cruise_controller",
        deadline=CC_DEADLINE,
        reliability_goal=CC_RELIABILITY_GOAL,
        recovery_overhead=0.0,
        period=CC_DEADLINE,
    )
    graph = application.new_graph("CC")
    for name, wcet, _ in CC_PROCESS_TABLE:
        graph.add_process(Process(name, nominal_wcet=wcet))
    message_index = 0
    for name, _, predecessors in CC_PROCESS_TABLE:
        for predecessor in predecessors:
            message_index += 1
            graph.add_message(
                Message(
                    name=f"cc_m{message_index}",
                    source=predecessor,
                    destination=name,
                    transmission_time=CC_MESSAGE_TIME,
                )
            )
    for name, wcet, _ in CC_PROCESS_TABLE:
        application.set_recovery_overhead(name, wcet * CC_RECOVERY_FRACTION)
    return application


def cruise_controller_node_types() -> List[NodeType]:
    """The three ECUs (ETM, ABS, TCM), five h-versions each, linear costs."""
    return [
        linear_cost_node_type(name, base_cost=cost, levels=CC_HARDENING_LEVELS)
        for name, cost in CC_NODE_BASE_COSTS.items()
    ]


def cruise_controller_profile(
    application: Optional[Application] = None,
    node_types: Optional[Sequence[NodeType]] = None,
) -> ExecutionProfile:
    """Derive the WCET / failure-probability tables of the case study."""
    application = application if application is not None else cruise_controller_application()
    node_types = list(node_types) if node_types is not None else cruise_controller_node_types()
    hardening = HardeningModel(
        levels=CC_HARDENING_LEVELS,
        ser_reduction_per_level=100.0,
        performance_degradation=CC_HPD,
    )
    technology = TechnologyModel(ser_per_cycle=CC_SER, clock_mhz=CC_CLOCK_MHZ)
    fault_model = FaultModel(technology, hardening)
    return fault_model.build_profile(application, node_types)


@dataclass(frozen=True)
class CruiseControlOutcome:
    """Result of one strategy on the cruise controller."""

    strategy: str
    schedulable: bool
    cost: float
    schedule_length: float
    hardening: Dict[str, int]
    reexecutions: Dict[str, int]


@dataclass(frozen=True)
class CruiseControlStudy:
    """Aggregated results of the MIN / MAX / OPT comparison."""

    outcomes: Dict[str, CruiseControlOutcome]

    @property
    def opt_saving_vs_max(self) -> float:
        """Relative cost saving of OPT over MAX (the paper reports ~66 %)."""
        opt = self.outcomes.get("OPT")
        max_outcome = self.outcomes.get("MAX")
        if opt is None or max_outcome is None:
            return 0.0
        if not (opt.schedulable and max_outcome.schedulable):
            return 0.0
        return relative_cost_saving(opt.cost, max_outcome.cost)


def run_cruise_controller_study(
    mapping_iterations: int = 6,
    mapping_candidates: int = 3,
) -> CruiseControlStudy:
    """Run MIN, MAX and OPT on the fixed three-ECU architecture.

    Unlike the synthetic experiments, the CC architecture is given (the three
    ECUs are physically present in the vehicle), so the strategies differ only
    in how they pick hardening levels and re-executions, and in the mapping
    they converge to.
    """
    application = cruise_controller_application()
    node_types = cruise_controller_node_types()
    profile = cruise_controller_profile(application, node_types)

    optimizers = {
        "MIN": FixedHardeningRedundancyOpt("min"),
        "MAX": FixedHardeningRedundancyOpt("max"),
        "OPT": RedundancyOpt(),
    }
    outcomes: Dict[str, CruiseControlOutcome] = {}
    for strategy, optimizer in optimizers.items():
        architecture = Architecture(
            [Node(node_type.name, node_type) for node_type in node_types]
        )
        architecture.set_min_hardening()
        algorithm = MappingAlgorithm(
            redundancy_optimizer=optimizer,
            max_iterations=mapping_iterations,
            stop_after_no_improvement=max(2, mapping_iterations // 2),
            max_candidates=mapping_candidates,
        )
        schedule_result = algorithm.optimize(
            application, architecture, profile, objective=Objective.SCHEDULE_LENGTH
        )
        if schedule_result is None or not schedule_result.is_feasible:
            # Best-effort reporting: evaluate the greedy initial mapping at the
            # strategy's locked (or minimum) hardening so the study can still
            # show how far from the deadline the strategy lands.
            initial = algorithm.initial_mapping(application, architecture, profile)
            locked_level = {
                "MIN": {node.name: node.node_type.min_hardening for node in architecture},
                "MAX": {node.name: node.node_type.max_hardening for node in architecture},
                "OPT": {node.name: node.node_type.min_hardening for node in architecture},
            }[strategy]
            fallback = optimizer.evaluate_hardening(
                application, architecture, initial, profile, locked_level
            )
            outcomes[strategy] = CruiseControlOutcome(
                strategy=strategy,
                schedulable=False,
                cost=float("inf"),
                schedule_length=fallback.schedule_length,
                hardening=dict(fallback.hardening),
                reexecutions=dict(fallback.reexecutions),
            )
            continue
        cost_result = algorithm.optimize(
            application,
            architecture,
            profile,
            objective=Objective.COST,
            initial_mapping=schedule_result.mapping,
        )
        chosen = cost_result if cost_result is not None else schedule_result
        outcomes[strategy] = CruiseControlOutcome(
            strategy=strategy,
            schedulable=chosen.is_feasible,
            cost=chosen.cost,
            schedule_length=chosen.schedule_length,
            hardening=dict(chosen.decision.hardening),
            reexecutions=dict(chosen.decision.reexecutions),
        )
    return CruiseControlStudy(outcomes=outcomes)
