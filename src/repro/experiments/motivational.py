"""The paper's motivational examples (Fig. 1 through Fig. 4, Appendix A.2).

These builders reconstruct, value for value, the small examples the paper uses
to motivate the hardening/re-execution trade-off:

* **Fig. 1** — the four-process application ``G1`` with its WCET/failure
  probability tables on two nodes, three h-versions each, deadline 360 ms,
  reliability goal ``1 - 1e-5`` per hour and recovery overhead 15 ms.
* **Fig. 2 / Fig. 3** — a single process on one node with three h-versions
  showing how the required number of re-executions shrinks (6, 2, 1) as the
  hardening level grows, and how that affects the worst-case delay.
* **Fig. 4** — five architecture alternatives for the Fig. 1 application,
  evaluated for cost, re-executions and schedulability.
* **Appendix A.2** — the worked SFP computation for the Fig. 4a architecture.

The evaluation helpers return plain dictionaries/dataclasses so they can be
asserted against in the tests and pretty-printed by the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.reexecution import ReExecutionOpt
from repro.core.sfp import SFPAnalysis
from repro.scheduling.list_scheduler import ListScheduler

#: Worst-case bus transmission time assumed for the Fig. 1 messages (the paper
#: draws the messages on the bus but does not print their length; 10 ms keeps
#: the schedules well inside the figure's proportions).
FIG1_MESSAGE_TIME = 10.0


# ----------------------------------------------------------------------
# Fig. 1 — application and platform tables
# ----------------------------------------------------------------------
def fig1_application(message_time: float = FIG1_MESSAGE_TIME) -> Application:
    """The four-process application ``G1`` of Fig. 1 (D=360 ms, mu=15 ms)."""
    application = Application(
        name="fig1",
        deadline=360.0,
        reliability_goal=1.0 - 1e-5,
        recovery_overhead=15.0,
        period=360.0,
    )
    graph = application.new_graph("G1")
    for name in ("P1", "P2", "P3", "P4"):
        graph.add_process(Process(name))
    graph.add_message(Message("m1", "P1", "P2", transmission_time=message_time))
    graph.add_message(Message("m2", "P1", "P3", transmission_time=message_time))
    graph.add_message(Message("m3", "P2", "P4", transmission_time=message_time))
    graph.add_message(Message("m4", "P3", "P4", transmission_time=message_time))
    return application


def fig1_node_types() -> Tuple[NodeType, NodeType]:
    """Node types N1 (cost 16/32/64) and N2 (cost 20/40/80) of Fig. 1."""
    n1 = NodeType(
        "N1",
        [HVersion(1, 16.0), HVersion(2, 32.0), HVersion(3, 64.0)],
        speed_factor=1.2,
    )
    n2 = NodeType(
        "N2",
        [HVersion(1, 20.0), HVersion(2, 40.0), HVersion(3, 80.0)],
        speed_factor=1.0,
    )
    return n1, n2


#: WCET/failure probability tables of Fig. 1, keyed (process, node, level).
_FIG1_TABLE: Dict[Tuple[str, str, int], Tuple[float, float]] = {
    # N1, h = 1
    ("P1", "N1", 1): (60.0, 1.2e-3),
    ("P2", "N1", 1): (75.0, 1.3e-3),
    ("P3", "N1", 1): (60.0, 1.4e-3),
    ("P4", "N1", 1): (75.0, 1.6e-3),
    # N1, h = 2
    ("P1", "N1", 2): (75.0, 1.2e-5),
    ("P2", "N1", 2): (90.0, 1.3e-5),
    ("P3", "N1", 2): (75.0, 1.4e-5),
    ("P4", "N1", 2): (90.0, 1.6e-5),
    # N1, h = 3
    ("P1", "N1", 3): (90.0, 1.2e-10),
    ("P2", "N1", 3): (105.0, 1.3e-10),
    ("P3", "N1", 3): (90.0, 1.4e-10),
    ("P4", "N1", 3): (105.0, 1.6e-10),
    # N2, h = 1
    ("P1", "N2", 1): (50.0, 1.0e-3),
    ("P2", "N2", 1): (65.0, 1.2e-3),
    ("P3", "N2", 1): (50.0, 1.2e-3),
    ("P4", "N2", 1): (65.0, 1.3e-3),
    # N2, h = 2
    ("P1", "N2", 2): (60.0, 1.0e-5),
    ("P2", "N2", 2): (75.0, 1.2e-5),
    ("P3", "N2", 2): (60.0, 1.2e-5),
    ("P4", "N2", 2): (75.0, 1.3e-5),
    # N2, h = 3
    ("P1", "N2", 3): (75.0, 1.0e-10),
    ("P2", "N2", 3): (90.0, 1.2e-10),
    ("P3", "N2", 3): (75.0, 1.2e-10),
    ("P4", "N2", 3): (90.0, 1.3e-10),
}


def fig1_profile() -> ExecutionProfile:
    """Execution profile carrying the Fig. 1 tables."""
    profile = ExecutionProfile()
    for (process, node_type, level), (wcet, probability) in _FIG1_TABLE.items():
        profile.add_entry(process, node_type, level, wcet, probability)
    return profile


# ----------------------------------------------------------------------
# Fig. 3 — one process, one node, three h-versions
# ----------------------------------------------------------------------
def fig3_application() -> Application:
    """Single-process application of Fig. 3 (D=360 ms, mu=20 ms)."""
    application = Application(
        name="fig3",
        deadline=360.0,
        reliability_goal=1.0 - 1e-5,
        recovery_overhead=20.0,
        period=360.0,
    )
    graph = application.new_graph("G1")
    graph.add_process(Process("P1"))
    return application


def fig3_node_type() -> NodeType:
    """Node N1 of Fig. 3 with costs 10/20/40."""
    return NodeType("N1", [HVersion(1, 10.0), HVersion(2, 20.0), HVersion(3, 40.0)])


def fig3_profile() -> ExecutionProfile:
    """WCET/failure probability table of Fig. 3."""
    profile = ExecutionProfile()
    table = {1: (80.0, 4e-2), 2: (100.0, 4e-4), 3: (160.0, 4e-6)}
    for level, (wcet, probability) in table.items():
        profile.add_entry("P1", "N1", level, wcet, probability)
    return profile


@dataclass(frozen=True)
class AlternativeOutcome:
    """Evaluation of one architecture/hardening alternative."""

    label: str
    hardening: Dict[str, int]
    reexecutions: Dict[str, int]
    schedule_length: float
    cost: float
    schedulable: bool
    meets_reliability: bool


def evaluate_fig3_alternatives() -> List[AlternativeOutcome]:
    """Evaluate the three h-versions of Fig. 3 (expected k = 6, 2, 1)."""
    application = fig3_application()
    node_type = fig3_node_type()
    profile = fig3_profile()
    outcomes: List[AlternativeOutcome] = []
    for level in node_type.hardening_levels:
        architecture = Architecture([Node("N1", node_type, hardening=level)])
        mapping = ProcessMapping({"P1": "N1"})
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        reexecutions = decision.reexecutions if decision is not None else {"N1": 0}
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        outcomes.append(
            AlternativeOutcome(
                label=f"N1^{level}",
                hardening={"N1": level},
                reexecutions=dict(reexecutions),
                schedule_length=schedule.length,
                cost=architecture.cost,
                schedulable=schedule.length <= application.deadline,
                meets_reliability=decision is not None,
            )
        )
    return outcomes


# ----------------------------------------------------------------------
# Fig. 4 — architecture alternatives for the Fig. 1 application
# ----------------------------------------------------------------------
def _fig4_alternative_specs() -> Dict[str, Tuple[List[Tuple[str, int]], Dict[str, str]]]:
    """Architecture and mapping of each Fig. 4 alternative.

    Each entry maps the figure label to ``(nodes, mapping)`` where ``nodes``
    is a list of ``(node type name, hardening level)`` pairs and ``mapping``
    assigns the four processes to node names.
    """
    return {
        "a": (
            [("N1", 2), ("N2", 2)],
            {"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"},
        ),
        "b": ([("N1", 2)], {name: "N1" for name in ("P1", "P2", "P3", "P4")}),
        "c": ([("N2", 2)], {name: "N2" for name in ("P1", "P2", "P3", "P4")}),
        "d": ([("N1", 3)], {name: "N1" for name in ("P1", "P2", "P3", "P4")}),
        "e": ([("N2", 3)], {name: "N2" for name in ("P1", "P2", "P3", "P4")}),
    }


def evaluate_fig4_alternatives() -> Dict[str, AlternativeOutcome]:
    """Evaluate the five architecture alternatives of Fig. 4.

    Expected shape (paper): (a) and (e) schedulable, (b), (c) and (d) not;
    (a) costs 72 and (e) costs 80, so the distributed, moderately hardened
    architecture wins.
    """
    application = fig1_application()
    node_types = {node_type.name: node_type for node_type in fig1_node_types()}
    profile = fig1_profile()
    outcomes: Dict[str, AlternativeOutcome] = {}
    for label, (node_list, assignment) in _fig4_alternative_specs().items():
        nodes = [
            Node(type_name, node_types[type_name], hardening=level)
            for type_name, level in node_list
        ]
        architecture = Architecture(nodes)
        mapping = ProcessMapping(assignment)
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        reexecutions = (
            decision.reexecutions
            if decision is not None
            else {node.name: 0 for node in architecture}
        )
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, reexecutions
        )
        outcomes[label] = AlternativeOutcome(
            label=label,
            hardening=architecture.hardening_vector(),
            reexecutions=dict(reexecutions),
            schedule_length=schedule.length,
            cost=architecture.cost,
            schedulable=schedule.length <= application.deadline,
            meets_reliability=decision is not None,
        )
    return outcomes


# ----------------------------------------------------------------------
# Appendix A.2 — worked SFP example
# ----------------------------------------------------------------------
def appendix_sfp_example() -> Dict[str, float]:
    """Reproduce the numbers of the Appendix A.2 computation example.

    Returns a dictionary with the same intermediate quantities the paper
    prints (probability of no faults, of exceeding zero/one faults per node,
    the system failure probability and the resulting reliability for k=0 and
    k=1 re-executions per node).
    """
    application = fig1_application()
    node_types = {node_type.name: node_type for node_type in fig1_node_types()}
    profile = fig1_profile()
    architecture = Architecture(
        [
            Node("N1", node_types["N1"], hardening=2),
            Node("N2", node_types["N2"], hardening=2),
        ]
    )
    mapping = ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})
    analysis = SFPAnalysis(application, architecture, mapping, profile)

    node1 = architecture.node("N1")
    node2 = architecture.node("N2")
    report_k0 = analysis.evaluate({"N1": 0, "N2": 0})
    report_k1 = analysis.evaluate({"N1": 1, "N2": 1})
    return {
        "pr_no_fault_n1": analysis.probability_no_fault(node1),
        "pr_no_fault_n2": analysis.probability_no_fault(node2),
        "pr_exceeds_0_n1": analysis.node_exceedance(node1, 0),
        "pr_exceeds_1_n1": analysis.node_exceedance(node1, 1),
        "pr_exceeds_1_n2": analysis.node_exceedance(node2, 1),
        "system_failure_k0": report_k0.system_failure_per_iteration,
        "system_failure_k1": report_k1.system_failure_per_iteration,
        "reliability_k0": report_k0.reliability_over_time_unit,
        "reliability_k1": report_k1.reliability_over_time_unit,
        "meets_goal_k0": float(report_k0.meets_goal),
        "meets_goal_k1": float(report_k1.meets_goal),
    }
