"""Plain-text rendering of experiment results (tables and bar charts).

The paper reports its evaluation as percentage-of-accepted-architectures bar
charts (Fig. 6a, 6c, 6d) and a table (Fig. 6b).  The helpers below render the
same rows/series as aligned ASCII so the benchmark harnesses and the CLI can
print them without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    value_label: str = "% accepted",
    width: int = 40,
    title: str = "",
) -> str:
    """Render grouped percentages as horizontal ASCII bars.

    ``series`` maps a group label (e.g. ``"HPD=5%"``) to ``{strategy: value}``
    where values are percentages in 0..100.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    for group, values in series.items():
        lines.append(f"{group}")
        for key, value in values.items():
            bar_length = int(round(max(0.0, min(100.0, value)) / 100.0 * width))
            bar = "#" * bar_length
            lines.append(f"  {key:<4} {value:6.1f} {value_label} |{bar}")
    return "\n".join(lines)


def percentages(counts: Mapping[str, int], total: int) -> Dict[str, float]:
    """Convert accepted counts into percentages of ``total``."""
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: 100.0 * value / total for key, value in counts.items()}


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
