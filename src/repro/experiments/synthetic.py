"""Synthetic design-space-exploration experiments (Fig. 6 of the paper).

The paper generates 150 synthetic applications (20 and 40 processes), sweeps
the soft error rate (SER ∈ {1e-10, 1e-11, 1e-12}), the hardening performance
degradation (HPD ∈ {5, 25, 50, 100} %) and the maximum architectural cost
(ArC ∈ {15, 20, 25}), and reports, for the three strategies MIN / MAX / OPT,
the percentage of applications for which an *accepted* implementation was
found (reliable + schedulable + within the cost cap).

Running the full 150-application sweep takes hours of CPU (the paper reports
3-60 minutes per application on a 2.8 GHz Pentium 4); this module therefore
exposes *presets*: ``ExperimentPreset.paper()`` mirrors the published setup,
``ExperimentPreset.fast()`` is a scaled-down configuration (fewer, smaller
applications and reduced tabu-search effort) used by the pytest-benchmark
harnesses so every figure regenerates in minutes on a laptop.  The qualitative
shape — MIN flat over HPD, MAX degrading with HPD and cost pressure, OPT
dominating both, OPT ≈ MIN at low SER and OPT ≫ MIN at high SER — is
preserved by the scaled-down preset and asserted in the integration tests.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.baselines import (
    max_hardening_strategy,
    min_hardening_strategy,
    optimized_strategy,
)
from repro.core.evaluation import DesignResult
from repro.core.fault_model import SER_HIGH, SER_LOW, SER_MEDIUM
from repro.core.mapping import MappingAlgorithm
from repro.engine import DEFAULT_MAX_BYTES, DesignPointStore, EvaluationEngine
from repro.experiments.results import format_table
from repro.generator.benchmark import (
    BenchmarkConfig,
    SyntheticBenchmark,
    build_platform,
    generate_benchmark_suite,
)
from repro.scheduling.list_scheduler import ListScheduler

#: The three strategies compared throughout Section 7.
STRATEGIES = ("MIN", "MAX", "OPT")

#: HPD values (in percent) used by Fig. 6a and Fig. 6b.
PAPER_HPD_VALUES = (5.0, 25.0, 50.0, 100.0)

#: Maximum architectural costs used by Fig. 6b.
PAPER_ARC_VALUES = (15.0, 20.0, 25.0)

#: Soft error rates of the three technologies of Fig. 6c / 6d.
PAPER_SER_VALUES = (SER_LOW, SER_MEDIUM, SER_HIGH)


@dataclass(frozen=True)
class ExperimentPreset:
    """Size/effort knobs of the synthetic experiment harness."""

    n_applications: int
    process_counts: Tuple[int, ...]
    n_node_types: int
    mapping_iterations: int
    mapping_stop_after: int
    mapping_candidates: int
    base_seed: int = 1
    arc_default: float = 20.0

    @classmethod
    def paper(cls) -> "ExperimentPreset":
        """The published setup: 150 applications of 20 and 40 processes."""
        return cls(
            n_applications=150,
            process_counts=(20, 40),
            n_node_types=4,
            mapping_iterations=12,
            mapping_stop_after=4,
            mapping_candidates=4,
        )

    @classmethod
    def fast(cls) -> "ExperimentPreset":
        """Laptop-scale preset used by the benchmark harnesses."""
        return cls(
            n_applications=6,
            process_counts=(16, 24),
            n_node_types=3,
            mapping_iterations=3,
            mapping_stop_after=2,
            mapping_candidates=2,
        )

    @classmethod
    def smoke(cls) -> "ExperimentPreset":
        """Minimal preset for unit/integration tests."""
        return cls(
            n_applications=2,
            process_counts=(10,),
            n_node_types=3,
            mapping_iterations=2,
            mapping_stop_after=1,
            mapping_candidates=2,
        )

    def benchmark_config(self) -> BenchmarkConfig:
        return BenchmarkConfig(n_node_types=self.n_node_types)

    def mapping_algorithm(self) -> MappingAlgorithm:
        return MappingAlgorithm(
            max_iterations=self.mapping_iterations,
            stop_after_no_improvement=self.mapping_stop_after,
            max_candidates=self.mapping_candidates,
        )


@dataclass
class SettingResult:
    """All strategy results for one (SER, HPD) setting over a benchmark suite."""

    ser: float
    hpd: float
    results: Dict[str, List[DesignResult]] = field(default_factory=dict)
    #: Aggregate persistent-store counters over the setting's engines (zero
    #: when no store is attached).
    disk_hits: int = 0
    disk_entries_loaded: int = 0

    def acceptance_percent(self, max_cost: Optional[float]) -> Dict[str, float]:
        """Percentage of applications accepted per strategy under ``max_cost``."""
        output: Dict[str, float] = {}
        for strategy, results in self.results.items():
            if not results:
                output[strategy] = 0.0
                continue
            accepted = sum(1 for result in results if result.is_accepted(max_cost))
            output[strategy] = 100.0 * accepted / len(results)
        return output

    def average_cost(self, strategy: str) -> float:
        """Mean architecture cost of the feasible designs of one strategy."""
        costs = [
            result.cost for result in self.results.get(strategy, []) if result.feasible
        ]
        if not costs:
            return float("inf")
        return sum(costs) / len(costs)

    def cache_summary(self) -> Dict[str, float]:
        """Aggregate engine counters over all strategies/applications.

        ``search_evaluations`` counts design points *examined* by the tabu
        searches (identical with or without caching); ``points_computed``
        counts points actually evaluated — decision-cache misses that ran
        the re-execution optimizer and the scheduler.
        """
        hits = misses = search_evaluations = points_computed = 0
        batch_rows = batch_cold_rows = 0
        for results in self.results.values():
            for result in results:
                hits += result.cache_hits
                misses += result.cache_misses
                search_evaluations += result.evaluations
                points_computed += result.points_computed
                batch_rows += result.batch_rows
                batch_cold_rows += result.batch_cold_rows
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "search_evaluations": search_evaluations,
            "points_computed": points_computed,
            "hit_rate": hits / lookups if lookups else 0.0,
            "disk_hits": self.disk_hits,
            "disk_entries_loaded": self.disk_entries_loaded,
            "batch_rows": batch_rows,
            "batch_cold_rows": batch_cold_rows,
            "batch_fill_rate": batch_cold_rows / batch_rows if batch_rows else 0.0,
        }


def _evaluate_benchmark_setting(
    benchmark: SyntheticBenchmark,
    ser: float,
    hpd: float,
    preset: ExperimentPreset,
    strategies: Tuple[str, ...],
    store_dir: Optional[Path] = None,
    store_max_bytes: int = DEFAULT_MAX_BYTES,
    single_flight: bool = False,
) -> Tuple[Dict[str, DesignResult], Dict[str, int]]:
    """Run the requested strategies for one application at one setting.

    Module-level (not a method) so the parallel sweep can ship it to worker
    processes.  All strategies share one :class:`EvaluationEngine` bound to
    the benchmark's (application, profile): design points evaluated by MIN
    (all-minimum hardening, which OPT's Phase 1 always evaluates first) or
    MAX are free for OPT and vice versa.

    When ``store_dir`` is given, the engine is warm-started from the
    persistent design-point store before the strategies run and its memo
    tables are merged back afterwards; the returned counters report how many
    entries were preloaded and how many lookups they served.  Every worker
    process opens its own store handle (cheap — it is just a directory), and
    distinct benchmarks/settings hash to distinct files, so parallel sweeps
    need no cross-process locking.

    ``single_flight`` additionally serializes *identical* contexts across
    concurrent processes (the serve job queue's shared warm store): the
    first process to reach a context computes it, everyone else blocks on
    the store's lock file and then warm-loads the winner's entries instead
    of recomputing them (see :meth:`DesignPointStore.single_flight`).
    Results are bit-identical either way; the guard only removes duplicated
    work.
    """
    node_types, profile = build_platform(
        benchmark,
        ser_per_cycle=ser,
        hardening_performance_degradation=hpd,
    )
    engine = EvaluationEngine(benchmark.application, profile)
    store: Optional[DesignPointStore] = None
    disk = {"disk_hits": 0, "disk_entries_loaded": 0}
    if store_dir is not None:
        store = DesignPointStore(store_dir, max_bytes=store_max_bytes)
    guard = (
        store.single_flight(engine)
        if store is not None and single_flight
        else nullcontext(True)
    )
    with guard:
        # Warming happens inside the guard: a single-flight follower warms
        # *after* the leader's persist, so the leader's design points are
        # all served from disk and the follower computes none of them.
        if store is not None:
            disk["disk_entries_loaded"] = store.warm(engine)
        algorithm = preset.mapping_algorithm()
        # One scheduler (with the process-selected scheduler kernel) shared by
        # all strategies: it is stateless across calls except for the memoized
        # application structure, which is the same for MIN, MAX and OPT — so
        # sharing also means the flat kernel compiles the application once per
        # setting instead of once per strategy.
        scheduler = ListScheduler()
        builders = {
            "MIN": min_hardening_strategy,
            "MAX": max_hardening_strategy,
            "OPT": optimized_strategy,
        }
        results = {
            name: builders[name](node_types, algorithm, scheduler=scheduler).explore(
                benchmark.application, profile, engine=engine
            )
            for name in strategies
        }
        if store is not None:
            store.persist(engine)
            disk["disk_hits"] = engine.disk_hits
    return results, disk


#: Per-worker-process state installed by :func:`_init_worker`.  Worker
#: processes are single-threaded executor children, so a plain module dict
#: needs no locking.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    benchmarks: Sequence[SyntheticBenchmark],
    preset: ExperimentPreset,
    strategies: Tuple[str, ...],
    store_dir: Optional[Path],
    store_max_bytes: int,
    single_flight: bool = False,
) -> None:
    """Executor initializer: ship the benchmark suite once per worker.

    Submitting ``(benchmark, ser, hpd, preset, …)`` per task re-pickles each
    benchmark (and the shared arguments) for every task; installing the
    whole suite once per worker makes each task a ``(index, ser, hpd)``
    triple of scalars.
    """
    _WORKER_STATE["benchmarks"] = list(benchmarks)
    _WORKER_STATE["preset"] = preset
    _WORKER_STATE["strategies"] = strategies
    _WORKER_STATE["store_dir"] = store_dir
    _WORKER_STATE["store_max_bytes"] = store_max_bytes
    _WORKER_STATE["single_flight"] = single_flight
    _maybe_install_worker_sanitizer()


def _maybe_install_worker_sanitizer() -> None:
    """Install a child-side determinism sanitizer under ``REPRO_SANITIZE``.

    The parent's sanitizer state does not survive the pool boundary (each
    worker is a fresh process), so workers install their own: cross-process
    mutation of guarded objects (R007) is detected where it happens and
    surfaced on the shared stderr.  The environment variable — not a task
    argument — is the opt-in channel because ``fork``-started workers
    inherit it for free and task tuples stay scalar.
    """
    from repro.lint.sanitizer import (
        DeterminismSanitizer,
        active_sanitizer,
        env_requests_sanitizer,
    )

    # fork-started workers inherit the parent's installed sanitizer
    # (patches and all); only spawn-started workers need a fresh one.
    if env_requests_sanitizer() and active_sanitizer() is None:
        DeterminismSanitizer().install()


def _evaluate_indexed_setting(
    task: Tuple[int, float, float],
) -> Tuple[Dict[str, DesignResult], Dict[str, int]]:
    """Worker-side task: evaluate benchmark ``index`` at one (SER, HPD)."""
    index, ser, hpd = task
    return _evaluate_benchmark_setting(
        _WORKER_STATE["benchmarks"][index],
        ser,
        hpd,
        _WORKER_STATE["preset"],
        _WORKER_STATE["strategies"],
        _WORKER_STATE["store_dir"],
        _WORKER_STATE["store_max_bytes"],
        _WORKER_STATE["single_flight"],
    )


def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    """GC-finalizer fallback: release workers without blocking collection."""
    executor.shutdown(wait=False, cancel_futures=True)


class AcceptanceExperiment:
    """Run MIN / MAX / OPT over a suite of synthetic benchmarks.

    The expensive part — running the three strategies for a given SER/HPD
    technology setting — is decoupled from the cheap part — counting
    acceptance under different cost caps — exactly because the paper sweeps
    ArC without re-running the optimization.

    Parameters
    ----------
    n_jobs:
        Number of worker processes for the per-application loop.  ``None`` or
        ``1`` runs serially (the default — the memoized engine already makes
        the sweep fast on one core); ``0`` uses one worker per CPU.  Results
        are deterministic and identical regardless of ``n_jobs`` because each
        application is evaluated independently and collected in order.
    store_dir:
        Optional directory of the persistent design-point store
        (:class:`~repro.engine.store.DesignPointStore`).  When given, every
        engine is warm-started from disk and persisted back, so repeating
        the same sweep in a fresh process starts warm.  Results are
        bit-identical with or without a store.
    store_max_bytes:
        Size cap of the store directory (least-recently-used files are
        evicted beyond it).
    single_flight:
        Serialize identical engine contexts across concurrent *processes*
        sharing ``store_dir`` (the serve job queue): the first process
        computes a context, the others wait and warm-load its entries
        instead of recomputing them.  Bit-identical either way.
    progress:
        Optional callback receiving one JSON-native event dict per
        completed benchmark evaluation (``setting_progress`` events with
        running cache counters).  Observability only — it never changes
        results.
    """

    def __init__(
        self,
        preset: Optional[ExperimentPreset] = None,
        benchmarks: Optional[Sequence[SyntheticBenchmark]] = None,
        strategies: Sequence[str] = STRATEGIES,
        n_jobs: Optional[int] = None,
        store_dir: Union[str, Path, None] = None,
        store_max_bytes: int = DEFAULT_MAX_BYTES,
        single_flight: bool = False,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        self.preset = preset if preset is not None else ExperimentPreset.fast()
        unknown = set(strategies) - set(STRATEGIES)
        if unknown:
            raise ValueError(f"Unknown strategies requested: {sorted(unknown)}")
        self.strategies = tuple(strategies)
        if n_jobs is not None and n_jobs < 0:
            raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
        self.n_jobs = n_jobs
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.store_max_bytes = store_max_bytes
        self.single_flight = single_flight
        self.progress = progress
        if benchmarks is not None:
            self.benchmarks = list(benchmarks)
        else:
            self.benchmarks = generate_benchmark_suite(
                count=self.preset.n_applications,
                base_seed=self.preset.base_seed,
                config=self.preset.benchmark_config(),
                process_counts=self.preset.process_counts,
            )
        self._cache: Dict[Tuple[float, float], SettingResult] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # worker-pool lifecycle (parallel sweeps only)
    # ------------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        """Lazily created worker pool shared by every setting of the sweep.

        One executor per *experiment* (not per setting) means the
        initializer ships the benchmark suite exactly once per worker for
        the whole sweep.  The pool is released by :meth:`close` (the
        experiment doubles as a context manager) or, failing that, by a GC
        finalizer.
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs if self.n_jobs else None,
                initializer=_init_worker,
                initargs=(
                    self.benchmarks,
                    self.preset,
                    self.strategies,
                    self.store_dir,
                    self.store_max_bytes,
                    self.single_flight,
                ),
            )
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._executor
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (no-op when serial or already closed)."""
        if self._executor is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        executor, self._executor = self._executor, None
        executor.shutdown()

    def __enter__(self) -> "AcceptanceExperiment":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run_setting(self, ser: float, hpd: float) -> SettingResult:
        """Run all strategies for one (SER, HPD) technology setting."""
        key = (ser, hpd)
        if key in self._cache:
            return self._cache[key]
        setting = SettingResult(ser=ser, hpd=hpd, results={name: [] for name in self.strategies})
        count = len(self.benchmarks)
        if self.n_jobs is None or self.n_jobs == 1:
            iterator = (
                _evaluate_benchmark_setting(
                    benchmark, ser, hpd, self.preset, self.strategies,
                    self.store_dir, self.store_max_bytes, self.single_flight,
                )
                for benchmark in self.benchmarks
            )
        else:
            # The pool initializer ships the benchmark suite (and the shared
            # configuration) once per worker process for the whole sweep; the
            # tasks themselves are (index, ser, hpd) scalar triples.
            # ``pool.map`` preserves submission order, so results stay
            # bit-identical to serial.
            iterator = self._pool().map(
                _evaluate_indexed_setting,
                [(index, ser, hpd) for index in range(count)],
            )
        # Results are folded in (and progress emitted) as each benchmark
        # completes; ``pool.map`` preserves submission order, so collection
        # stays bit-identical to serial.
        for completed, (results, disk) in enumerate(iterator, start=1):
            for name in self.strategies:
                setting.results[name].append(results[name])
            setting.disk_hits += disk["disk_hits"]
            setting.disk_entries_loaded += disk["disk_entries_loaded"]
            if self.progress is not None:
                snapshot = setting.cache_summary()
                snapshot.update(
                    {
                        "event": "setting_progress",
                        "ser": ser,
                        "hpd": hpd,
                        "completed": completed,
                        "total": count,
                    }
                )
                self.progress(snapshot)
        self._cache[key] = setting
        return setting

    def cache_report(self) -> Dict[str, float]:
        """Aggregate engine counters over every setting run so far.

        See :meth:`SettingResult.cache_summary` for the field semantics.
        """
        hits = misses = search_evaluations = points_computed = 0
        disk_hits = disk_entries_loaded = 0
        batch_rows = batch_cold_rows = 0
        for setting in self._cache.values():
            summary = setting.cache_summary()
            hits += summary["hits"]
            misses += summary["misses"]
            search_evaluations += summary["search_evaluations"]
            points_computed += summary["points_computed"]
            disk_hits += summary["disk_hits"]
            disk_entries_loaded += summary["disk_entries_loaded"]
            batch_rows += summary["batch_rows"]
            batch_cold_rows += summary["batch_cold_rows"]
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "search_evaluations": search_evaluations,
            "points_computed": points_computed,
            "hit_rate": hits / lookups if lookups else 0.0,
            "disk_hits": disk_hits,
            "disk_entries_loaded": disk_entries_loaded,
            "batch_rows": batch_rows,
            "batch_cold_rows": batch_cold_rows,
            "batch_fill_rate": batch_cold_rows / batch_rows if batch_rows else 0.0,
        }

    # ------------------------------------------------------------------
    def hpd_sweep(
        self,
        ser: float,
        hpd_values: Sequence[float],
        max_cost: Optional[float],
    ) -> Dict[float, Dict[str, float]]:
        """Acceptance percentages per HPD value (Fig. 6a series)."""
        return {
            hpd: self.run_setting(ser, hpd).acceptance_percent(max_cost)
            for hpd in hpd_values
        }

    def ser_sweep(
        self,
        hpd: float,
        ser_values: Sequence[float],
        max_cost: Optional[float],
    ) -> Dict[float, Dict[str, float]]:
        """Acceptance percentages per SER value (Fig. 6c / 6d series)."""
        return {
            ser: self.run_setting(ser, hpd).acceptance_percent(max_cost)
            for ser in ser_values
        }

    def cost_table(
        self,
        ser: float,
        hpd_values: Sequence[float],
        arc_values: Sequence[float],
    ) -> Dict[float, Dict[float, Dict[str, float]]]:
        """Acceptance per (HPD, ArC) pair (the Fig. 6b table)."""
        table: Dict[float, Dict[float, Dict[str, float]]] = {}
        for hpd in hpd_values:
            setting = self.run_setting(ser, hpd)
            table[hpd] = {
                arc: setting.acceptance_percent(arc) for arc in arc_values
            }
        return table


# ----------------------------------------------------------------------
# One function per figure
# ----------------------------------------------------------------------
def figure_6a_hpd_sweep(
    experiment: Optional[AcceptanceExperiment] = None,
    ser: float = SER_MEDIUM,
    hpd_values: Sequence[float] = PAPER_HPD_VALUES,
    max_cost: float = 20.0,
) -> Dict[float, Dict[str, float]]:
    """Fig. 6a: % accepted architectures vs. HPD (SER=1e-11, ArC=20)."""
    experiment = experiment if experiment is not None else AcceptanceExperiment()
    return experiment.hpd_sweep(ser, hpd_values, max_cost)


def figure_6b_cost_table(
    experiment: Optional[AcceptanceExperiment] = None,
    ser: float = SER_MEDIUM,
    hpd_values: Sequence[float] = PAPER_HPD_VALUES,
    arc_values: Sequence[float] = PAPER_ARC_VALUES,
) -> Dict[float, Dict[float, Dict[str, float]]]:
    """Fig. 6b: % accepted for each (HPD, ArC) combination at SER=1e-11."""
    experiment = experiment if experiment is not None else AcceptanceExperiment()
    return experiment.cost_table(ser, hpd_values, arc_values)


def figure_6c_ser_sweep(
    experiment: Optional[AcceptanceExperiment] = None,
    hpd: float = 5.0,
    ser_values: Sequence[float] = PAPER_SER_VALUES,
    max_cost: float = 20.0,
) -> Dict[float, Dict[str, float]]:
    """Fig. 6c: % accepted architectures vs. SER for HPD=5 %, ArC=20."""
    experiment = experiment if experiment is not None else AcceptanceExperiment()
    return experiment.ser_sweep(hpd, ser_values, max_cost)


def figure_6d_ser_sweep(
    experiment: Optional[AcceptanceExperiment] = None,
    hpd: float = 100.0,
    ser_values: Sequence[float] = PAPER_SER_VALUES,
    max_cost: float = 20.0,
) -> Dict[float, Dict[str, float]]:
    """Fig. 6d: % accepted architectures vs. SER for HPD=100 %, ArC=20."""
    experiment = experiment if experiment is not None else AcceptanceExperiment()
    return experiment.ser_sweep(hpd, ser_values, max_cost)


# ----------------------------------------------------------------------
# Text rendering helpers used by the benchmark harness and the CLI
# ----------------------------------------------------------------------
def render_hpd_sweep(sweep: Mapping[float, Mapping[str, float]], title: str) -> str:
    """Render a HPD (or SER) sweep as a text table, one row per setting."""
    headers = ["setting"] + list(STRATEGIES)
    rows = []
    for setting, values in sweep.items():
        label = f"{setting:g}"
        rows.append([label] + [values.get(strategy, 0.0) for strategy in STRATEGIES])
    return format_table(headers, rows, title=title)


def render_cost_table(
    table: Mapping[float, Mapping[float, Mapping[str, float]]], title: str
) -> str:
    """Render the Fig. 6b style table: rows are (HPD, ArC), columns strategies."""
    headers = ["HPD %", "ArC"] + list(STRATEGIES)
    rows = []
    for hpd, per_arc in table.items():
        for arc, values in per_arc.items():
            rows.append(
                [f"{hpd:g}", f"{arc:g}"]
                + [values.get(strategy, 0.0) for strategy in STRATEGIES]
            )
    return format_table(headers, rows, title=title)
