"""Fault-injection substrate.

The paper obtains the per-process failure probabilities ``p_ijh`` from fault
injection tools (GOOFI, FPGA-based SEU injection).  Those tools and their
target hardware are not available here, so this package provides the closest
synthetic equivalent: a small abstract processor model whose sequential state
elements can be selectively hardened, plus a Monte-Carlo fault-injection
campaign that estimates the probability that an execution of a given length
fails.  The analytic fault model (:mod:`repro.core.fault_model`) and the
campaign agree within statistical error, which the test-suite checks.
"""

from __future__ import annotations

from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.injection import FaultInjectionCampaign, InjectionResult
from repro.faults.processor import ProcessorModel

__all__ = [
    "FaultInjectionCampaign",
    "InjectionResult",
    "ProcessorModel",
    "SelectiveHardeningPlan",
    "apply_selective_hardening",
]
