"""Selective hardening plans: turning a hardening *level* into a processor.

Hardware hardening in the paper is abstracted as a ladder of h-versions with
decreasing failure probabilities and increasing WCETs and costs.  This module
provides the missing link to the processor substrate: a
:class:`SelectiveHardeningPlan` describes, for each hardening level, which
fraction of the sequential elements is protected (in the spirit of the
selective flip-flop hardening of Zhang et al. [21] and the early-design-stage
selection of Hayes/Polian/Becker [6]) and how much the processor slows down.

``apply_selective_hardening`` then produces the concrete
:class:`~repro.faults.processor.ProcessorModel` for a level, which the
fault-injection campaign can exercise to estimate ``p_ijh`` empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.exceptions import ModelError
from repro.faults.processor import ProcessorModel
from repro.utils.validation import require_in_unit_interval, require_positive


@dataclass(frozen=True)
class HardeningLevelSpec:
    """Physical description of one hardening level."""

    level: int
    hardened_fraction: float
    slowdown_factor: float
    hardening_efficiency: float = 0.999

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ModelError(f"Hardening level must be >= 1, got {self.level}")
        require_in_unit_interval(self.hardened_fraction, "hardened_fraction")
        require_positive(self.slowdown_factor, "slowdown_factor")
        if self.slowdown_factor < 1.0:
            raise ModelError("slowdown_factor must be >= 1")
        require_in_unit_interval(self.hardening_efficiency, "hardening_efficiency")


class SelectiveHardeningPlan:
    """A ladder of hardening levels for one processor.

    Levels must be consecutive integers starting at 1, with monotonically
    non-decreasing hardened fractions and slowdown factors — a plan in which
    a higher level protects fewer flip-flops or runs faster than a lower one
    would be physically inconsistent with the paper's model.
    """

    def __init__(self, specs: Sequence[HardeningLevelSpec]) -> None:
        if not specs:
            raise ModelError("A hardening plan needs at least one level")
        ordered = sorted(specs, key=lambda spec: spec.level)
        expected = list(range(1, len(ordered) + 1))
        if [spec.level for spec in ordered] != expected:
            raise ModelError(
                "Hardening levels must be consecutive integers starting at 1, got "
                f"{[spec.level for spec in ordered]}"
            )
        for earlier, later in zip(ordered, ordered[1:]):
            if later.hardened_fraction < earlier.hardened_fraction:
                raise ModelError(
                    f"Level {later.level} protects fewer flip-flops than level "
                    f"{earlier.level}"
                )
            if later.slowdown_factor < earlier.slowdown_factor:
                raise ModelError(
                    f"Level {later.level} is faster than level {earlier.level}; "
                    "hardening cannot speed the processor up"
                )
        self._specs: Dict[int, HardeningLevelSpec] = {spec.level: spec for spec in ordered}

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[int]:
        return sorted(self._specs)

    def spec(self, level: int) -> HardeningLevelSpec:
        try:
            return self._specs[level]
        except KeyError as exc:
            raise ModelError(
                f"Hardening plan has no level {level}; available: {self.levels}"
            ) from exc

    @classmethod
    def linear(
        cls,
        levels: int,
        max_hardened_fraction: float = 0.99,
        max_slowdown_percent: float = 25.0,
        hardening_efficiency: float = 0.999,
    ) -> "SelectiveHardeningPlan":
        """Build a plan whose protection and slowdown grow linearly with level.

        Level 1 applies no extra protection (the baseline node); the top level
        protects ``max_hardened_fraction`` of the flip-flops and slows the
        clock by ``max_slowdown_percent`` — mirroring the HPD model of the
        synthetic experiments.
        """
        if levels < 1:
            raise ModelError(f"levels must be >= 1, got {levels}")
        require_in_unit_interval(max_hardened_fraction, "max_hardened_fraction")
        specs = []
        for level in range(1, levels + 1):
            if levels == 1:
                share = 0.0
            else:
                share = (level - 1) / (levels - 1)
            specs.append(
                HardeningLevelSpec(
                    level=level,
                    hardened_fraction=max_hardened_fraction * share,
                    slowdown_factor=1.0 + (max_slowdown_percent / 100.0) * share,
                    hardening_efficiency=hardening_efficiency,
                )
            )
        return cls(specs)


def apply_selective_hardening(
    processor: ProcessorModel, plan: SelectiveHardeningPlan, level: int
) -> ProcessorModel:
    """Produce the processor variant corresponding to one hardening level."""
    spec = plan.spec(level)
    hardened = processor.with_hardening(
        hardened_fraction=spec.hardened_fraction,
        hardening_efficiency=spec.hardening_efficiency,
    )
    return hardened.with_slowdown(spec.slowdown_factor)
