"""Monte-Carlo fault-injection campaign.

This is the synthetic stand-in for the fault-injection tools the paper uses
to measure process failure probabilities (GOOFI [1], FPGA-based SEU injection
[18]).  A campaign repeatedly "executes" a process of a given WCET on a
:class:`~repro.faults.processor.ProcessorModel` and records whether at least
one program-visible error occurred; the observed failure rate estimates
``p_ijh`` and converges (the tests check this) to the analytic value of
:meth:`ProcessorModel.failure_probability`.

Instead of iterating over every clock cycle (billions of iterations), each
run samples the *number* of error events from the binomial distribution over
the cycle count — statistically identical and fast enough to profile whole
applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.core.application import Application
from repro.core.architecture import NodeType
from repro.core.exceptions import ModelError
from repro.core.profile import ExecutionProfile
from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.processor import ProcessorModel
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class InjectionResult:
    """Outcome of one fault-injection campaign for one (process, node, level)."""

    runs: int
    failures: int

    @property
    def failure_probability(self) -> float:
        """Point estimate of the probability that one execution fails."""
        if self.runs == 0:
            return 0.0
        return self.failures / self.runs

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval of the estimate."""
        if self.runs == 0:
            return (0.0, 1.0)
        p = self.failure_probability
        half_width = z * sqrt(max(p * (1.0 - p), 1e-12) / self.runs)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


class FaultInjectionCampaign:
    """Monte-Carlo estimation of process failure probabilities.

    Parameters
    ----------
    runs:
        Number of simulated executions per estimate.
    seed:
        Seed of the NumPy random generator (campaigns are reproducible).
    """

    def __init__(self, runs: int = 10_000, seed: Optional[int] = 12345) -> None:
        if runs < 1:
            raise ModelError(f"runs must be >= 1, got {runs}")
        self.runs = runs
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def inject(self, processor: ProcessorModel, wcet_ms: float) -> InjectionResult:
        """Estimate the failure probability of one execution of ``wcet_ms``."""
        require_positive(wcet_ms, "wcet_ms")
        per_cycle = processor.error_probability_per_cycle()
        cycles = processor.cycles_for(wcet_ms)
        if per_cycle <= 0.0:
            return InjectionResult(runs=self.runs, failures=0)
        # One binomial draw per simulated execution: the number of
        # program-visible error events over the cycle count.  The execution
        # fails as soon as at least one event occurred.
        events = self._rng.binomial(cycles, per_cycle, size=self.runs)
        failures = int(np.count_nonzero(events))
        return InjectionResult(runs=self.runs, failures=failures)

    # ------------------------------------------------------------------
    def profile_application(
        self,
        application: Application,
        node_types: Iterable[NodeType],
        processors: Mapping[str, ProcessorModel],
        plan: SelectiveHardeningPlan,
        baseline_wcets: Optional[Mapping[str, float]] = None,
    ) -> ExecutionProfile:
        """Build an :class:`ExecutionProfile` entirely from injection campaigns.

        Parameters
        ----------
        processors:
            One baseline (unhardened) processor model per node type name.
        plan:
            Selective hardening plan shared by all node types; level ``h`` of
            a node type is obtained by applying the plan to its baseline
            processor.
        baseline_wcets:
            Optional per-process WCETs on the reference node; falls back to
            the processes' ``nominal_wcet``.
        """
        profile = ExecutionProfile()
        for process in application.processes():
            if baseline_wcets is not None and process.name in baseline_wcets:
                baseline = baseline_wcets[process.name]
            elif process.nominal_wcet is not None:
                baseline = process.nominal_wcet
            else:
                raise ModelError(
                    f"Process {process.name} has no nominal WCET and no entry in "
                    "baseline_wcets"
                )
            for node_type in node_types:
                if node_type.name not in processors:
                    raise ModelError(
                        f"No processor model supplied for node type {node_type.name}"
                    )
                baseline_processor = processors[node_type.name]
                for level in node_type.hardening_levels:
                    hardened = apply_selective_hardening(baseline_processor, plan, level)
                    slowdown = plan.spec(level).slowdown_factor
                    wcet = baseline * node_type.speed_factor * slowdown
                    estimate = self.inject(hardened, wcet)
                    profile.add_entry(
                        process.name,
                        node_type.name,
                        level,
                        wcet,
                        estimate.failure_probability,
                    )
        return profile
