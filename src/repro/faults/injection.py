"""Monte-Carlo fault-injection campaign.

This is the synthetic stand-in for the fault-injection tools the paper uses
to measure process failure probabilities (GOOFI [1], FPGA-based SEU injection
[18]).  A campaign repeatedly "executes" a process of a given WCET on a
:class:`~repro.faults.processor.ProcessorModel` and records whether at least
one program-visible error occurred; the observed failure rate estimates
``p_ijh`` and converges (the tests check this) to the analytic value of
:meth:`ProcessorModel.failure_probability`.

Instead of iterating over every clock cycle (billions of iterations), each
run samples the *number* of error events from the binomial distribution over
the cycle count — statistically identical and fast enough to profile whole
applications.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from math import sqrt
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.core.application import Application
from repro.core.architecture import NodeType
from repro.core.exceptions import ModelError
from repro.core.profile import ExecutionProfile
from repro.faults.hardening import SelectiveHardeningPlan, apply_selective_hardening
from repro.faults.processor import ProcessorModel
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class InjectionResult:
    """Outcome of one fault-injection campaign for one (process, node, level)."""

    runs: int
    failures: int

    @property
    def failure_probability(self) -> float:
        """Point estimate of the probability that one execution fails."""
        if self.runs == 0:
            return 0.0
        return self.failures / self.runs

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval of the estimate."""
        if self.runs == 0:
            return (0.0, 1.0)
        p = self.failure_probability
        half_width = z * sqrt(max(p * (1.0 - p), 1e-12) / self.runs)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


class FaultInjectionCampaign:
    """Monte-Carlo estimation of process failure probabilities.

    Parameters
    ----------
    runs:
        Number of simulated executions per estimate.
    seed:
        Seed of the NumPy random generator (campaigns are reproducible).
    """

    def __init__(self, runs: int = 10_000, seed: Optional[int] = 12345) -> None:
        if runs < 1:
            raise ModelError(f"runs must be >= 1, got {runs}")
        self.runs = runs
        self._rng = np.random.default_rng(seed)
        # Root entropy of the per-estimate child streams.  A seeded campaign
        # derives it from the seed; an unseeded one draws fresh entropy once
        # so its own estimates remain mutually independent.
        self._entropy = np.random.SeedSequence(seed).entropy

    # ------------------------------------------------------------------
    def inject(self, processor: ProcessorModel, wcet_ms: float) -> InjectionResult:
        """Estimate the failure probability of one execution of ``wcet_ms``.

        Draws from the campaign's shared stream: repeated ``inject`` calls on
        one campaign are *sequential* (each depends on how many calls came
        before).  :meth:`profile_application` instead derives an independent
        child stream per estimate, so whole-application profiles do not
        depend on iteration order.
        """
        return self._inject(self._rng, processor, wcet_ms)

    def _inject(
        self, rng: np.random.Generator, processor: ProcessorModel, wcet_ms: float
    ) -> InjectionResult:
        require_positive(wcet_ms, "wcet_ms")
        per_cycle = processor.error_probability_per_cycle()
        cycles = processor.cycles_for(wcet_ms)
        if per_cycle <= 0.0:
            return InjectionResult(runs=self.runs, failures=0)
        # One binomial draw per simulated execution: the number of
        # program-visible error events over the cycle count.  The execution
        # fails as soon as at least one event occurred.
        events = rng.binomial(cycles, per_cycle, size=self.runs)
        failures = int(np.count_nonzero(events))
        return InjectionResult(runs=self.runs, failures=failures)

    def _stream(self, process: str, node_type: str, level: int) -> np.random.Generator:
        """Independent child stream for one (process, node_type, level) estimate.

        ``SeedSequence.spawn`` appends a child index to the parent's
        ``spawn_key``; deriving that key from the *identity* of the estimate
        (instead of a running counter) gives the order-independent version of
        spawning: reordering the node-type library, permuting processes or
        adding hardening levels never perturbs any other estimate's stream.
        """
        digest = hashlib.sha256(
            f"{process}\x00{node_type}\x00{level}".encode("utf-8")
        ).digest()
        spawn_key = int.from_bytes(digest[:8], "big")
        child = np.random.SeedSequence(entropy=self._entropy, spawn_key=(spawn_key,))
        return np.random.default_rng(child)

    # ------------------------------------------------------------------
    def profile_application(
        self,
        application: Application,
        node_types: Iterable[NodeType],
        processors: Mapping[str, ProcessorModel],
        plan: SelectiveHardeningPlan,
        baseline_wcets: Optional[Mapping[str, float]] = None,
    ) -> ExecutionProfile:
        """Build an :class:`ExecutionProfile` entirely from injection campaigns.

        Parameters
        ----------
        processors:
            One baseline (unhardened) processor model per node type name.
        plan:
            Selective hardening plan shared by all node types; level ``h`` of
            a node type is obtained by applying the plan to its baseline
            processor.
        baseline_wcets:
            Optional per-process WCETs on the reference node; falls back to
            the processes' ``nominal_wcet``.

        Every (process, node type, level) estimate draws from its own child
        stream derived from the campaign seed and the estimate's identity
        (see :meth:`_stream`), so the profile is independent of iteration
        order: permuting the node-type library or adding a hardening level
        never changes any other entry.
        """
        # A generator argument would be exhausted after the first process,
        # silently dropping every later process's entries — materialize once.
        node_type_list = list(node_types)
        profile = ExecutionProfile()
        for process in application.processes():
            if baseline_wcets is not None and process.name in baseline_wcets:
                baseline = baseline_wcets[process.name]
            elif process.nominal_wcet is not None:
                baseline = process.nominal_wcet
            else:
                raise ModelError(
                    f"Process {process.name} has no nominal WCET and no entry in "
                    "baseline_wcets"
                )
            for node_type in node_type_list:
                if node_type.name not in processors:
                    raise ModelError(
                        f"No processor model supplied for node type {node_type.name}"
                    )
                baseline_processor = processors[node_type.name]
                for level in node_type.hardening_levels:
                    hardened = apply_selective_hardening(baseline_processor, plan, level)
                    slowdown = plan.spec(level).slowdown_factor
                    wcet = baseline * node_type.speed_factor * slowdown
                    rng = self._stream(process.name, node_type.name, level)
                    estimate = self._inject(rng, hardened, wcet)
                    profile.add_entry(
                        process.name,
                        node_type.name,
                        level,
                        wcet,
                        estimate.failure_probability,
                    )
        return profile
