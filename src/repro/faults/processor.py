"""Abstract processor model used by the fault-injection campaign.

The model is intentionally simple — it captures exactly the quantities that
matter for transient-fault analysis at the granularity the paper works at:

* a population of sequential state elements (flip-flops/latches), each of
  which can be upset by a particle strike during a clock cycle,
* a raw upset rate per flip-flop per cycle (a property of the fabrication
  technology and the environment),
* an architectural derating factor: the fraction of upsets that actually
  propagate to a program-visible error (many upsets hit dead state), and
* a set of *hardened* flip-flops that mask upsets with a given efficiency
  (selective hardening in the style of Zhang et al. [21]).

The per-cycle probability that an execution step produces a program-visible
error follows directly from these quantities; the Monte-Carlo campaign in
:mod:`repro.faults.injection` samples it, and
:meth:`ProcessorModel.error_probability_per_cycle` provides the closed form
for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import ModelError
from repro.utils.validation import require_in_unit_interval, require_positive


@dataclass(frozen=True)
class ProcessorModel:
    """A processor described by its soft-error-relevant parameters.

    Parameters
    ----------
    name:
        Identifier used in reports.
    flip_flops:
        Number of sequential state elements exposed to particle strikes.
    upset_rate_per_ff_cycle:
        Probability that one flip-flop is upset during one clock cycle.
    clock_mhz:
        Clock frequency; converts execution times (ms) into cycle counts.
    architectural_derating:
        Fraction of upsets that become program-visible errors (0..1).
    hardened_fraction:
        Fraction of flip-flops protected by hardening (0..1).
    hardening_efficiency:
        Probability that a protected flip-flop masks an upset (0..1).
    """

    name: str
    flip_flops: int
    upset_rate_per_ff_cycle: float
    clock_mhz: float = 100.0
    architectural_derating: float = 0.1
    hardened_fraction: float = 0.0
    hardening_efficiency: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("ProcessorModel name must be a non-empty string")
        if self.flip_flops < 1:
            raise ModelError(f"flip_flops must be >= 1, got {self.flip_flops}")
        require_in_unit_interval(self.upset_rate_per_ff_cycle, "upset_rate_per_ff_cycle")
        require_positive(self.clock_mhz, "clock_mhz")
        require_in_unit_interval(self.architectural_derating, "architectural_derating")
        require_in_unit_interval(self.hardened_fraction, "hardened_fraction")
        require_in_unit_interval(self.hardening_efficiency, "hardening_efficiency")

    # ------------------------------------------------------------------
    def cycles_for(self, wcet_ms: float) -> int:
        """Number of clock cycles executed during ``wcet_ms`` milliseconds."""
        require_positive(wcet_ms, "wcet_ms")
        return max(1, int(round(wcet_ms * 1e-3 * self.clock_mhz * 1e6)))

    def error_probability_per_cycle(self) -> float:
        """Probability that one cycle produces a program-visible error.

        An upset in an *unhardened* flip-flop becomes an error with the
        architectural derating probability; an upset in a *hardened* flip-flop
        additionally has to escape the hardening (probability
        ``1 - hardening_efficiency``).
        """
        unhardened_ffs = self.flip_flops * (1.0 - self.hardened_fraction)
        hardened_ffs = self.flip_flops * self.hardened_fraction
        effective_unhardened = unhardened_ffs * self.upset_rate_per_ff_cycle
        effective_hardened = (
            hardened_ffs
            * self.upset_rate_per_ff_cycle
            * (1.0 - self.hardening_efficiency)
        )
        rate = (effective_unhardened + effective_hardened) * self.architectural_derating
        return min(1.0, rate)

    def failure_probability(self, wcet_ms: float) -> float:
        """Analytic probability that an execution of ``wcet_ms`` fails."""
        per_cycle = self.error_probability_per_cycle()
        cycles = self.cycles_for(wcet_ms)
        if per_cycle == 0.0:
            return 0.0
        return 1.0 - (1.0 - per_cycle) ** cycles

    # ------------------------------------------------------------------
    def with_hardening(
        self, hardened_fraction: float, hardening_efficiency: Optional[float] = None
    ) -> "ProcessorModel":
        """Return a copy with a different amount of selective hardening."""
        return ProcessorModel(
            name=self.name,
            flip_flops=self.flip_flops,
            upset_rate_per_ff_cycle=self.upset_rate_per_ff_cycle,
            clock_mhz=self.clock_mhz,
            architectural_derating=self.architectural_derating,
            hardened_fraction=hardened_fraction,
            hardening_efficiency=(
                hardening_efficiency
                if hardening_efficiency is not None
                else self.hardening_efficiency
            ),
        )

    def with_slowdown(self, slowdown_factor: float) -> "ProcessorModel":
        """Return a copy running at a reduced clock (hardening slows circuits)."""
        require_positive(slowdown_factor, "slowdown_factor")
        if slowdown_factor < 1.0:
            raise ModelError(
                f"slowdown_factor must be >= 1 (hardening never speeds up a "
                f"processor), got {slowdown_factor}"
            )
        return ProcessorModel(
            name=self.name,
            flip_flops=self.flip_flops,
            upset_rate_per_ff_cycle=self.upset_rate_per_ff_cycle,
            clock_mhz=self.clock_mhz / slowdown_factor,
            architectural_derating=self.architectural_derating,
            hardened_fraction=self.hardened_fraction,
            hardening_efficiency=self.hardening_efficiency,
        )
