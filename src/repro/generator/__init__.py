"""Synthetic benchmark generation (Section 7 experimental setup)."""

from __future__ import annotations

from repro.generator.benchmark import (
    BenchmarkConfig,
    SyntheticBenchmark,
    build_platform,
    generate_benchmark,
    generate_benchmark_suite,
)
from repro.generator.platform import NodeSpec, generate_node_specs
from repro.generator.taskgraph import generate_task_graph

__all__ = [
    "BenchmarkConfig",
    "NodeSpec",
    "SyntheticBenchmark",
    "build_platform",
    "generate_benchmark",
    "generate_benchmark_suite",
    "generate_node_specs",
    "generate_task_graph",
]
