"""Complete synthetic benchmark generation.

A *benchmark* bundles everything the design strategies need for one synthetic
application, mirroring the experimental setup of Section 7:

* a random task graph of 20 or 40 processes, WCETs of 1-20 ms on the fastest
  unhardened node,
* per-process recovery overheads of 1-10 % of the WCET,
* a reliability goal with ``gamma`` drawn between 7.5e-6 and 2.5e-5 per hour,
* a deadline derived from the graph structure only (independent of error
  rates and hardening performance degradation, as the paper requires),
* a library of node types with integer base costs and linear cost growth over
  five hardening levels.

The default base-cost range is 1-4 units instead of the paper's 1-6: with our
architecture enumeration and deadline calibration the narrower range
reproduces the published MAX-vs-ArC acceptance gradient (Fig. 6b); the wider
range merely pushes every MAX architecture above the cost caps and flattens
the comparison.  The paper's exact range remains available through
``BenchmarkConfig(base_cost_range=(1.0, 6.0))``; see EXPERIMENTS.md.

The fabrication technology (SER) and hardening performance degradation (HPD)
are *not* part of the benchmark: the same benchmark is re-evaluated under
different SER/HPD settings by :func:`build_platform`, exactly as the paper
sweeps those parameters over a fixed set of 150 applications.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.application import Application, TaskGraph
from repro.core.architecture import NodeType
from repro.core.exceptions import ModelError
from repro.core.fault_model import FaultModel, HardeningModel, TechnologyModel
from repro.core.profile import ExecutionProfile
from repro.generator.platform import NodeSpec, generate_node_specs
from repro.generator.taskgraph import generate_task_graph


@dataclass(frozen=True)
class BenchmarkConfig:
    """Tunable parameters of the synthetic benchmark generator."""

    n_processes: int = 20
    n_node_types: int = 4
    hardening_levels: int = 5
    wcet_range: Tuple[float, float] = (1.0, 20.0)
    message_time_range: Tuple[float, float] = (0.5, 2.0)
    recovery_overhead_fraction: Tuple[float, float] = (0.01, 0.10)
    gamma_range: Tuple[float, float] = (7.5e-6, 2.5e-5)
    base_cost_range: Tuple[float, float] = (1.0, 4.0)
    speed_factor_range: Tuple[float, float] = (1.0, 1.4)
    deadline_slack_range: Tuple[float, float] = (1.3, 2.1)
    reference_node_count: int = 2
    extra_edge_probability: float = 0.2
    clock_mhz: float = 1000.0
    #: Number of DAG layers; ``None`` defers to the generator's default
    #: (roughly ``sqrt(n_processes)``).  Controls parallelism width: few
    #: layers yield wide fork/join graphs, many layers yield long chains.
    layers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ModelError("n_processes must be >= 1")
        if self.hardening_levels < 1:
            raise ModelError("hardening_levels must be >= 1")
        if self.reference_node_count < 1:
            raise ModelError("reference_node_count must be >= 1")
        if self.layers is not None and self.layers < 1:
            raise ModelError(f"layers must be >= 1 when set, got {self.layers}")


@dataclass(frozen=True)
class SyntheticBenchmark:
    """One generated application plus its technology-independent platform."""

    name: str
    application: Application
    node_specs: List[NodeSpec]
    config: BenchmarkConfig
    seed: int

    def node_types(self, hardening_levels: Optional[int] = None) -> List[NodeType]:
        """Materialize the node-type library with the configured cost ladder."""
        levels = (
            hardening_levels
            if hardening_levels is not None
            else self.config.hardening_levels
        )
        return [spec.to_node_type(levels) for spec in self.node_specs]


def generate_benchmark(
    seed: int,
    config: Optional[BenchmarkConfig] = None,
    name: Optional[str] = None,
) -> SyntheticBenchmark:
    """Generate one synthetic benchmark reproducibly from ``seed``."""
    config = config if config is not None else BenchmarkConfig()
    rng = np.random.default_rng(seed)
    benchmark_name = name if name is not None else f"synthetic_{seed}"

    graph = generate_task_graph(
        name=f"{benchmark_name}_graph",
        n_processes=config.n_processes,
        rng=rng,
        wcet_range=config.wcet_range,
        message_time_range=config.message_time_range,
        layers=config.layers,
        extra_edge_probability=config.extra_edge_probability,
    )
    deadline = _derive_deadline(graph, rng, config)
    gamma = float(rng.uniform(*config.gamma_range))

    application = Application(
        name=benchmark_name,
        deadline=deadline,
        reliability_goal=1.0 - gamma,
        recovery_overhead=0.0,
        period=deadline,
    )
    application.add_graph(graph)
    for process in graph.processes:
        fraction = float(rng.uniform(*config.recovery_overhead_fraction))
        application.set_recovery_overhead(process.name, process.nominal_wcet * fraction)

    node_specs = generate_node_specs(
        n_node_types=config.n_node_types,
        rng=rng,
        base_cost_range=config.base_cost_range,
        speed_factor_range=config.speed_factor_range,
    )
    return SyntheticBenchmark(
        name=benchmark_name,
        application=application,
        node_specs=node_specs,
        config=config,
        seed=seed,
    )


def generate_benchmark_suite(
    count: int,
    base_seed: int = 1,
    config: Optional[BenchmarkConfig] = None,
    process_counts: Sequence[int] = (20, 40),
) -> List[SyntheticBenchmark]:
    """Generate a suite of benchmarks alternating over ``process_counts``.

    The paper's evaluation uses 150 applications with 20 and 40 processes;
    ``generate_benchmark_suite(150)`` reproduces that setup, while smaller
    counts are used by the test-suite and the per-figure benchmark harnesses.
    """
    if count < 1:
        raise ModelError(f"count must be >= 1, got {count}")
    config = config if config is not None else BenchmarkConfig()
    suite: List[SyntheticBenchmark] = []
    for index in range(count):
        n_processes = process_counts[index % len(process_counts)]
        instance_config = replace(config, n_processes=n_processes)
        suite.append(
            generate_benchmark(
                seed=base_seed + index,
                config=instance_config,
                name=f"synthetic_{base_seed + index}_{n_processes}p",
            )
        )
    return suite


def build_platform(
    benchmark: SyntheticBenchmark,
    ser_per_cycle: float,
    hardening_performance_degradation: float,
    ser_reduction_per_level: float = 100.0,
) -> Tuple[List[NodeType], ExecutionProfile]:
    """Derive the node types and execution profile for one SER/HPD setting.

    This is the step the paper repeats for each technology (SER) and each HPD
    value while keeping the applications fixed: WCETs grow with the hardening
    level according to HPD and failure probabilities shrink with the level
    according to the SER reduction factor.
    """
    config = benchmark.config
    node_types = benchmark.node_types()
    hardening = HardeningModel(
        levels=config.hardening_levels,
        ser_reduction_per_level=ser_reduction_per_level,
        performance_degradation=hardening_performance_degradation,
    )
    technology = TechnologyModel(ser_per_cycle=ser_per_cycle, clock_mhz=config.clock_mhz)
    fault_model = FaultModel(technology, hardening)
    profile = fault_model.build_profile(benchmark.application, node_types)
    return node_types, profile


def _derive_deadline(
    graph: TaskGraph, rng: np.random.Generator, config: BenchmarkConfig
) -> float:
    """Deadline derived from the graph structure only.

    The lower bound on any schedule is the larger of the critical path (with
    nominal WCETs and message times) and the total computation divided by the
    reference node count; the deadline multiplies that bound by a uniformly
    drawn slack factor.  Error rates and HPD play no role, per the paper.
    """
    critical_path = graph.critical_path_length(
        lambda process: graph.process(process).nominal_wcet, include_messages=True
    )
    total_work = sum(process.nominal_wcet for process in graph.processes)
    lower_bound = max(critical_path, total_work / config.reference_node_count)
    slack = float(rng.uniform(*config.deadline_slack_range))
    return lower_bound * slack
