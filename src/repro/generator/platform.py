"""Synthetic platform (node library) generation.

Section 7: "Initial processor costs (without hardening) have been generated
between 1 and 6 cost units.  We have assumed that the hardware cost increases
linearly with the hardening level."  Nodes also differ in speed so that the
architecture-selection loop ("fastest architecture first") has something to
choose between; the relative speed is drawn from a configurable range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.architecture import NodeType, linear_cost_node_type
from repro.core.exceptions import ModelError


@dataclass(frozen=True)
class NodeSpec:
    """Technology-independent description of one node type.

    The spec carries only what is decided when the benchmark is generated —
    base cost and relative speed.  The hardening ladder (number of levels,
    cost growth, performance degradation and SER reduction) is applied later
    by :func:`repro.generator.benchmark.build_platform`, because the paper
    varies HPD and SER while keeping the applications and platforms fixed.
    """

    name: str
    base_cost: float
    speed_factor: float

    def to_node_type(self, hardening_levels: int) -> NodeType:
        """Materialize the node type with a linear cost ladder."""
        return linear_cost_node_type(
            self.name,
            base_cost=self.base_cost,
            levels=hardening_levels,
            speed_factor=self.speed_factor,
        )


def generate_node_specs(
    n_node_types: int,
    rng: np.random.Generator,
    base_cost_range: tuple[float, float] = (1.0, 6.0),
    speed_factor_range: tuple[float, float] = (1.0, 1.4),
    name_prefix: str = "N",
) -> List[NodeSpec]:
    """Generate the library of available node types for one benchmark.

    Costs are drawn uniformly as integers in ``base_cost_range`` (the paper
    uses 1-6 integer cost units); speed factors uniformly in
    ``speed_factor_range`` with the fastest node normalised to 1.0 so that
    process WCETs stated "on the fastest node" keep their meaning.
    """
    if n_node_types < 1:
        raise ModelError(f"n_node_types must be >= 1, got {n_node_types}")
    if base_cost_range[0] <= 0 or base_cost_range[1] < base_cost_range[0]:
        raise ModelError(f"Invalid base_cost_range {base_cost_range}")
    if speed_factor_range[0] <= 0 or speed_factor_range[1] < speed_factor_range[0]:
        raise ModelError(f"Invalid speed_factor_range {speed_factor_range}")

    costs = rng.integers(
        int(round(base_cost_range[0])), int(round(base_cost_range[1])) + 1, size=n_node_types
    )
    factors = rng.uniform(speed_factor_range[0], speed_factor_range[1], size=n_node_types)
    # Normalise so the fastest node has factor exactly at the lower bound of
    # the range: WCETs are defined on the fastest node.
    factors = factors / factors.min() * speed_factor_range[0]
    specs = [
        NodeSpec(
            name=f"{name_prefix}{index + 1}",
            base_cost=float(costs[index]),
            speed_factor=float(factors[index]),
        )
        for index in range(n_node_types)
    ]
    return specs
