"""Random task-graph generation.

The paper evaluates on synthetic applications of 20 and 40 processes produced
by an in-house generator.  We use a layered (a.k.a. "level-by-level") DAG
generator, the standard construction for scheduling benchmarks: processes are
distributed over consecutive layers and edges only go from earlier to later
layers, which guarantees acyclicity by construction while producing the
fork/join parallelism real control applications exhibit.

Every non-source process receives at least one predecessor from an earlier
layer so the graph is connected forward; additional edges are added with a
configurable probability to control the communication density.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.application import Message, Process, TaskGraph
from repro.core.exceptions import ModelError


def generate_task_graph(
    name: str,
    n_processes: int,
    rng: np.random.Generator,
    wcet_range: tuple[float, float] = (1.0, 20.0),
    message_time_range: tuple[float, float] = (0.5, 2.0),
    layers: Optional[int] = None,
    extra_edge_probability: float = 0.2,
    process_prefix: str = "P",
) -> TaskGraph:
    """Generate one layered random DAG.

    Parameters
    ----------
    name:
        Name of the produced :class:`TaskGraph`.
    n_processes:
        Number of processes; the paper uses 20 and 40.
    rng:
        NumPy random generator (the caller controls the seed).
    wcet_range:
        Uniform range of the nominal WCET of each process on the reference
        (fastest, unhardened) node, in milliseconds (paper: 1-20 ms).
    message_time_range:
        Uniform range of worst-case message transmission times on the bus.
    layers:
        Number of layers; defaults to roughly ``sqrt(n_processes)`` which
        yields graphs with both parallelism and dependency chains.
    extra_edge_probability:
        Probability of adding an extra edge between two processes of adjacent
        layers beyond the connectivity-guaranteeing ones.
    process_prefix:
        Prefix used for process names (``P1``, ``P2``, ...).
    """
    if n_processes < 1:
        raise ModelError(f"n_processes must be >= 1, got {n_processes}")
    if wcet_range[0] <= 0 or wcet_range[1] < wcet_range[0]:
        raise ModelError(f"Invalid wcet_range {wcet_range}")
    if message_time_range[0] < 0 or message_time_range[1] < message_time_range[0]:
        raise ModelError(f"Invalid message_time_range {message_time_range}")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise ModelError(
            f"extra_edge_probability must be in [0, 1], got {extra_edge_probability}"
        )

    n_layers = layers if layers is not None else max(1, int(round(np.sqrt(n_processes))))
    n_layers = min(n_layers, n_processes)

    graph = TaskGraph(name)
    layer_membership = _assign_layers(n_processes, n_layers, rng)

    names: List[str] = []
    for index in range(n_processes):
        wcet = float(rng.uniform(*wcet_range))
        process_name = f"{process_prefix}{index + 1}"
        graph.add_process(Process(process_name, nominal_wcet=wcet))
        names.append(process_name)

    message_counter = 0

    def add_edge(source_index: int, destination_index: int) -> None:
        nonlocal message_counter
        source = names[source_index]
        destination = names[destination_index]
        if graph.message_between(source, destination) is not None:
            return
        message_counter += 1
        transmission = float(rng.uniform(*message_time_range))
        graph.add_message(
            Message(
                name=f"m{message_counter}",
                source=source,
                destination=destination,
                transmission_time=transmission,
            )
        )

    # Connectivity edges: every process beyond the first layer gets one
    # predecessor picked uniformly from the previous layer.
    for layer in range(1, n_layers):
        previous_layer = [i for i in range(n_processes) if layer_membership[i] == layer - 1]
        current_layer = [i for i in range(n_processes) if layer_membership[i] == layer]
        for destination_index in current_layer:
            source_index = int(rng.choice(previous_layer))
            add_edge(source_index, destination_index)

    # Density edges between adjacent layers.
    for layer in range(1, n_layers):
        previous_layer = [i for i in range(n_processes) if layer_membership[i] == layer - 1]
        current_layer = [i for i in range(n_processes) if layer_membership[i] == layer]
        for source_index in previous_layer:
            for destination_index in current_layer:
                if rng.random() < extra_edge_probability:
                    add_edge(source_index, destination_index)

    return graph


def _assign_layers(
    n_processes: int, n_layers: int, rng: np.random.Generator
) -> List[int]:
    """Assign each process to a layer; every layer gets at least one process."""
    membership = [index % n_layers for index in range(n_processes)]
    # Shuffle the tail beyond the guaranteed one-per-layer assignment so layer
    # sizes vary between instances.
    tail = membership[n_layers:]
    if tail:
        shuffled = rng.permutation(n_layers)
        membership[n_layers:] = [int(shuffled[i % n_layers]) for i in range(len(tail))]
    return sorted(membership)
