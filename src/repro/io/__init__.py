"""Serialization (JSON) and export (Graphviz DOT) helpers."""

from __future__ import annotations

from repro.io.dot import schedule_to_dot, task_graph_to_dot
from repro.io.serialization import (
    application_from_dict,
    application_to_dict,
    design_result_to_dict,
    load_problem,
    node_types_from_dict,
    node_types_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_problem,
)

__all__ = [
    "application_from_dict",
    "application_to_dict",
    "design_result_to_dict",
    "load_problem",
    "node_types_from_dict",
    "node_types_to_dict",
    "profile_from_dict",
    "profile_to_dict",
    "save_problem",
    "schedule_to_dot",
    "task_graph_to_dot",
]
