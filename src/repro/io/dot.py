"""Graphviz DOT export of task graphs and schedules.

The exports are plain strings in DOT syntax so they can be rendered with any
Graphviz installation (none is required by the library itself).  Task graphs
render as directed graphs with WCET annotations; schedules render as a
cluster per node listing the execution windows in start-time order.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.application import TaskGraph
from repro.scheduling.schedule import Schedule


def task_graph_to_dot(
    graph: TaskGraph,
    execution_time: Optional[Callable[[str], float]] = None,
) -> str:
    """Render a task graph as a DOT digraph.

    Parameters
    ----------
    execution_time:
        Optional callable returning an execution time to annotate each
        process with; falls back to the process ``nominal_wcet`` when present.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", "  node [shape=ellipse];"]
    for process in graph.processes:
        if execution_time is not None:
            label = f"{process.name}\\n{execution_time(process.name):.1f} ms"
        elif process.nominal_wcet is not None:
            label = f"{process.name}\\n{process.nominal_wcet:.1f} ms"
        else:
            label = process.name
        lines.append(f'  "{process.name}" [label="{label}"];')
    for message in graph.messages:
        label = f"{message.name} ({message.transmission_time:.1f} ms)"
        lines.append(
            f'  "{message.source}" -> "{message.destination}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule, title: str = "schedule") -> str:
    """Render a schedule as one DOT cluster per node plus a bus cluster."""
    lines = [f'digraph "{title}" {{', "  rankdir=LR;", "  node [shape=box];"]
    for index, node in enumerate(schedule.nodes()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{node} (k={schedule.reexecutions.get(node, 0)})";')
        previous = None
        for entry in schedule.processes_on(node):
            identifier = f"{node}_{entry.process}"
            label = f"{entry.process}\\n[{entry.start:.1f}, {entry.finish:.1f}]"
            lines.append(f'    "{identifier}" [label="{label}"];')
            if previous is not None:
                lines.append(f'    "{previous}" -> "{identifier}" [style=invis];')
            previous = identifier
        lines.append("  }")
    if schedule.messages:
        lines.append(f"  subgraph cluster_bus {{")
        lines.append('    label="bus";')
        previous = None
        for entry in schedule.messages:
            identifier = f"bus_{entry.message}"
            label = f"{entry.message}\\n[{entry.start:.1f}, {entry.finish:.1f}]"
            lines.append(f'    "{identifier}" [label="{label}"];')
            if previous is not None:
                lines.append(f'    "{previous}" -> "{identifier}" [style=invis];')
            previous = identifier
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
