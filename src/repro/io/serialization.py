"""JSON serialization of problem instances and results.

A *problem instance* is everything the design strategies need: the
application (task graphs, deadline, reliability goal, recovery overheads),
the node-type library (h-versions with costs) and the execution profile
(``t_ijh``/``p_ijh`` tables).  The functions below convert those objects to
and from plain JSON-compatible dictionaries, so benchmarks can be stored on
disk, shared and re-loaded bit-exactly (all times/probabilities are plain
floats).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.core.application import Application, Message, Process
from repro.core.architecture import HVersion, NodeType
from repro.core.evaluation import DesignResult
from repro.core.exceptions import ModelError
from repro.core.profile import ExecutionProfile

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------
def application_to_dict(application: Application) -> Dict:
    """Convert an application to a JSON-compatible dictionary."""
    graphs = []
    for graph in application.graphs:
        graphs.append(
            {
                "name": graph.name,
                "processes": [
                    {
                        "name": process.name,
                        "nominal_wcet": process.nominal_wcet,
                        "criticality": process.criticality,
                    }
                    for process in graph.processes
                ],
                "messages": [
                    {
                        "name": message.name,
                        "source": message.source,
                        "destination": message.destination,
                        "transmission_time": message.transmission_time,
                    }
                    for message in graph.messages
                ],
            }
        )
    return {
        "name": application.name,
        "deadline": application.deadline,
        "period": application.period,
        "reliability_goal": application.reliability_goal,
        "time_unit": application.time_unit,
        "recovery_overhead": application.recovery_overhead,
        "recovery_overheads": {
            process: application.recovery_overhead_of(process)
            for process in application.process_names()
        },
        "graphs": graphs,
    }


def application_from_dict(data: Mapping) -> Application:
    """Rebuild an application from :func:`application_to_dict` output."""
    try:
        application = Application(
            name=data["name"],
            deadline=data["deadline"],
            reliability_goal=data["reliability_goal"],
            recovery_overhead=data.get("recovery_overhead", 0.0),
            period=data.get("period"),
            time_unit=data.get("time_unit", 3_600_000.0),
        )
        for graph_data in data["graphs"]:
            graph = application.new_graph(graph_data["name"])
            for process_data in graph_data["processes"]:
                graph.add_process(
                    Process(
                        name=process_data["name"],
                        nominal_wcet=process_data.get("nominal_wcet"),
                        criticality=process_data.get("criticality", 1.0),
                    )
                )
            for message_data in graph_data["messages"]:
                graph.add_message(
                    Message(
                        name=message_data["name"],
                        source=message_data["source"],
                        destination=message_data["destination"],
                        transmission_time=message_data.get("transmission_time", 0.0),
                    )
                )
        for process, overhead in data.get("recovery_overheads", {}).items():
            application.set_recovery_overhead(process, overhead)
    except KeyError as exc:
        raise ModelError(f"Application dictionary is missing key {exc}") from exc
    return application


# ----------------------------------------------------------------------
# Node types
# ----------------------------------------------------------------------
def node_types_to_dict(node_types: Sequence[NodeType]) -> List[Dict]:
    """Convert a node-type library to a JSON-compatible list."""
    return [
        {
            "name": node_type.name,
            "speed_factor": node_type.speed_factor,
            "h_versions": [
                {"level": level, "cost": node_type.cost(level)}
                for level in node_type.hardening_levels
            ],
        }
        for node_type in node_types
    ]


def node_types_from_dict(data: Sequence[Mapping]) -> List[NodeType]:
    """Rebuild the node-type library from :func:`node_types_to_dict` output."""
    node_types = []
    for entry in data:
        try:
            versions = [
                HVersion(level=version["level"], cost=version["cost"])
                for version in entry["h_versions"]
            ]
            node_types.append(
                NodeType(
                    entry["name"], versions, speed_factor=entry.get("speed_factor", 1.0)
                )
            )
        except KeyError as exc:
            raise ModelError(f"Node type dictionary is missing key {exc}") from exc
    return node_types


# ----------------------------------------------------------------------
# Execution profile
# ----------------------------------------------------------------------
def profile_to_dict(profile: ExecutionProfile) -> List[Dict]:
    """Convert an execution profile to a JSON-compatible list of entries."""
    entries = []
    for (process, node_type, level), entry in sorted(profile.entries().items()):
        entries.append(
            {
                "process": process,
                "node_type": node_type,
                "hardening": level,
                "wcet": entry.wcet,
                "failure_probability": entry.failure_probability,
            }
        )
    return entries


def profile_from_dict(data: Sequence[Mapping]) -> ExecutionProfile:
    """Rebuild an execution profile from :func:`profile_to_dict` output."""
    profile = ExecutionProfile()
    for entry in data:
        try:
            profile.add_entry(
                entry["process"],
                entry["node_type"],
                entry["hardening"],
                entry["wcet"],
                entry["failure_probability"],
            )
        except KeyError as exc:
            raise ModelError(f"Profile dictionary is missing key {exc}") from exc
    return profile


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def design_result_to_dict(result: DesignResult) -> Dict:
    """Flatten a :class:`DesignResult` into a JSON-compatible dictionary."""
    return {
        "strategy": result.strategy,
        "application": result.application,
        "feasible": result.feasible,
        "node_types": dict(result.node_types),
        "hardening": dict(result.hardening),
        "reexecutions": dict(result.reexecutions),
        "mapping": result.mapping.as_dict() if result.mapping is not None else None,
        "schedule_length": result.schedule_length,
        "deadline": result.deadline,
        "cost": result.cost,
        "meets_reliability": result.meets_reliability,
        "failure_reason": result.failure_reason,
    }


# ----------------------------------------------------------------------
# Whole problem instances on disk
# ----------------------------------------------------------------------
def save_problem(
    path: PathLike,
    application: Application,
    node_types: Sequence[NodeType],
    profile: ExecutionProfile,
) -> None:
    """Write a complete problem instance as a single JSON file."""
    payload = {
        "format": "repro-ftes-problem",
        "version": 1,
        "application": application_to_dict(application),
        "node_types": node_types_to_dict(node_types),
        "profile": profile_to_dict(profile),
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_problem(
    path: PathLike,
) -> Tuple[Application, List[NodeType], ExecutionProfile]:
    """Load a problem instance written by :func:`save_problem`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-ftes-problem":
        raise ModelError(f"{path} is not a repro-ftes problem file")
    application = application_from_dict(payload["application"])
    node_types = node_types_from_dict(payload["node_types"])
    profile = profile_from_dict(payload["profile"])
    return application, node_types, profile
