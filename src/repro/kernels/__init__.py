"""Pluggable kernel backends for the DSE hot paths.

Two kernel families are made swappable behind bit-identity contracts:

* **SFP kernels** — the System Failure Probability primitives (formulae (1),
  (4) and (5) of the paper), the innermost numeric kernel of the design-space
  exploration.  See :mod:`repro.kernels.base` for the contract.
* **Scheduler kernels** — the root-schedule construction of Section 6.4
  (priorities, layer placement, bus reservation, recovery slack).  See
  :mod:`repro.kernels.sched_base` for the contract.

Selection goes through :mod:`repro.kernels.registry` (``--sfp-kernel`` /
``REPRO_SFP_KERNEL`` and ``--sched-kernel`` / ``REPRO_SCHED_KERNEL``, both
defaulting to ``auto``); see ``PERFORMANCE.md`` for measurements.
"""

from __future__ import annotations

from repro.kernels.array_backend import ArrayKernel
from repro.kernels.base import SFPKernel
from repro.kernels.reference import ReferenceKernel
from repro.kernels.registry import (
    AUTO,
    KERNEL_ENV_VAR,
    SCHED_KERNEL_ENV_VAR,
    active_kernel,
    active_sched_kernel,
    get_kernel,
    get_sched_kernel,
    kernel_names,
    register_kernel,
    register_sched_kernel,
    resolve_kernel,
    resolve_sched_kernel,
    sched_kernel_names,
    set_default_kernel,
    set_default_sched_kernel,
    use_kernel,
)
from repro.kernels.sched_base import (
    SchedulerKernel,
    ScheduleStructure,
    SchedulingProblem,
)
from repro.kernels.sched_flat import FlatSchedulerKernel
from repro.kernels.sched_reference import ReferenceSchedulerKernel

__all__ = [
    "AUTO",
    "ArrayKernel",
    "FlatSchedulerKernel",
    "KERNEL_ENV_VAR",
    "ReferenceKernel",
    "ReferenceSchedulerKernel",
    "SCHED_KERNEL_ENV_VAR",
    "SFPKernel",
    "SchedulerKernel",
    "ScheduleStructure",
    "SchedulingProblem",
    "active_kernel",
    "active_sched_kernel",
    "get_kernel",
    "get_sched_kernel",
    "kernel_names",
    "register_kernel",
    "register_sched_kernel",
    "resolve_kernel",
    "resolve_sched_kernel",
    "sched_kernel_names",
    "set_default_kernel",
    "set_default_sched_kernel",
    "use_kernel",
]
