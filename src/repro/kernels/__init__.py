"""Pluggable SFP kernel backends.

The System Failure Probability primitives (formulae (1), (4) and (5) of the
paper) are the innermost numeric kernel of the design-space exploration; this
package makes their implementation swappable behind a bit-identity contract.
See :mod:`repro.kernels.base` for the contract, :mod:`repro.kernels.registry`
for selection (``--sfp-kernel`` / ``REPRO_SFP_KERNEL`` / ``auto``), and
``PERFORMANCE.md`` for measurements.
"""

from repro.kernels.array_backend import ArrayKernel
from repro.kernels.base import SFPKernel
from repro.kernels.reference import ReferenceKernel
from repro.kernels.registry import (
    AUTO,
    KERNEL_ENV_VAR,
    active_kernel,
    get_kernel,
    kernel_names,
    register_kernel,
    resolve_kernel,
    set_default_kernel,
)

__all__ = [
    "AUTO",
    "ArrayKernel",
    "KERNEL_ENV_VAR",
    "ReferenceKernel",
    "SFPKernel",
    "active_kernel",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "resolve_kernel",
    "set_default_kernel",
]
