"""Array-buffer SFP kernel — vectorized DP with integer-quanta rounding.

Bit-identical to :class:`~repro.kernels.reference.ReferenceKernel` (asserted
by the property suite) but restructured for speed on the DSE hot path:

**Preallocated work buffers.**  The homogeneous-polynomial DP table is an
``array('d')`` buffer owned by the kernel instance, grown geometrically and
reused across calls, so the hot loop performs no per-call allocation.  For
wide inputs (many processes on one node) the row recurrence switches to
``numpy`` when it is importable: rewriting the DP row-major turns the inner
update into ``h_f(1..i) = h_f(1..i-1) + p_i * h_{f-1}(1..i)`` — a cumulative
sum of ``p * previous_row`` — and ``np.add.accumulate`` performs *exactly*
the same left-to-right float additions as the scalar loop, so the results
stay bit-identical (IEEE-754 operations are deterministic functions of their
operands and the operand sequence is unchanged, only its traversal order).

**Integer quanta rounding.**  ``floor_probability``/``ceil_probability``
round the *shortest-repr decimal value* of a float on the ``10^-decimals``
grid via ``Decimal(repr(x)).quantize(...)``.  For ``decimals <=``
:data:`MAX_FAST_DECIMALS` the grid spacing is many orders of magnitude wider
than one float ulp, which makes the repr semantics reproducible with exact
integer arithmetic on ``float.as_integer_ratio()``:

* at most one grid point can round-trip to ``x`` (two would have to lie
  within one ulp of each other, impossible while ``10^-decimals >> ulp(1)``);
* if a grid point ``n / 10^d`` round-trips to ``x`` then the shortest repr of
  ``x`` *is* that grid value (a shorter decimal would be a coarser grid point
  round-tripping to the same float — excluded by the previous point), so both
  floor and ceil return ``x`` itself;
* otherwise the repr value lies strictly between the neighbouring grid
  points of the exact binary value, so floor/ceil are the exact integer
  floor/ceiling ``(a * 10^d) // q`` of ``x = a/q`` — and Python's big-int
  division ``n / 10^d`` returns the correctly-rounded float, matching
  ``float(Decimal)``.

Keeping the per-fault survival sum as an exact integer count of quanta also
eliminates the per-term ``Decimal`` constructions of the reference chain (the
sum of grid values is exact in integers; the reference's ``Decimal`` context
precision of 28 digits never rounds it either).  The formula (5) union keeps
the reference's ``Decimal`` product — its 28-digit context rounding is part
of the contract — but memoizes the per-value ``1 - Decimal(repr(p))``
complements, which repeat heavily across the greedy re-execution loop.

For ``decimals > MAX_FAST_DECIMALS`` every operation falls back to the
reference implementation (the grid argument above needs ``10^-decimals``
well above one ulp), keeping the backend total.
"""

from __future__ import annotations

from array import array
from decimal import Decimal
from math import prod
from typing import Dict, List, Sequence, Tuple

from repro.core.exceptions import ModelError
from repro.kernels.reference import ReferenceKernel
from repro.utils.rounding import DEFAULT_DECIMALS
from repro.utils.validation import require_in_unit_interval

try:  # pragma: no cover - exercised indirectly via the wide-input path
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

#: Largest ``decimals`` for which the integer-quanta fast path is used.  The
#: correctness argument needs the decimal grid to dwarf the float ulp
#: (``10^-d >> 2^-52``); 12 leaves three orders of magnitude of margin over
#: the paper's 11 digits.
MAX_FAST_DECIMALS = 12

#: Input width (process count) from which the numpy row recurrence beats the
#: scalar buffer loop; below it, ufunc dispatch overhead dominates.
NUMPY_MIN_WIDTH = 64

#: Complement-cache size bound; cleared wholesale when exceeded.
_COMPLEMENT_CACHE_LIMIT = 1 << 16


def _floor_quanta(value: float, scale: int) -> Tuple[float, int]:
    """Floor ``value``'s shortest-repr decimal on the ``1/scale`` grid.

    Returns ``(rounded float, exact integer numerator)`` so callers can keep
    accumulating in exact quanta.  ``value`` must already be clamped to
    ``[0, 1]``.
    """
    numerator, denominator = value.as_integer_ratio()
    scaled = numerator * scale
    floor_n, remainder = divmod(scaled, denominator)
    if remainder == 0:
        # The binary value sits exactly on the grid; repr is that grid value.
        return value, floor_n
    if floor_n / scale == value:
        # The grid point below round-trips to the same float: the shortest
        # repr *is* the grid value, flooring is the identity.
        return value, floor_n
    above = floor_n + 1
    if above / scale == value:
        return value, above
    return floor_n / scale, floor_n


def _ceil_quanta(value: float, scale: int) -> float:
    """Ceiling counterpart of :func:`_floor_quanta` (float result only)."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    numerator, denominator = value.as_integer_ratio()
    scaled = numerator * scale
    floor_n, remainder = divmod(scaled, denominator)
    if remainder == 0:
        return value
    if floor_n / scale == value:
        return value
    ceil_n = floor_n + 1
    if ceil_n / scale == value:
        return value
    return ceil_n / scale if ceil_n < scale else 1.0


class ArrayKernel(ReferenceKernel):
    """Preallocated-buffer SFP kernel with integer-quanta rounding."""

    name = "array"
    description = (
        "array-module DP buffers + exact integer-quanta rounding "
        "(numpy row recurrence for wide inputs)"
    )
    priority = 10

    def __init__(self) -> None:
        # Scalar DP table, reused across calls (see module docstring).
        self._table = array("d", [0.0] * 32)
        # numpy row-recurrence buffers for wide inputs.
        self._np_row = None
        self._np_work = None
        # float -> Decimal(1) - Decimal(repr(float)) memo for formula (5).
        self._complements: Dict[float, Decimal] = {}

    # ------------------------------------------------------------------
    def probability_no_fault(
        self,
        failure_probabilities: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        if not 0 <= decimals <= MAX_FAST_DECIMALS:
            return super().probability_no_fault(failure_probabilities, decimals)
        for probability in failure_probabilities:
            require_in_unit_interval(probability, "failure probability")
        raw = prod(1.0 - p for p in failure_probabilities)
        if raw < 0.0:
            raw = 0.0
        elif raw > 1.0:
            raw = 1.0
        return _floor_quanta(raw, 10 ** decimals)[0]

    def probability_exceeds(
        self,
        failure_probabilities: Sequence[float],
        reexecutions: int,
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        if not 0 <= decimals <= MAX_FAST_DECIMALS:
            return super().probability_exceeds(
                failure_probabilities, reexecutions, decimals
            )
        if reexecutions < 0:
            raise ModelError(
                f"Number of re-executions must be >= 0, got {reexecutions}"
            )
        for probability in failure_probabilities:
            require_in_unit_interval(probability, "failure probability")
        scale = 10 ** decimals
        raw = prod(1.0 - p for p in failure_probabilities)
        if raw < 0.0:
            raw = 0.0
        elif raw > 1.0:
            raw = 1.0
        no_fault, survival_quanta = _floor_quanta(raw, scale)
        if reexecutions and failure_probabilities:
            for h_f in self._homogeneous_sums(failure_probabilities, reexecutions):
                term = no_fault * h_f
                if term < 0.0:
                    term = 0.0
                elif term > 1.0:
                    term = 1.0
                survival_quanta += _floor_quanta(term, scale)[1]
        # (scale - survival) / scale is the exact decimal 1 - survival; the
        # big-int division returns the correctly-rounded float, matching the
        # reference's float(Decimal(1) - survival).
        return _ceil_quanta((scale - survival_quanta) / scale, scale)

    def system_failure(
        self,
        per_node_exceedance: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        if not 0 <= decimals <= MAX_FAST_DECIMALS:
            return super().system_failure(per_node_exceedance, decimals)
        complements = self._complements
        if len(complements) > _COMPLEMENT_CACHE_LIMIT:
            complements.clear()
        survival = Decimal(1)
        for probability in per_node_exceedance:
            complement = complements.get(probability)
            if complement is None:
                require_in_unit_interval(probability, "node exceedance probability")
                complement = Decimal(1) - Decimal(repr(probability))
                complements[probability] = complement
            # The Decimal product (28-digit context rounding included) is part
            # of the reference semantics and is kept as-is.
            survival *= complement
        return _ceil_quanta(float(Decimal(1) - survival), 10 ** decimals)

    # ------------------------------------------------------------------
    def _homogeneous_sums(
        self, probabilities: Sequence[float], reexecutions: int
    ) -> List[float]:
        """Yield ``h_1 .. h_k`` over the full variable set, bit-identically.

        Narrow inputs run the scalar single-pass DP in the reused
        ``array('d')`` buffer; wide inputs run the numpy row recurrence.
        """
        width = len(probabilities)
        if _np is not None and width >= NUMPY_MIN_WIDTH:
            return self._homogeneous_sums_numpy(probabilities, reexecutions)
        table = self._table
        needed = reexecutions + 1
        if len(table) < needed:
            table.extend([0.0] * (2 * needed - len(table)))
        table[0] = 1.0
        for f in range(1, needed):
            table[f] = 0.0
        for probability in probabilities:
            previous = 1.0
            for f in range(1, needed):
                current = table[f] + probability * previous
                table[f] = current
                previous = current
        return [table[f] for f in range(1, needed)]

    def _homogeneous_sums_numpy(
        self, probabilities: Sequence[float], reexecutions: int
    ) -> List[float]:
        """Row-major DP: one multiply + one sequential accumulate per ``h_f``."""
        width = len(probabilities)
        if self._np_row is None or len(self._np_row) < width:
            self._np_row = _np.empty(max(width, 64), dtype=_np.float64)
            self._np_work = _np.empty_like(self._np_row)
        row = self._np_row[:width]
        work = self._np_work[:width]
        probs = _np.asarray(probabilities, dtype=_np.float64)
        row.fill(1.0)
        sums = []
        for _ in range(reexecutions):
            _np.multiply(probs, row, out=work)
            # add.accumulate is a strict left-to-right recurrence
            # (r[i] = r[i-1] + a[i]) — the same additions, in the same order,
            # as the scalar DP performs for this row.
            _np.add.accumulate(work, out=row)
            sums.append(float(row[-1]))
        return sums
