"""Kernel backend interface for the System Failure Probability analysis.

A *kernel* implements the three numeric primitives of Appendix A that sit on
the design-space-exploration hot path (see :mod:`repro.core.sfp` for the
formula numbering):

* :meth:`SFPKernel.probability_no_fault` — formula (1),
* :meth:`SFPKernel.probability_exceeds` — formula (4) via the single-pass
  complete-homogeneous-polynomial dynamic program,
* :meth:`SFPKernel.system_failure` — the formula (5) union.

The backend contract is **bit identity**: every registered kernel must return,
for every input, the exact same ``float`` as the ``reference`` backend (the
pure-Python implementation historically living in ``core/sfp.py``).  The
rounding direction (success probabilities down, failure probabilities up, on
the decimal grid of ``decimals`` digits) is part of the paper's pessimism
argument, so a backend is free to reorganize *how* it computes — vectorized
buffers, integer quanta arithmetic, batched rounding — but never *what* comes
out.  The property suite (``tests/property/test_kernel_equivalence.py``)
cross-checks all registered backends against the reference on randomized
inputs, and the golden acceptance fixtures pin the end-to-end sweep output,
so a drifting backend cannot land silently.

Kernels may keep preallocated work buffers between calls and are therefore
**not** thread-safe; the process-parallel sweep gives each worker its own
registry (module state is per process).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.rounding import DEFAULT_DECIMALS


class SFPKernel:
    """Abstract SFP kernel backend.

    Subclasses set :attr:`name` (the registry/CLI identifier), a one-line
    :attr:`description`, and :attr:`priority` (higher wins ``auto``
    selection among available backends).
    """

    #: Registry identifier, also accepted by ``--sfp-kernel``.
    name: str = ""
    #: One-line human description shown by the CLI/benchmark artifacts.
    description: str = ""
    #: ``auto`` selection rank; the highest-priority available kernel wins.
    priority: int = 0
    #: Whether :meth:`batch_probability_exceeds` is vectorized.  ``False``
    #: means the default scalar fallback loop below; callers may use the flag
    #: to size neighbourhoods, never for correctness (the fallback is total
    #: and bit-identical).
    supports_batch: bool = False

    @classmethod
    def is_available(cls) -> bool:
        """Can this backend run in the current environment?

        Backends with optional dependencies (e.g. an accelerated DP needing
        ``numpy``) must answer honestly; unavailable backends are skipped by
        ``auto`` selection and rejected by explicit selection with a clear
        error.
        """
        return True

    # ------------------------------------------------------------------
    # the three SFP primitives — see core/sfp.py for formula semantics
    # ------------------------------------------------------------------
    def probability_no_fault(
        self,
        failure_probabilities: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        """Formula (1): probability that none of the processes fails."""
        raise NotImplementedError

    def probability_exceeds(
        self,
        failure_probabilities: Sequence[float],
        reexecutions: int,
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        """Formula (4): probability that more than ``reexecutions`` faults occur."""
        raise NotImplementedError

    def system_failure(
        self,
        per_node_exceedance: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        """Formula (5): probability that at least one node exceeds its budget."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # batched contract — one call scores a whole neighbourhood of rows
    # ------------------------------------------------------------------
    def batch_probability_exceeds(
        self,
        blocks: Sequence[Sequence[float]],
        reexecutions: Sequence[int],
        decimals: int = DEFAULT_DECIMALS,
    ) -> List[float]:
        """Formula (4) for a block of rows — sibling design points at once.

        ``blocks[i]`` is the ordered per-process failure-probability tuple of
        row ``i`` and ``reexecutions[i]`` its re-execution budget.  Returns
        one float per row, each bit-identical to the corresponding scalar
        :meth:`probability_exceeds` call; the default implementation *is*
        that scalar loop, so every backend supports the batch contract and
        vectorizing backends (``supports_batch = True``) only change speed.
        """
        return [
            self.probability_exceeds(probabilities, budget, decimals)
            for probabilities, budget in zip(blocks, reexecutions)
        ]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
