"""Batch SFP kernel — one vectorized DP pass over a block of sibling rows.

The DSE search loop scores *neighbourhoods*: sibling design points that
differ in a single node hardening level or one mapped process.  The scalar
backends answer one ``probability_exceeds`` query at a time; this backend
implements the batched contract (:meth:`~repro.kernels.base.SFPKernel.
batch_probability_exceeds`) so the evaluation engine can hand it the whole
residual cold block of a neighbourhood at once.

**Bit identity by construction.**  The rows are packed into one preallocated
``(n_rows, width)`` float64 block, ragged rows zero-padded on the right:

* the formula (1) product runs as a sequential per-column loop
  (``acc *= 1.0 - block[:, j]``), so each row performs exactly the
  left-to-right multiplications of the scalar ``prod`` — padded columns
  multiply by ``1.0``, which is an exact identity on every float;
* the homogeneous-polynomial DP runs column-major over a shared
  ``(n_rows, k_max + 1)`` table (``T[:, f] += p * T[:, f - 1]`` with ``f``
  ascending), the literal vectorization of the reference recurrence —
  padded columns add ``0.0 * T[:, f - 1]``, exact on the non-negative table;
* the rounding tails (integer-quanta floor/ceil of
  :mod:`repro.kernels.array_backend`) stay scalar Python per row, reusing
  the exact helpers of the ``array`` backend.

``np.multiply``/``np.add`` on explicit columns are elementwise IEEE-754
operations — no pairwise reassociation as in ``np.prod``/``np.sum`` — so the
per-row operation sequence is unchanged and the results are bit-identical
(asserted row-by-row by the batch property suite).

Anything the vectorized pass cannot reproduce exactly — ``decimals`` beyond
the integer-quanta range, a negative budget, an out-of-range or NaN
probability — falls back to the scalar loop, which raises the identical
error at the identical row.  Blocks below :data:`MIN_VECTOR_ROWS` take the
same fallback purely for speed: the padded-block assembly only pays for
itself once a neighbourhood is wide enough.

Priority 5 keeps ``auto`` selection on the ``array`` backend: scalar queries
dominate outside the engine's batched partitions, and for those this backend
simply inherits the ``array`` fast paths.  Batching is opt-in by name
(``--sfp-kernel batch`` / ``REPRO_SFP_KERNEL=batch``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.kernels.array_backend import (
    MAX_FAST_DECIMALS,
    ArrayKernel,
    _ceil_quanta,
    _floor_quanta,
)
from repro.utils.rounding import DEFAULT_DECIMALS

try:  # pragma: no cover - the container ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


#: Below this row count the padded-block assembly costs more than it saves
#: (measured crossover vs the array backend's scalar fast path is ~16 rows);
#: the scalar fallback loop is bit-identical by contract, so the cutoff is a
#: pure speed knob.
MIN_VECTOR_ROWS = 16


class BatchSFPKernel(ArrayKernel):
    """Vectorized neighbourhood evaluation on top of the ``array`` backend."""

    name = "batch"
    description = (
        "vectorized multi-row DP over a padded float64 block "
        "(scalar primitives inherited from the array backend)"
    )
    priority = 5
    supports_batch = True

    @classmethod
    def is_available(cls) -> bool:
        """The padded-block pass needs numpy; scalar fallback is pointless."""
        return _np is not None

    # ------------------------------------------------------------------
    def batch_probability_exceeds(
        self,
        blocks: Sequence[Sequence[float]],
        reexecutions: Sequence[int],
        decimals: int = DEFAULT_DECIMALS,
    ) -> List[float]:
        n_rows = len(blocks)
        if n_rows == 0:
            return []
        if (
            _np is None
            or n_rows < MIN_VECTOR_ROWS
            or not 0 <= decimals <= MAX_FAST_DECIMALS
            or any(budget < 0 for budget in reexecutions)
        ):
            # The scalar loop raises the reference error at the first bad row.
            return super().batch_probability_exceeds(blocks, reexecutions, decimals)

        widths = [len(probabilities) for probabilities in blocks]
        width = max(widths)
        block = _np.zeros((n_rows, width), dtype=_np.float64)
        for row, probabilities in enumerate(blocks):
            if probabilities:
                block[row, : widths[row]] = probabilities
        # One vectorized range check; NaNs compare false and also fall back,
        # so the scalar loop reports the exact per-row validation error.
        if width and not bool(
            _np.logical_and(block >= 0.0, block <= 1.0).all()
        ):
            return super().batch_probability_exceeds(blocks, reexecutions, decimals)

        # Formula (1) products, one sequential column at a time: identical
        # left-to-right multiplication order per row (padding multiplies 1.0).
        no_fault_raw = _np.ones(n_rows, dtype=_np.float64)
        for column in range(width):
            no_fault_raw *= 1.0 - block[:, column]

        budgets = [int(budget) for budget in reexecutions]
        k_max = max(budgets)
        table_rows: List[List[float]] = []
        if k_max and width:
            # Column-major DP across all rows at once: the literal reference
            # recurrence with the row axis vectorized (padding adds 0.0).
            table = _np.zeros((n_rows, k_max + 1), dtype=_np.float64)
            table[:, 0] = 1.0
            for column in range(width):
                probabilities_column = block[:, column]
                for faults in range(1, k_max + 1):
                    table[:, faults] += probabilities_column * table[:, faults - 1]
            table_rows = table.tolist()

        # Integer-quanta rounding tails stay scalar per row — the exact
        # helpers (and operand floats) of the array backend's scalar path.
        scale = 10 ** decimals
        raw_values = no_fault_raw.tolist()
        results: List[float] = []
        for row in range(n_rows):
            raw = raw_values[row]
            if raw < 0.0:
                raw = 0.0
            elif raw > 1.0:
                raw = 1.0
            no_fault, survival_quanta = _floor_quanta(raw, scale)
            if budgets[row] and widths[row]:
                homogeneous = table_rows[row]
                for faults in range(1, budgets[row] + 1):
                    term = no_fault * homogeneous[faults]
                    if term < 0.0:
                        term = 0.0
                    elif term > 1.0:
                        term = 1.0
                    survival_quanta += _floor_quanta(term, scale)[1]
            results.append(_ceil_quanta((scale - survival_quanta) / scale, scale))
        return results
