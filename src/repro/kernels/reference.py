"""Reference SFP kernel — the pure-Python single-pass DP from ``core/sfp.py``.

This is the implementation every other backend is measured against: the exact
float/``Decimal`` operation sequence that produced the paper reproduction's
published numbers (Appendix A.2 worked example, Fig. 6 acceptance
percentages).  It is deliberately boring — no buffers, no fast paths — so it
stays readable as the executable specification of the bit-identity contract.
"""

from __future__ import annotations

from decimal import Decimal
from math import prod
from typing import Sequence

from repro.core.exceptions import ModelError
from repro.kernels.base import SFPKernel
from repro.utils.rounding import DEFAULT_DECIMALS, ceil_probability, floor_probability
from repro.utils.validation import require_in_unit_interval


class ReferenceKernel(SFPKernel):
    """Pure-Python SFP primitives (the executable bit-identity specification)."""

    name = "reference"
    description = "pure-Python single-pass DP with Decimal rounding chains"
    priority = 0

    # ------------------------------------------------------------------
    def probability_no_fault(
        self,
        failure_probabilities: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        for probability in failure_probabilities:
            require_in_unit_interval(probability, "failure probability")
        raw = prod(1.0 - p for p in failure_probabilities)
        return floor_probability(raw, decimals)

    def probability_exceeds(
        self,
        failure_probabilities: Sequence[float],
        reexecutions: int,
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        if reexecutions < 0:
            raise ModelError(
                f"Number of re-executions must be >= 0, got {reexecutions}"
            )
        no_fault = self.probability_no_fault(failure_probabilities, decimals)
        survival = Decimal(repr(no_fault))
        if reexecutions and failure_probabilities:
            # table[f] accumulates the complete homogeneous symmetric
            # polynomial h_f over the variables processed so far; one table
            # serves every fault count (see core/sfp.py for the derivation).
            table = [0.0] * (reexecutions + 1)
            table[0] = 1.0
            for probability in failure_probabilities:
                for f in range(1, reexecutions + 1):
                    table[f] = table[f] + probability * table[f - 1]
            for faults in range(1, reexecutions + 1):
                survival += Decimal(
                    repr(floor_probability(no_fault * table[faults], decimals))
                )
        return ceil_probability(float(Decimal(1) - survival), decimals)

    def system_failure(
        self,
        per_node_exceedance: Sequence[float],
        decimals: int = DEFAULT_DECIMALS,
    ) -> float:
        for probability in per_node_exceedance:
            require_in_unit_interval(probability, "node exceedance probability")
        survival = Decimal(1)
        for probability in per_node_exceedance:
            survival *= Decimal(1) - Decimal(repr(probability))
        return ceil_probability(float(Decimal(1) - survival), decimals)
