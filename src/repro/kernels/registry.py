"""Kernel backend registry and selection.

Selection precedence, highest first:

1. an explicit ``kernel=`` argument on the SFP entry points (``SFPAnalysis``,
   ``EvaluationEngine``, ``ReExecutionOpt``, the ``core.sfp`` module
   functions) — accepts a kernel instance or a registered name;
2. a process-wide default set by :func:`set_default_kernel` (the CLI's
   ``--sfp-kernel`` flag lands here);
3. the ``REPRO_SFP_KERNEL`` environment variable;
4. ``auto``: the highest-priority backend whose ``is_available()`` is true.

Because every registered backend is bit-identical (see
:mod:`repro.kernels.base`), switching kernels never changes results — only
speed — so cached design points (in-memory memo tables and the persistent
store) remain valid across kernel switches and the selection deliberately is
**not** part of any cache key.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type, Union

from repro.core.exceptions import ModelError
from repro.kernels.array_backend import ArrayKernel
from repro.kernels.base import SFPKernel
from repro.kernels.reference import ReferenceKernel

#: Environment variable consulted when no explicit selection was made.
KERNEL_ENV_VAR = "REPRO_SFP_KERNEL"

#: Pseudo-name selecting the fastest available backend.
AUTO = "auto"

_KERNEL_CLASSES: Dict[str, Type[SFPKernel]] = {}
_INSTANCES: Dict[str, SFPKernel] = {}
_DEFAULT_NAME: Optional[str] = None


def register_kernel(kernel_class: Type[SFPKernel]) -> Type[SFPKernel]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    name = kernel_class.name
    if not name or name == AUTO:
        raise ModelError(f"Kernel class {kernel_class.__name__} needs a valid name")
    existing = _KERNEL_CLASSES.get(name)
    if existing is not None and existing is not kernel_class:
        raise ModelError(f"Kernel name {name!r} is already registered")
    _KERNEL_CLASSES[name] = kernel_class
    return kernel_class


def kernel_names(available_only: bool = False) -> List[str]:
    """Registered backend names, ``auto``-priority order (highest first)."""
    names = sorted(
        _KERNEL_CLASSES,
        key=lambda name: (-_KERNEL_CLASSES[name].priority, name),
    )
    if available_only:
        names = [name for name in names if _KERNEL_CLASSES[name].is_available()]
    return names


def get_kernel(name: str) -> SFPKernel:
    """The singleton instance of one backend (``auto`` resolves availability)."""
    if name == AUTO:
        for candidate in kernel_names(available_only=True):
            return get_kernel(candidate)
        raise ModelError("No SFP kernel backend is available")
    kernel_class = _KERNEL_CLASSES.get(name)
    if kernel_class is None:
        raise ModelError(
            f"Unknown SFP kernel {name!r}; registered: {kernel_names()}"
        )
    if not kernel_class.is_available():
        raise ModelError(
            f"SFP kernel {name!r} is not available in this environment"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = kernel_class()
    return instance


def set_default_kernel(name: Optional[str]) -> Optional[SFPKernel]:
    """Set (or clear, with ``None``) the process-wide default backend.

    Returns the resolved instance so callers can report what was picked.
    """
    global _DEFAULT_NAME
    if name is None:
        _DEFAULT_NAME = None
        return None
    kernel = get_kernel(name)  # validate before committing
    _DEFAULT_NAME = name
    return kernel


def active_kernel() -> SFPKernel:
    """The backend implied by the selection precedence (see module docstring)."""
    if _DEFAULT_NAME is not None:
        return get_kernel(_DEFAULT_NAME)
    return get_kernel(os.environ.get(KERNEL_ENV_VAR, AUTO))


def resolve_kernel(kernel: Union[SFPKernel, str, None]) -> SFPKernel:
    """Normalize an explicit selection (instance, name or ``None``)."""
    if kernel is None:
        return active_kernel()
    if isinstance(kernel, SFPKernel):
        return kernel
    return get_kernel(kernel)


register_kernel(ReferenceKernel)
register_kernel(ArrayKernel)
