"""Kernel backend registries and selection.

Two kernel families live here, each behind the same selection machinery:

* **SFP kernels** (:class:`~repro.kernels.base.SFPKernel`) — the Appendix A
  numeric primitives; selected with ``--sfp-kernel`` / ``REPRO_SFP_KERNEL``.
* **Scheduler kernels** (:class:`~repro.kernels.sched_base.SchedulerKernel`)
  — the root-schedule construction of Section 6.4; selected with
  ``--sched-kernel`` / ``REPRO_SCHED_KERNEL``.

Selection precedence within a family, highest first:

1. an explicit ``kernel=`` argument on the entry points (``SFPAnalysis``,
   ``EvaluationEngine``, ``ReExecutionOpt`` for SFP; ``ListScheduler`` for
   scheduling) — accepts a kernel instance or a registered name;
2. a *scoped* selection entered with :func:`use_kernel` (what the
   ``repro.api`` session layer and the CLI's ``--sfp-kernel`` /
   ``--sched-kernel`` flags use), or the process-wide default set by the
   deprecated ``set_default[_sched]_kernel`` shims — both land in the same
   slot, but ``use_kernel`` restores the previous selection on exit, also
   when the body raises;
3. the family's environment variable;
4. ``auto``: the highest-priority backend whose ``is_available()`` is true.

Because every registered backend of a family is bit-identical (see the
family base modules), switching kernels never changes results — only
speed — so cached design points (in-memory memo tables and the persistent
store) remain valid across kernel switches and the selection deliberately is
**not** part of any cache key.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Generic, Iterator, List, Optional, Tuple, Type, TypeVar, Union

from repro.core.exceptions import ModelError
from repro.kernels.base import SFPKernel
from repro.kernels.sched_base import SchedulerKernel

#: Environment variable consulted when no explicit SFP selection was made.
KERNEL_ENV_VAR = "REPRO_SFP_KERNEL"

#: Environment variable consulted when no explicit scheduler selection was made.
SCHED_KERNEL_ENV_VAR = "REPRO_SCHED_KERNEL"

#: Pseudo-name selecting the fastest available backend.
AUTO = "auto"

KernelT = TypeVar("KernelT")


class KernelRegistry(Generic[KernelT]):
    """Registry + selection state of one kernel family."""

    def __init__(self, family: str, base_class: type, env_var: str) -> None:
        self.family = family
        self.base_class = base_class
        self.env_var = env_var
        self._classes: Dict[str, Type[KernelT]] = {}
        self._instances: Dict[str, KernelT] = {}
        self._default_name: Optional[str] = None

    # ------------------------------------------------------------------
    def register(self, kernel_class: Type[KernelT]) -> Type[KernelT]:
        """Register a backend class under its ``name`` (usable as a decorator)."""
        name = kernel_class.name
        if not name or name == AUTO:
            raise ModelError(
                f"Kernel class {kernel_class.__name__} needs a valid name"
            )
        existing = self._classes.get(name)
        if existing is not None and existing is not kernel_class:
            raise ModelError(f"Kernel name {name!r} is already registered")
        self._classes[name] = kernel_class
        return kernel_class

    def names(self, available_only: bool = False) -> List[str]:
        """Registered backend names, ``auto``-priority order (highest first)."""
        names = sorted(
            self._classes,
            key=lambda name: (-self._classes[name].priority, name),
        )
        if available_only:
            names = [name for name in names if self._classes[name].is_available()]
        return names

    def get(self, name: str) -> KernelT:
        """The singleton instance of one backend (``auto`` resolves availability)."""
        if name == AUTO:
            for candidate in self.names(available_only=True):
                return self.get(candidate)
            raise ModelError(f"No {self.family} kernel backend is available")
        kernel_class = self._classes.get(name)
        if kernel_class is None:
            raise ModelError(
                f"Unknown {self.family} kernel {name!r}; registered: {self.names()}"
            )
        if not kernel_class.is_available():
            raise ModelError(
                f"{self.family} kernel {name!r} is not available in this environment"
            )
        instance = self._instances.get(name)
        if instance is None:
            instance = self._instances[name] = kernel_class()
        return instance

    def set_default(self, name: Optional[str]) -> Optional[KernelT]:
        """Set (or clear, with ``None``) the process-wide default backend.

        Returns the resolved instance so callers can report what was picked.
        """
        if name is None:
            self._default_name = None
            return None
        kernel = self.get(name)  # validate before committing
        self._default_name = name
        return kernel

    def active(self) -> KernelT:
        """The backend implied by the selection precedence (module docstring)."""
        if self._default_name is not None:
            return self.get(self._default_name)
        return self.get(os.environ.get(self.env_var, AUTO))

    def resolve(self, kernel: Union[KernelT, str, None]) -> KernelT:
        """Normalize an explicit selection (instance, name or ``None``)."""
        if kernel is None:
            return self.active()
        if isinstance(kernel, self.base_class):
            return kernel
        return self.get(kernel)


#: The two built-in families.
SFP_KERNELS: KernelRegistry[SFPKernel] = KernelRegistry(
    "SFP", SFPKernel, KERNEL_ENV_VAR
)
SCHED_KERNELS: KernelRegistry[SchedulerKernel] = KernelRegistry(
    "scheduler", SchedulerKernel, SCHED_KERNEL_ENV_VAR
)


# ----------------------------------------------------------------------
# Scoped selection — the non-deprecated way to change the active backends.
# ----------------------------------------------------------------------
@contextmanager
def use_kernel(
    sfp: Union[SFPKernel, str, None] = None,
    sched: Union[SchedulerKernel, str, None] = None,
) -> Iterator[Tuple[SFPKernel, SchedulerKernel]]:
    """Scoped kernel selection over both families.

    Snapshots both families' selection state, applies the requested
    backends (``None`` leaves that family's ambient selection — environment
    variable or ``auto`` — untouched) and restores the snapshot on exit,
    *including* when the body raises.  Yields the pair of active instances
    ``(sfp_kernel, scheduler_kernel)`` inside the scope.

    With no arguments this is a pure snapshot/restore guard, which is what
    the test-suite's autouse fixture uses to eliminate cross-test leakage.

    Selections are names under the hood; a kernel *instance* is accepted
    only when it is the registry singleton of its name (e.g. the result of
    ``get_kernel(...)``) — activating a foreign instance by name would
    silently hand out a different object, so that is an error instead.
    """
    snapshot = (SFP_KERNELS._default_name, SCHED_KERNELS._default_name)
    try:
        if sfp is not None:
            SFP_KERNELS.set_default(_selection_name(SFP_KERNELS, sfp))
        if sched is not None:
            SCHED_KERNELS.set_default(_selection_name(SCHED_KERNELS, sched))
        yield SFP_KERNELS.active(), SCHED_KERNELS.active()
    finally:
        # Snapshot/restore of worker-local state: serve pool workers run
        # whole Sessions, so each process scopes its own registry
        # selection; the parent never depends on the write.
        # repro-lint: disable=R007
        SFP_KERNELS._default_name, SCHED_KERNELS._default_name = snapshot


def _selection_name(
    registry: KernelRegistry, kernel: Union[SFPKernel, SchedulerKernel, str]
) -> str:
    """Normalize a ``use_kernel`` selection to a registered backend name."""
    if isinstance(kernel, str):
        return kernel
    name = kernel.name
    if registry.get(name) is not kernel:
        raise ModelError(
            f"use_kernel only accepts registry-singleton {registry.family} "
            f"kernel instances (got a foreign {type(kernel).__name__!r} "
            f"object); pass the registered name {name!r} or use "
            f"get_kernel()/resolve on the explicit kernel= entry points"
        )
    return name


def _warn_deprecated_setter(old: str, family_kw: str) -> None:
    warnings.warn(
        f"{old}() mutates a process-global default and is deprecated; "
        f"use repro.kernels.use_kernel({family_kw}=...) for a scoped "
        f"selection, or the repro.api session layer",
        DeprecationWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# SFP family — module-level API kept stable since PR 3.
# ----------------------------------------------------------------------
def register_kernel(kernel_class: Type[SFPKernel]) -> Type[SFPKernel]:
    return SFP_KERNELS.register(kernel_class)


def kernel_names(available_only: bool = False) -> List[str]:
    return SFP_KERNELS.names(available_only)


def get_kernel(name: str) -> SFPKernel:
    return SFP_KERNELS.get(name)


def set_default_kernel(name: Optional[str]) -> Optional[SFPKernel]:
    """Deprecated shim: set the process-wide SFP backend (behavior unchanged).

    Prefer :func:`use_kernel` (scoped, exception-safe) or the ``repro.api``
    session layer; this function stays bit-identical in effect but emits a
    :class:`DeprecationWarning`.
    """
    _warn_deprecated_setter("set_default_kernel", "sfp")
    return SFP_KERNELS.set_default(name)


def active_kernel() -> SFPKernel:
    return SFP_KERNELS.active()


def resolve_kernel(kernel: Union[SFPKernel, str, None]) -> SFPKernel:
    return SFP_KERNELS.resolve(kernel)


# ----------------------------------------------------------------------
# Scheduler family — same shape, ``sched`` infix.
# ----------------------------------------------------------------------
def register_sched_kernel(
    kernel_class: Type[SchedulerKernel],
) -> Type[SchedulerKernel]:
    return SCHED_KERNELS.register(kernel_class)


def sched_kernel_names(available_only: bool = False) -> List[str]:
    return SCHED_KERNELS.names(available_only)


def get_sched_kernel(name: str) -> SchedulerKernel:
    return SCHED_KERNELS.get(name)


def set_default_sched_kernel(name: Optional[str]) -> Optional[SchedulerKernel]:
    """Deprecated shim: set the process-wide scheduler backend.

    Prefer :func:`use_kernel` (scoped, exception-safe) or the ``repro.api``
    session layer; this function stays bit-identical in effect but emits a
    :class:`DeprecationWarning`.
    """
    _warn_deprecated_setter("set_default_sched_kernel", "sched")
    return SCHED_KERNELS.set_default(name)


def active_sched_kernel() -> SchedulerKernel:
    return SCHED_KERNELS.active()


def resolve_sched_kernel(
    kernel: Union[SchedulerKernel, str, None],
) -> SchedulerKernel:
    return SCHED_KERNELS.resolve(kernel)


# ----------------------------------------------------------------------
# Built-in backend registration.  The imports live at the bottom so that a
# backend module importing back into this one mid-registration (e.g. the
# scheduler backends pull in repro.scheduling, whose list scheduler resolves
# its kernel through this registry) finds every function already defined.
# ----------------------------------------------------------------------
from repro.kernels.array_backend import ArrayKernel  # noqa: E402
from repro.kernels.batch import BatchSFPKernel  # noqa: E402
from repro.kernels.reference import ReferenceKernel  # noqa: E402

register_kernel(ReferenceKernel)
register_kernel(ArrayKernel)
register_kernel(BatchSFPKernel)

from repro.kernels.sched_batch import BatchSchedulerKernel  # noqa: E402
from repro.kernels.sched_flat import FlatSchedulerKernel  # noqa: E402
from repro.kernels.sched_reference import ReferenceSchedulerKernel  # noqa: E402

register_sched_kernel(ReferenceSchedulerKernel)
register_sched_kernel(FlatSchedulerKernel)
register_sched_kernel(BatchSchedulerKernel)
