"""Kernel backend interface for root-schedule construction.

A *scheduler kernel* implements the inner loop of the list scheduler
(Section 6.4): partial-critical-path priorities, layer-by-layer process
placement, bus reservation and the per-node recovery-slack computation.
:class:`~repro.scheduling.list_scheduler.ListScheduler` stays the public
entry point — it validates inputs, normalizes re-execution budgets and
memoizes the application's static structure — and hands the resulting
:class:`SchedulingProblem` to the selected backend.

The backend contract mirrors the SFP kernels (:mod:`repro.kernels.base`):
**bit identity**.  Every registered scheduler kernel must return, for every
input, a :class:`~repro.scheduling.schedule.Schedule` that is value-equal
(``Schedule.__eq__``) to the one the ``reference`` backend produces — every
process window, message window, recovery-slack reservation and budget, down
to the last float bit.  All schedule arithmetic is max/+ chains over the same
input floats, so a backend is free to reorganize *how* the chains are
evaluated (integer-indexed tables, flat reservation arrays) but never *what*
comes out.  Because of this, the kernel selection is deliberately **not**
part of any evaluation-engine cache key: cached design points stay valid
across kernel switches.

Kernels may keep a compiled representation of the application between calls
and are therefore **not** thread-safe; the process-parallel sweep gives each
worker its own registry (module state is per process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.comm.bus import Bus
    from repro.core.application import Application, Message
    from repro.core.architecture import Architecture
    from repro.core.mapping_model import ProcessMapping
    from repro.core.profile import ExecutionProfile
    from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class ScheduleStructure:
    """Static scheduling structure of one application, memoized upstream.

    ``layers`` concatenates the topological generations of every task graph
    (each layer is exactly one ready set of the original ready-list loop);
    ``incoming`` maps each process to its incoming messages.  ``token`` is the
    application's structural token (see ``Application.structure_token``): a
    new token means a new structure object, which is what kernel-side
    compilation caches key their identity checks on.
    """

    token: Tuple[object, ...]
    layers: List[List[str]]
    incoming: Dict[str, List["Message"]]


@dataclass(frozen=True)
class SchedulingProblem:
    """Everything one root-schedule construction depends on.

    ``budgets`` is the normalized re-execution budget per node (every node of
    the architecture has an entry); ``structure`` is the memoized static
    structure of ``application``.  The mapping has already been validated
    against the architecture and profile.
    """

    application: "Application"
    architecture: "Architecture"
    mapping: "ProcessMapping"
    profile: "ExecutionProfile"
    budgets: Dict[str, int]
    bus: "Bus"
    slack_sharing: bool
    structure: ScheduleStructure


class SchedulerKernel:
    """Abstract scheduler kernel backend.

    Subclasses set :attr:`name` (the registry/CLI identifier), a one-line
    :attr:`description`, and :attr:`priority` (higher wins ``auto``
    selection among available backends).
    """

    #: Registry identifier, also accepted by ``--sched-kernel``.
    name: str = ""
    #: One-line human description shown by the CLI/benchmark artifacts.
    description: str = ""
    #: ``auto`` selection rank; the highest-priority available kernel wins.
    priority: int = 0
    #: Whether :meth:`batch_schedule` is specialized for whole neighbourhoods.
    #: ``False`` means the default per-problem fallback loop; the flag is a
    #: sizing hint only — the fallback is total and bit-identical.
    supports_batch: bool = False

    @classmethod
    def is_available(cls) -> bool:
        """Can this backend run in the current environment?"""
        return True

    def build_schedule(self, problem: SchedulingProblem) -> "Schedule":
        """Construct the root schedule (with recovery slack) for ``problem``."""
        raise NotImplementedError

    def batch_schedule(self, problems: List[SchedulingProblem]) -> List["Schedule"]:
        """Construct root schedules for a block of sibling problems.

        Rows usually share the application structure and differ only in
        hardening / budgets / mapping deltas; specialized backends exploit
        that (compile once, replay delta rows).  Each returned schedule must
        be value-equal to the corresponding scalar :meth:`build_schedule`
        call; the default implementation *is* that scalar loop.
        """
        return [self.build_schedule(problem) for problem in problems]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
