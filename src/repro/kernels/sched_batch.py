"""Batch scheduler kernel — flat-table replay of whole neighbourhoods.

The flat backend already amortizes the expensive static work: the compiled
application tables are cached per (structure, profile) identity and the
mapping-derived tables in a *one-slot* memo.  That one slot is exactly wrong
for batched neighbourhoods whose rows interleave several mappings (the tabu
move generator emits one candidate mapping per row): every row evicts the
previous row's tables.

This backend implements the batched contract
(:meth:`~repro.kernels.sched_base.SchedulerKernel.batch_schedule`) by
replaying the flat per-row construction — bit-identical by inheritance — in
the caller's row order while *widening the mapping memo to the whole batch*:
mapping tables built for one row are re-installed whenever a later row uses
the same mapping (same identity and mutation version; the flat guard re-checks
the node-name order).  The compiled application tables are naturally shared
across the block.  Row order is preserved, so the bus object ends the batch
holding the last row's reservations exactly as the scalar loop would.

Priority 5 keeps ``auto`` selection on the ``flat`` backend; batching is
opt-in by name (``--sched-kernel batch`` / ``REPRO_SCHED_KERNEL=batch``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernels.sched_base import SchedulingProblem
from repro.kernels.sched_flat import FlatSchedulerKernel

if False:  # pragma: no cover - import cycle guard (typing only)
    from repro.scheduling.schedule import Schedule


class BatchSchedulerKernel(FlatSchedulerKernel):
    """Flat-table replay of a neighbourhood with a batch-wide mapping memo."""

    name = "batch"
    description = (
        "flat-table replay of whole neighbourhoods with a batch-wide "
        "mapping-table memo"
    )
    priority = 5
    supports_batch = True

    def batch_schedule(
        self, problems: List[SchedulingProblem]
    ) -> List["Schedule"]:
        schedules: List["Schedule"] = []
        # Harvested one-slot memos per (mapping identity, mutation version);
        # the problems list keeps every mapping alive, so ids are stable for
        # the duration of the batch.
        harvested: Dict[Tuple[int, int], Optional[Tuple]] = {}
        for problem in problems:
            mapping = problem.mapping
            memo = harvested.get((id(mapping), mapping.version))
            if memo is not None:
                self._mapping_memo = memo
            schedules.append(self.build_schedule(problem))
            memo = self._mapping_memo
            if memo is not None and memo[1] is mapping:
                harvested[(id(mapping), memo[2])] = memo
        return schedules
