"""Flat scheduler kernel — integer-indexed tables over preallocated arrays.

The per-object reference path spends most of a design-point evaluation in
string-keyed dictionary traffic: every placed process re-hashes its name to
find its node, its priority, its producers and its WCET, and every bus
message pays a :class:`~repro.comm.bus.BusReservation` round-trip through
``Bus.reserve``.  This backend compiles the memoized application structure
once into integer-indexed tables —

* process/node/message ids (names appear only in the final ``Schedule``),
* per ``(node type, hardening)`` WCET rows over all process ids,
* flat incoming-message and successor CSR tuples,

— and then runs priorities, layer placement and the ``SimpleBus``/``TDMABus``
gap search over plain float lists indexed by those ids.  The float arithmetic
is the exact operation sequence of the reference backend (same max/+ chains,
same reservation-scan order, same tie-breaks), so the resulting ``Schedule``
is value-equal bit for bit; the property suite and the golden fixtures pin
this.

Buses other than exactly ``SimpleBus`` / ``TDMABus`` may override
``_find_window`` with arbitrary policies the flat gap search cannot
reproduce, so those problems are delegated to the ``reference`` backend
rather than guessed at.

The compiled tables are cached per (structure, profile) identity — the
list scheduler memoizes the structure object, so the cache holds across the
thousands of design points of one exploration and recompiles only when the
application actually changes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.comm.bus import SimpleBus, TDMABus
from repro.core.exceptions import SchedulingError
from repro.kernels.sched_base import (
    ScheduleStructure,
    SchedulerKernel,
    SchedulingProblem,
)
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess

if TYPE_CHECKING:
    from repro.core.application import Application
    from repro.core.profile import ExecutionProfile

#: Name of the fallback backend for bus models the flat tables cannot honour.
_REFERENCE_NAME = "reference"

#: Bypass for the frozen-dataclass __setattr__ when handing a ready-made
#: __dict__ to a __new__-allocated output entry (see build_schedule).
_SET_ATTR = object.__setattr__


class _CompiledApplication:
    """Integer-indexed tables for one (application structure, profile) pair."""

    __slots__ = (
        "structure",
        "profile",
        "profile_version",
        "recovery_version",
        "names",
        "index",
        "layers",
        "in_edges",
        "rev_order",
        "succ_edges",
        "mu",
        "_entries",
        "_versions",
    )

    def __init__(
        self,
        structure: ScheduleStructure,
        application: Application,
        profile: ExecutionProfile,
    ) -> None:
        self.structure = structure
        self.profile = profile
        self.profile_version = profile.version
        self.recovery_version = application.recovery_version
        names: List[str] = []
        index: Dict[str, int] = {}
        for graph in application.graphs:
            for name in graph.process_names:
                index[name] = len(names)
                names.append(name)
        self.names = names
        self.index = index
        count = len(names)

        # Layers pre-sorted by process name: the per-call ordering sorts each
        # layer by descending priority with a *stable* sort, which then
        # reproduces the reference (-priority, name) tie-break without
        # building a tuple key per process per design point.
        self.layers = [
            [index[name] for name in sorted(layer)] for layer in structure.layers
        ]
        # Incoming CSR: (producer id, message name, producer name, duration)
        # per consumer, in the exact order the reference loop visits them.
        in_edges: List[Tuple] = [()] * count
        for name, messages in structure.incoming.items():
            in_edges[index[name]] = tuple(
                (index[message.source], message.name, message.source,
                 message.transmission_time)
                for message in messages
            )
        self.in_edges = in_edges

        # Priority walk: reversed topological order per graph, successor ids
        # with message durations, matching critical_path_priorities exactly
        # (a message always exists on an edge; adding 0.0 for a hypothetical
        # message-less edge is float-identical to not adding).
        rev_order: List[int] = []
        succ_edges: List[Tuple] = [()] * count
        for graph in application.graphs:
            successor_map = graph.adjacency_maps()[1]
            message_between = graph.message_between
            topological = graph.topological_order()
            for name in reversed(topological):
                rev_order.append(index[name])
            for name in topological:
                entries = []
                for successor in successor_map[name]:
                    message = message_between(name, successor)
                    entries.append(
                        (
                            index[successor],
                            message.transmission_time if message is not None else 0.0,
                        )
                    )
                succ_edges[index[name]] = tuple(entries)
        self.rev_order = rev_order
        self.succ_edges = succ_edges

        self.mu = [application.recovery_overhead_of(name) for name in names]
        self._entries = profile.entries()
        # WCET rows per (node type, hardening), built on first use; ``None``
        # marks a missing profile entry (never queried for validated
        # mappings, reported with the reference ProfileError if it is).
        self._versions: Dict[Tuple[str, int], List[Optional[float]]] = {}

    def wcet_row(self, type_name: str, hardening: int) -> List[Optional[float]]:
        key = (type_name, hardening)
        row = self._versions.get(key)
        if row is None:
            entries = self._entries
            row = [
                entry.wcet if entry is not None else None
                for entry in (
                    entries.get((name, type_name, hardening)) for name in self.names
                )
            ]
            self._versions[key] = row
        return row


class FlatSchedulerKernel(SchedulerKernel):
    """Integer-id placement + flat-array bus gap search (bit-identical)."""

    name = "flat"
    description = "integer-indexed tables and flat bus reservation arrays"
    priority = 10

    def __init__(self) -> None:
        self._compiled: Optional[_CompiledApplication] = None
        # One-slot memo of the mapping-derived tables (node id per process,
        # process ids per node).  The redundancy optimizer evaluates many
        # hardening vectors for the same mapping object in a row; the guard
        # is (compiled, mapping identity, mapping version, node-name order).
        self._mapping_memo: Optional[Tuple] = None

    # ------------------------------------------------------------------
    def _compile(self, problem: SchedulingProblem) -> _CompiledApplication:
        compiled = self._compiled
        # The list scheduler re-creates the structure object whenever the
        # application's structural token changes, and the compiled object
        # keeps strong references, so a recycled address can never alias a
        # dead structure/profile.  Identity alone does not cover *in-place*
        # edits of the snapshotted tables, so the profile's and the
        # application's recovery-overhead mutation counters are part of the
        # guard: overwriting a WCET entry or a mu value recompiles instead of
        # silently replaying stale floats.
        if (
            compiled is None
            or compiled.structure is not problem.structure
            or compiled.profile is not problem.profile
            or compiled.profile_version != problem.profile.version
            or compiled.recovery_version != problem.application.recovery_version
        ):
            compiled = _CompiledApplication(
                problem.structure, problem.application, problem.profile
            )
            self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    def build_schedule(self, problem: SchedulingProblem) -> Schedule:
        bus = problem.bus
        bus_type = type(bus)
        tdma = bus_type is TDMABus
        if not tdma and bus_type is not SimpleBus:
            # Unknown bus subclass: its _find_window may implement any
            # policy; only the reference backend can honour it.
            from repro.kernels.registry import get_sched_kernel

            return get_sched_kernel(_REFERENCE_NAME).build_schedule(problem)

        compiled = self._compile(problem)
        architecture = problem.architecture
        mapping = problem.mapping
        names = compiled.names
        index = compiled.index
        count = len(names)

        # --- per-design-point node tables ------------------------------
        node_names: List[str] = []
        node_rows: List[List[Optional[float]]] = []
        node_keys: List[Tuple[str, int]] = []
        node_index: Dict[str, int] = {}
        for node in architecture:
            node_index[node.name] = len(node_names)
            node_names.append(node.name)
            key = (node.node_type.name, node.hardening)
            node_keys.append(key)
            node_rows.append(compiled.wcet_row(*key))
        n_nodes = len(node_names)

        memo = self._mapping_memo
        if (
            memo is not None
            and memo[0] is compiled
            and memo[1] is mapping
            and memo[2] == mapping.version
            and memo[3] == node_names
        ):
            node_idx_of, on_node = memo[4], memo[5]
        else:
            node_idx_of = [0] * count
            on_node = [[] for _ in range(n_nodes)]
            for name, node_name in mapping.items():
                p = index[name]
                n = node_index[node_name]
                node_idx_of[p] = n
                on_node[n].append(p)
            self._mapping_memo = (
                compiled, mapping, mapping.version, list(node_names),
                node_idx_of, on_node,
            )

        # --- priorities (bit-identical to critical_path_priorities) ----
        # The reversed-topological walk visits every process exactly once,
        # so the per-process WCET resolution is fused into it.
        wcet_of = [0.0] * count
        priority = [0.0] * count
        succ_edges = compiled.succ_edges
        for p in compiled.rev_order:
            own_node = node_idx_of[p]
            wcet = node_rows[own_node][p]
            if wcet is None:
                # Raise the identical ProfileError of the per-object path.
                problem.profile.wcet(names[p], *node_keys[own_node])
            wcet_of[p] = wcet
            best_tail = 0.0
            for successor, duration in succ_edges[p]:
                tail = priority[successor]
                if node_idx_of[successor] != own_node:
                    tail += duration
                if tail > best_tail:
                    best_tail = tail
            priority[p] = wcet + best_tail

        # --- placement over flat arrays --------------------------------
        bus.reset()
        finish = [0.0] * count
        node_free = [0.0] * n_nodes
        processes_by_name: Dict[str, ScheduledProcess] = {}
        messages_by_name: Dict[str, ScheduledMessage] = {}
        max_message_finish = 0.0
        # Bus reservation windows, kept sorted by start time (parallel
        # arrays; ``windows`` carries the raw tuples the bus adopts lazily).
        res_start: List[float] = []
        res_finish: List[float] = []
        windows: List[Tuple[str, str, float, float]] = []
        if tdma:
            slot_length = bus.slot_length
            round_length = bus.round_length
            slot_index = {node: i for i, node in enumerate(bus.slot_order)}
            # Slot-indexed free-list: per slot, the granted windows sorted by
            # start time.  Every TDMA window lies inside one occurrence of
            # its sender's slot and distinct slots never share an instant
            # beyond boundary points, so a candidate can only ever conflict
            # with same-slot reservations — the gap search scans one short
            # sorted list (bisect + walk) instead of every bus reservation.
            slot_starts: List[List[float]] = [[] for _ in slot_index]
            slot_finishes: List[List[float]] = [[] for _ in slot_index]
            # The bisect walk needs the per-slot intervals pairwise disjoint,
            # which positive durations guarantee; the first zero-duration
            # grant in a slot drops that slot back to the full conflict scan.
            slot_clean: List[bool] = [True] * len(slot_index)

        # The output entries are frozen dataclasses whose generated __init__
        # assigns every field through object.__setattr__; handing __new__
        # instances a ready-made __dict__ produces identical objects (same
        # fields, same __eq__ / __hash__) at a fraction of the cost, which
        # matters at one object per process and message for every design
        # point of a sweep.
        new_message = ScheduledMessage.__new__
        new_process = ScheduledProcess.__new__
        in_edges = compiled.in_edges
        # While every granted window has positive duration the windows are
        # pairwise disjoint, so sorting by start also sorts by finish and a
        # bisect can skip the already-finished prefix of the gap scan.  The
        # first zero-duration reservation (zero-size message) drops back to
        # the reference full scan.
        finish_sorted = True
        for layer in compiled.layers:
            if len(layer) > 1:
                layer = sorted(layer, key=priority.__getitem__, reverse=True)
            for p in layer:
                n = node_idx_of[p]
                earliest = node_free[n]
                for producer, message_name, producer_name, duration in in_edges[p]:
                    pn = node_idx_of[producer]
                    ready = finish[producer]
                    if pn == n:
                        if ready > earliest:
                            earliest = ready
                        continue
                    sender = node_names[pn]
                    if tdma:
                        slot = slot_index.get(sender)
                        if slot is None:
                            raise SchedulingError(
                                f"Node {sender} owns no TDMA slot; slot order "
                                f"is {bus.slot_order}"
                            )
                        window = self._tdma_window(
                            ready, duration,
                            slot_starts[slot], slot_finishes[slot],
                            slot_clean[slot],
                            slot, slot_length, round_length,
                        )
                    else:
                        # SimpleBus._earliest_gap over the flat arrays.  A
                        # reservation with finish <= candidate can neither
                        # end the scan (its start precedes the candidate)
                        # nor move it, so the sorted-finish prefix is safely
                        # skipped when positive durations guarantee it.
                        candidate = ready
                        if finish_sorted and duration > 0.0:
                            scan = bisect_right(res_finish, candidate)
                        else:
                            scan = 0
                        for k in range(scan, len(res_start)):
                            if candidate + duration <= res_start[k]:
                                break
                            held = res_finish[k]
                            if candidate < held:
                                candidate = held
                        window = candidate
                    window_finish = window + duration
                    if window_finish == window:
                        finish_sorted = False
                    if tdma:
                        at_slot = bisect_right(slot_starts[slot], window)
                        slot_starts[slot].insert(at_slot, window)
                        slot_finishes[slot].insert(at_slot, window_finish)
                        if window_finish == window:
                            slot_clean[slot] = False
                    at = bisect_right(res_start, window)
                    res_start.insert(at, window)
                    res_finish.insert(at, window_finish)
                    windows.insert(
                        at, (message_name, sender, window, window_finish)
                    )
                    entry = new_message(ScheduledMessage)
                    _SET_ATTR(entry, "__dict__", {
                        "message": message_name,
                        "source_process": producer_name,
                        "destination_process": names[p],
                        "source_node": sender,
                        "destination_node": node_names[n],
                        "start": window,
                        "finish": window_finish,
                    })
                    messages_by_name[message_name] = entry
                    if window_finish > max_message_finish:
                        max_message_finish = window_finish
                    if window_finish > earliest:
                        earliest = window_finish
                done = earliest + wcet_of[p]
                finish[p] = done
                node_free[n] = done
                entry = new_process(ScheduledProcess)
                _SET_ATTR(entry, "__dict__", {
                    "process": names[p],
                    "node": node_names[n],
                    "start": earliest,
                    "finish": done,
                })
                processes_by_name[names[p]] = entry

        bus.adopt_reservations(windows)

        # --- recovery slack --------------------------------------------
        # Inlined shared/naive slack over the flat arrays: the same
        # ``budget * max_i(t + mu)`` / ``budget * sum_i(t + mu)`` chains as
        # repro.scheduling.slack, iterated in mapping order exactly like the
        # reference's processes_on scan (the list scheduler already rejected
        # negative budgets).
        sharing = problem.slack_sharing
        budgets = problem.budgets
        mu = compiled.mu
        slack: Dict[str, float] = {}
        for n in range(n_nodes):
            budget = budgets.get(node_names[n], 0)
            mapped = on_node[n]
            if not mapped or budget == 0:
                slack[node_names[n]] = 0.0
                continue
            if sharing:
                slack[node_names[n]] = budget * max(
                    wcet_of[p] + mu[p] for p in mapped
                )
            else:
                slack[node_names[n]] = budget * sum(
                    wcet_of[p] + mu[p] for p in mapped
                )

        schedule = Schedule.from_kernel(
            processes_by_name=processes_by_name,
            messages_by_name=messages_by_name,
            node_recovery_slack=slack,
            reexecutions=budgets,
            hardening={node_names[n]: node_keys[n][1] for n in range(n_nodes)},
        )
        # The worst-case length is already on hand: per-node completions are
        # the final node_free values and max over the same floats yields the
        # same float the lazy property would compute — seed it so the caller
        # skips the per-node table rebuild.
        length = max_message_finish
        for n in range(n_nodes):
            if on_node[n]:
                worst_case = node_free[n] + slack[node_names[n]]
                if worst_case > length:
                    length = worst_case
        schedule.seed_worst_case_length(length)
        return schedule

    # ------------------------------------------------------------------
    @staticmethod
    def _tdma_window(
        earliest_start: float,
        duration: float,
        starts: List[float],
        finishes: List[float],
        clean: bool,
        slot: int,
        slot_length: float,
        round_length: float,
    ) -> float:
        """``TDMABus._find_window`` over the sender's slot free-list.

        ``starts``/``finishes`` are the sender slot's granted windows sorted
        by start.  With pairwise-disjoint intervals (``clean``) the conflict
        resolution is a bisect into the finish array plus a forward walk —
        the walk visits exactly the contiguous run of conflicting windows the
        reference ``max(blocking)`` bump would jump over, one finish float at
        a time, so the resulting candidate is the identical float.  A slot
        polluted by zero-duration grants (nested intervals possible) keeps
        the reference full scan, restricted to the slot — cross-slot windows
        can never satisfy the strict-overlap predicate.
        """
        if duration > slot_length:
            raise SchedulingError(
                f"Message of duration {duration} ms does not fit into a TDMA slot "
                f"of {slot_length} ms"
            )
        total = len(starts)

        def conflicts(candidate: float) -> bool:
            limit = candidate + duration
            for k in range(total):
                if candidate < finishes[k] and starts[k] < limit:
                    return True
            return False

        round_number = max(0, int(earliest_start // round_length) - 1)
        for _ in range(total + int(1e6)):
            slot_start = round_number * round_length + slot * slot_length
            slot_end = slot_start + slot_length
            candidate = max(slot_start, earliest_start)
            if clean:
                k = bisect_right(finishes, candidate)
                while (
                    candidate + duration <= slot_end
                    and k < total
                    and starts[k] < candidate + duration
                ):
                    candidate = finishes[k]
                    k += 1
                if candidate + duration <= slot_end:
                    return candidate
            else:
                while candidate + duration <= slot_end and conflicts(candidate):
                    blocking = [
                        finishes[k]
                        for k in range(total)
                        if candidate < finishes[k]
                        and starts[k] < candidate + duration
                    ]
                    candidate = max(blocking)
                if candidate + duration <= slot_end and not conflicts(candidate):
                    return candidate
            round_number += 1
        raise SchedulingError(
            f"Could not find a TDMA window in slot {slot} "
            f"(duration {duration} ms after t={earliest_start} ms)"
        )  # pragma: no cover - defensive, loop bound is effectively unreachable
