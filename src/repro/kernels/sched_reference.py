"""Reference scheduler kernel — the per-object list-scheduling path.

This is the implementation every other scheduler backend is measured
against: the exact placement loop, bus ``reserve`` calls and recovery-slack
arithmetic that historically lived in
:class:`~repro.scheduling.list_scheduler.ListScheduler` and produced the
paper reproduction's published schedules.  It is deliberately boring — name
keyed dictionaries, one :meth:`~repro.comm.bus.Bus.reserve` call per
inter-node message — so it stays readable as the executable specification
of the scheduler bit-identity contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.kernels.sched_base import SchedulerKernel, SchedulingProblem
from repro.scheduling.priorities import critical_path_priorities
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack

if TYPE_CHECKING:
    from repro.comm.bus import Bus
    from repro.core.application import Message
    from repro.core.profile import ExecutionProfile


class ReferenceSchedulerKernel(SchedulerKernel):
    """Per-object list scheduling (the executable bit-identity specification)."""

    name = "reference"
    description = "per-object placement loop with Bus.reserve per message"
    priority = 0

    # ------------------------------------------------------------------
    def build_schedule(self, problem: SchedulingProblem) -> Schedule:
        application = problem.application
        architecture = problem.architecture
        mapping = problem.mapping
        profile = problem.profile
        bus = problem.bus

        priorities = critical_path_priorities(application, architecture, mapping, profile)
        scheduled: Dict[str, ScheduledProcess] = {}
        scheduled_messages: List[ScheduledMessage] = []
        node_free: Dict[str, float] = {node.name: 0.0 for node in architecture}
        bus.reset()

        layers = problem.structure.layers
        incoming = problem.structure.incoming
        # Per-call node view: (name, wcet lookup key) resolved once per node
        # instead of re-deriving type/hardening for each placed process.
        node_info: Dict[str, Tuple[str, str, int]] = {
            node.name: (node.name, node.node_type.name, node.hardening)
            for node in architecture
        }
        node_of = mapping.node_of
        for layer in layers:
            for process in sorted(
                layer, key=lambda process: (-priorities[process], process)
            ):
                entry, new_messages = self._place_process(
                    process,
                    incoming[process],
                    node_info[node_of(process)],
                    profile,
                    scheduled,
                    node_free,
                    bus,
                )
                scheduled[process] = entry
                scheduled_messages.extend(new_messages)
                node_free[entry.node] = entry.finish

        slack = self._recovery_slack(problem)
        return Schedule(
            processes=list(scheduled.values()),
            messages=scheduled_messages,
            node_recovery_slack=slack,
            reexecutions=problem.budgets,
            hardening=architecture.hardening_vector(),
        )

    # ------------------------------------------------------------------
    def _place_process(
        self,
        process: str,
        incoming_messages: List[Message],
        node_info: Tuple[str, str, int],
        profile: ExecutionProfile,
        scheduled: Dict[str, ScheduledProcess],
        node_free: Dict[str, float],
        bus: Bus,
    ) -> Tuple[ScheduledProcess, List[ScheduledMessage]]:
        """Compute the execution window of ``process`` and its input messages."""
        node_name, type_name, hardening = node_info
        earliest = node_free[node_name]
        new_messages: List[ScheduledMessage] = []
        for message in incoming_messages:
            producer_entry = scheduled[message.source]
            if producer_entry.node == node_name:
                # Intra-node communication happens through local memory and is
                # available as soon as the producer finishes.
                earliest = max(earliest, producer_entry.finish)
                continue
            reservation = bus.reserve(
                message.name,
                producer_entry.node,
                producer_entry.finish,
                message.transmission_time,
            )
            new_messages.append(
                ScheduledMessage(
                    message=message.name,
                    source_process=message.source,
                    destination_process=message.destination,
                    source_node=producer_entry.node,
                    destination_node=node_name,
                    start=reservation.start,
                    finish=reservation.finish,
                )
            )
            earliest = max(earliest, reservation.finish)
        wcet = profile.wcet(process, type_name, hardening)
        entry = ScheduledProcess(
            process=process, node=node_name, start=earliest, finish=earliest + wcet
        )
        return entry, new_messages

    def _recovery_slack(self, problem: SchedulingProblem) -> Dict[str, float]:
        """Recovery slack reserved at the end of each node's schedule."""
        slack: Dict[str, float] = {}
        slack_function = (
            shared_recovery_slack if problem.slack_sharing else naive_recovery_slack
        )
        application = problem.application
        mapping = problem.mapping
        budgets = problem.budgets
        wcet = problem.profile.wcet
        for node in problem.architecture:
            type_name = node.node_type.name
            hardening = node.hardening
            pairs = [
                (
                    wcet(process, type_name, hardening),
                    application.recovery_overhead_of(process),
                )
                for process in mapping.processes_on(node.name)
            ]
            slack[node.name] = slack_function(pairs, budgets.get(node.name, 0))
        return slack
