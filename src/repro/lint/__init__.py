"""AST-based invariant checker for the reproduction's domain contracts.

Generic linters cannot know that a builtin ``hash()`` inside
``engine/fingerprint.py`` breaks the federated warm store, or that mutating
``TaskGraph._messages`` without bumping ``structure_token`` silently serves
stale schedules.  ``repro.lint`` machine-checks exactly those contracts:

========  ==============================================================
R001      fingerprint purity — cache-key paths are content-pure
          (no ``hash()``/``id()``/``repr()``/unordered set-dict iteration)
R002      kernel-contract conformance — backends implement the full
          abstract contract with matching signatures, no mutable class
          state; cache-key modules never import ``repro.kernels``
R003      structure-token safety — guarded containers mutate only inside
          the token-bumping construction API
R004      seeded-RNG-only — no interpreter-global random state, and the
          allowed constructors are themselves seeded
R005      no ``Decimal``/``float`` mixing in the SFP rounding chains
R006      fork/pickle safety — everything crossing a process-pool
          boundary is transitively picklable by type
R007      worker isolation — task-reachable code mutates no module
          globals or shared Session/MemoCache/DesignPointStore state
R008      report JSON-serializability — payload values reach JSON-native
          types or pass through the canonicalizer
========  ==============================================================

The static rules are complemented by an opt-in *runtime* determinism
sanitizer (:mod:`repro.lint.sanitizer`, ``repro-ftes run --sanitize`` or
``REPRO_SANITIZE=1``) that observes a real run through patched choke points
and reports violations in the same format/rule-id vocabulary.

Run the static checker with ``repro-ftes lint`` or ``python -m repro.lint``;
see :mod:`repro.lint.cli` for options (JSON output, per-rule selection,
``--jobs N`` parallel parsing, the committed baseline,
``# repro-lint: disable=R00x`` suppressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro.lint.rules  # noqa: F401  (registers the rule set on import)
from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    match_baseline,
    save_baseline,
)
from repro.lint.model import (
    Violation,
    is_suppressed,
    sort_violations,
    suppressed_rules_by_line,
)
from repro.lint.project import Project
from repro.lint.registry import RULES, LintRule, RuleRegistry, register_rule


@dataclass
class LintReport:
    """Outcome of one lint run, pre-split against a baseline."""

    violations: List[Violation] = field(default_factory=list)
    new: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)
    suppressed_count: int = 0
    checked_modules: int = 0
    rule_ids: List[str] = field(default_factory=list)

    def exit_code(self, strict_baseline: bool = False) -> int:
        if self.new:
            return 1
        if strict_baseline and self.stale:
            return 1
        return 0

    def as_dict(self) -> Dict[str, object]:
        baselined_fingerprints = {id(v) for v in self.baselined}
        return {
            "checked_modules": self.checked_modules,
            "rules": self.rule_ids,
            "violations": [
                {**v.as_dict(), "baselined": id(v) in baselined_fingerprints}
                for v in self.violations
            ],
            "new_count": len(self.new),
            "baselined_count": len(self.baselined),
            "stale_entries": [entry.as_dict() for entry in self.stale],
            "suppressed_count": self.suppressed_count,
        }


def run_lint(
    project: Project,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Sequence[BaselineEntry] = (),
) -> LintReport:
    """Run the (selected) rule set over ``project`` and split vs ``baseline``."""
    selected = RULES.rules(list(rule_ids) if rule_ids is not None else None)
    raw: List[Violation] = []
    suppressed_count = 0
    suppression_maps = {
        name: suppressed_rules_by_line(module.lines)
        for name, module in project.modules.items()
    }
    for rule in selected:
        for violation in rule.check(project):
            suppressions = suppression_maps.get(violation.module, {})
            if is_suppressed(violation, suppressions):
                suppressed_count += 1
                continue
            raw.append(violation)
    violations = sort_violations(raw)
    new, baselined, stale = match_baseline(violations, baseline)
    return LintReport(
        violations=violations,
        new=new,
        baselined=baselined,
        stale=stale,
        suppressed_count=suppressed_count,
        checked_modules=len(project.modules),
        rule_ids=[rule.rule_id for rule in selected],
    )


__all__ = [
    "BaselineEntry",
    "BaselineError",
    "LintReport",
    "LintRule",
    "Project",
    "RULES",
    "RuleRegistry",
    "Violation",
    "load_baseline",
    "match_baseline",
    "register_rule",
    "run_lint",
    "save_baseline",
    "sort_violations",
]
