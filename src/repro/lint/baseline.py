"""Baseline file support: track legacy violations, fail only on new ones.

The baseline is a committed JSON file mapping known violations (by their
line-insensitive :meth:`~repro.lint.model.Violation.fingerprint`) so that a
freshly introduced invariant can land with the existing debt tracked rather
than fixed in the same change.  Matching is multiset-based: two identical
findings in the code need two baseline entries.

Stale entries — baseline lines no longer matched by any current violation —
are reported separately.  They mean debt was paid down without regenerating
the file; ``--strict-baseline`` (what CI uses) turns them into a failure so
the committed file never overstates the remaining debt.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.model import Violation

#: Format version of the baseline file.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One tracked legacy violation."""

    rule: str
    module: str
    symbol: str
    message: str
    fingerprint: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "module": self.module,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class BaselineError(ValueError):
    """The baseline file exists but cannot be interpreted."""


def entry_for(violation: Violation) -> BaselineEntry:
    return BaselineEntry(
        rule=violation.rule,
        module=violation.module,
        symbol=violation.symbol,
        message=violation.message,
        fingerprint=violation.fingerprint(),
    )


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Entries of the baseline file; a missing file is an empty baseline."""
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline file {path} has an unsupported layout "
            f"(expected version {BASELINE_VERSION}); regenerate it with "
            f"--write-baseline"
        )
    entries = []
    for record in payload.get("entries", []):
        entries.append(
            BaselineEntry(
                rule=str(record["rule"]),
                module=str(record["module"]),
                symbol=str(record.get("symbol", "")),
                message=str(record["message"]),
                fingerprint=str(record["fingerprint"]),
            )
        )
    return entries


def save_baseline(path: Path, violations: Sequence[Violation]) -> int:
    """Write a fresh baseline tracking exactly ``violations``; returns count."""
    entries = sorted(
        (entry_for(violation) for violation in violations),
        key=lambda entry: (entry.rule, entry.module, entry.symbol, entry.message),
    )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def match_baseline(
    violations: Sequence[Violation], entries: Sequence[BaselineEntry]
) -> Tuple[List[Violation], List[Violation], List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new, baselined, stale)``: violations not covered by the
    baseline, violations the baseline absorbs, and baseline entries no
    current violation matches.  Multiset semantics per fingerprint.
    """
    budget = Counter(entry.fingerprint for entry in entries)
    new: List[Violation] = []
    baselined: List[Violation] = []
    for violation in violations:
        fingerprint = violation.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            baselined.append(violation)
        else:
            new.append(violation)
    stale: List[BaselineEntry] = []
    remaining = dict(budget)
    for entry in entries:
        if remaining.get(entry.fingerprint, 0) > 0:
            remaining[entry.fingerprint] -= 1
            stale.append(entry)
    return new, baselined, stale
