"""Command-line driver of ``repro.lint`` (``repro-ftes lint``).

Exit codes: ``0`` — no non-baselined violations (and, under
``--strict-baseline``, no stale baseline entries); ``1`` — new violations
(or stale entries under ``--strict-baseline``); ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import (
    RULES,
    BaselineError,
    LintReport,
    Project,
    load_baseline,
    run_lint,
    save_baseline,
)

#: Name of the committed baseline file at the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def default_package_dir() -> Path:
    """The installed ``repro`` package directory (the default lint root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(package_dir: Path) -> Path:
    """``lint-baseline.json`` at the repository root of a src layout.

    For ``<repo>/src/repro`` this is ``<repo>/lint-baseline.json``; when the
    package is installed elsewhere the file simply does not exist, which is
    an empty baseline.
    """
    return package_dir.parent.parent / DEFAULT_BASELINE_NAME


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ftes lint",
        description=(
            "AST-based invariant checker: fingerprint purity, kernel "
            "contracts, structure-token safety, seeded RNGs, Decimal/float "
            "hygiene, fork/pickle safety, worker isolation, report "
            "JSON-serializability"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file tracking legacy violations "
            f"(default: {DEFAULT_BASELINE_NAME} at the repository root)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every violation is reported as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help=(
            "fail when the baseline has stale entries (violations fixed "
            "without regenerating the file); what CI runs"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help=(
            "worker processes for parallel module parsing "
            "(1 = serial, 0 = one per CPU)"
        ),
    )
    return parser


def _job_count(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (1 = serial, 0 = one per CPU), got {jobs}"
        )
    return jobs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for rule in RULES.rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"      {rule.rationale}")
        return 0

    rule_ids: Optional[List[str]] = None
    if arguments.rules:
        rule_ids = [part.strip() for part in arguments.rules.split(",") if part.strip()]
        unknown = sorted(set(rule_ids) - set(RULES.ids()))
        if unknown:
            print(
                f"error: unknown rule id(s) {', '.join(unknown)}; "
                f"registered: {', '.join(RULES.ids())}",
                file=sys.stderr,
            )
            return 2

    package_dir = (
        Path(arguments.root).resolve() if arguments.root else default_package_dir()
    )
    if not package_dir.is_dir():
        print(f"error: lint root {package_dir} is not a directory", file=sys.stderr)
        return 2
    project = Project.from_directory(package_dir, jobs=arguments.jobs)

    baseline_path = (
        Path(arguments.baseline)
        if arguments.baseline
        else default_baseline_path(package_dir)
    )
    if arguments.write_baseline:
        report = run_lint(project, rule_ids=rule_ids)
        count = save_baseline(baseline_path, report.violations)
        print(f"wrote {count} baseline entries to {baseline_path}")
        return 0

    baseline = []
    if not arguments.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = run_lint(project, rule_ids=rule_ids, baseline=baseline)
    if arguments.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        _print_text(report, strict_baseline=arguments.strict_baseline)
    return report.exit_code(strict_baseline=arguments.strict_baseline)


def _print_text(report: LintReport, strict_baseline: bool) -> None:
    for violation in report.new:
        print(violation.format_text())
    if report.stale:
        level = "error" if strict_baseline else "warning"
        for entry in report.stale:
            print(
                f"{level}: stale baseline entry {entry.fingerprint} "
                f"({entry.rule} in {entry.module}): the violation is gone — "
                f"regenerate with --write-baseline"
            )
    summary = (
        f"{report.checked_modules} modules checked "
        f"({', '.join(report.rule_ids)}): "
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.stale)} stale, {report.suppressed_count} suppressed"
    )
    print(summary)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
