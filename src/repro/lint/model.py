"""Violation model and suppression-comment handling for ``repro.lint``.

A :class:`Violation` is one rule finding, anchored to a module/line/column and
to the enclosing *symbol* (function or class qualname) when one exists.  The
:meth:`Violation.fingerprint` is deliberately line-number-insensitive — it
hashes the rule id, module, symbol and message — so the committed baseline
file survives unrelated edits that merely shift code up or down.

Suppressions are trailing (or immediately preceding, standalone) comments of
the form::

    risky_expression()  # repro-lint: disable=R001 -- short justification
    # repro-lint: disable=R003,R004 -- covers the next line
    another_expression()

``disable=all`` silences every rule for that line.  A justification after
``--`` is optional but encouraged; the linter only parses the rule list.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence

_SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Pseudo-rule name suppressing every rule on a line.
SUPPRESS_ALL = "all"


@dataclass(frozen=True)
class Violation:
    """One finding of one lint rule."""

    rule: str
    module: str
    path: str
    line: int
    column: int
    symbol: str
    message: str

    def fingerprint(self) -> str:
        """Stable identity of the finding, independent of line numbers."""
        payload = "\x1f".join((self.rule, self.module, self.symbol, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def format_text(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule}{symbol}: {self.message}"


def suppressed_rules_by_line(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them.

    A directive on a standalone comment line also covers the next line, so a
    suppression can sit above a long statement instead of trailing it.  Only
    the *first* physical line of a multi-line statement is covered — rules
    report violations at the statement head, which is where ``ast`` anchors
    its line numbers.
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if match is None:
            continue
        rules = frozenset(part.strip() for part in match.group(1).split(","))
        suppressed[index] = suppressed.get(index, frozenset()) | rules
        if line.lstrip().startswith("#"):
            # Standalone directive: extend the scope to the following line.
            suppressed[index + 1] = suppressed.get(index + 1, frozenset()) | rules
    return suppressed


def is_suppressed(
    violation: Violation, suppressed: Dict[int, FrozenSet[str]]
) -> bool:
    rules = suppressed.get(violation.line)
    if not rules:
        return False
    return violation.rule in rules or SUPPRESS_ALL in rules


def sort_violations(violations: List[Violation]) -> List[Violation]:
    """Deterministic report order: by path, line, column, then rule id."""
    return sorted(
        violations,
        key=lambda v: (v.path, v.line, v.column, v.rule, v.message),
    )
