"""Parsed-project model for ``repro.lint``: modules, imports and call graph.

A :class:`Project` is the unit every lint rule operates on: the ``ast`` trees
of all modules under one package, plus three cheap cross-module indexes —

* *name bindings* per module (``from repro.kernels.base import SFPKernel``
  binds ``SFPKernel`` to the dotted target ``repro.kernels.base.SFPKernel``),
* the *runtime import graph* (imports under ``if TYPE_CHECKING:`` are
  excluded — they never execute, so they cannot leak behaviour), and
* a best-effort *call graph* resolving ``Name``, ``module.attr`` and
  ``self.method`` call sites to project functions or to builtins.

The call resolution is deliberately conservative static analysis: anything it
cannot resolve (dynamic dispatch, higher-order callables) is simply not an
edge.  Rules that rely on reachability therefore under-approximate, which is
the right failure mode for a checker gating CI — no false alarms from
imaginary edges — while the known-bad fixture tests keep the resolution
honest on the patterns the rules exist to catch.

Projects load from a package directory (the real tree) or from an in-memory
``{module name: source}`` mapping (the fixture tests).
"""

from __future__ import annotations

import ast
import builtins as _builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtin callables that rules reason about; resolved as ``builtins.<name>``.
BUILTIN_NAMES = frozenset(
    {
        "hash",
        "id",
        "repr",
        "sorted",
        "set",
        "frozenset",
        "dict",
        "list",
        "tuple",
        "str",
        "float",
        "int",
        "min",
        "max",
    }
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: FunctionNode


@dataclass
class ClassInfo:
    """One top-level class definition."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class LintModule:
    """One parsed module plus its per-module indexes.

    The tree is parsed exactly once; :meth:`walk` and :meth:`parent_map`
    memoize the flat node list and the child-to-parent map so the growing
    rule set shares one traversal per module instead of re-walking the AST
    rule by rule.
    """

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    bindings: Dict[str, str] = field(default_factory=dict)
    runtime_imports: Set[str] = field(default_factory=set)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    _walked: Optional[List[ast.AST]] = field(default=None, repr=False, compare=False)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False, compare=False
    )

    def walk(self) -> List[ast.AST]:
        """Every node of the module tree, memoized across rules."""
        if self._walked is None:
            self._walked = list(ast.walk(self.tree))
        return self._walked

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child-to-parent node map over the whole module, memoized."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in self.walk():
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents


@dataclass(frozen=True)
class ValueOrigin:
    """Where a local name's value came from, as far as one pass can tell.

    ``kind`` is one of ``"call"`` (resolved constructor/function call,
    ``detail`` holds the dotted target), ``"lambda"``, ``"local_function"``
    (``detail`` holds the nested function's name), ``"set"``, ``"bytes"`` or
    ``"container"`` (tuple/list literal; ``elements`` holds the origins of
    the elements that themselves have one).
    """

    kind: str
    detail: str = ""
    node: Optional[ast.AST] = None
    elements: Tuple["ValueOrigin", ...] = ()


class FunctionDataflow:
    """Light intra-procedural value tracking for one function.

    A single forward pass over the function records, per local name, the
    origin of the value last assigned to it (direct assignment, annotated
    assignment, or ``with ... as name`` capture).  Annotated parameters whose
    annotation resolves to a project class count as instances of that class.
    The pass is deliberately flow-insensitive across branches — the right
    under-approximation for CI-gating rules: an origin is only recorded when
    the defining expression is unambiguous.
    """

    def __init__(self, project: "Project", module: LintModule, info: FunctionInfo) -> None:
        self._project = project
        self._module = module
        self._info = info
        self._nested: Set[str] = {
            node.name
            for node in ast.walk(info.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not info.node
        }
        self.env: Dict[str, ValueOrigin] = {}
        self._seed_parameters()
        self._scan()

    # ------------------------------------------------------------------
    def classify(self, expression: ast.expr) -> Optional[ValueOrigin]:
        """Origin of an arbitrary expression under the final environment."""
        if isinstance(expression, ast.Lambda):
            return ValueOrigin("lambda", node=expression)
        if isinstance(expression, (ast.Set, ast.SetComp)):
            return ValueOrigin("set", node=expression)
        if isinstance(expression, ast.Constant) and isinstance(expression.value, bytes):
            return ValueOrigin("bytes", node=expression)
        if isinstance(expression, ast.Name):
            known = self.env.get(expression.id)
            if known is not None:
                return known
            if expression.id in self._nested:
                return ValueOrigin("local_function", detail=expression.id, node=expression)
            return None
        if isinstance(expression, (ast.Tuple, ast.List)):
            elements = tuple(
                origin
                for origin in (self.classify(element) for element in expression.elts)
                if origin is not None
            )
            if elements:
                return ValueOrigin("container", node=expression, elements=elements)
            return None
        if isinstance(expression, ast.Call):
            target = self._project.call_target(self._module, expression, self._info)
            if target is not None:
                return ValueOrigin("call", detail=target, node=expression)
            return None
        return None

    # ------------------------------------------------------------------
    def _seed_parameters(self) -> None:
        arguments = self._info.node.args
        parameters = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]
        for parameter in parameters:
            if parameter.annotation is None:
                continue
            dotted = dotted_name(parameter.annotation)
            if dotted is None:
                continue
            resolved = self._project.resolve_dotted(self._module, dotted)
            found = self._project.find_class(self._module, resolved)
            if found is not None:
                self.env[parameter.arg] = ValueOrigin(
                    "call", detail=found.qualname, node=parameter
                )

    def _scan(self) -> None:
        for node in ast.walk(self._info.node):
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    self._record(node.targets[0].id, node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self._record(node.target.id, node.value)
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    self._record(node.optional_vars.id, node.context_expr)

    def _record(self, name: str, value: ast.expr) -> None:
        origin = self.classify(value)
        if origin is not None:
            self.env[name] = origin
        else:
            self.env.pop(name, None)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Unparse a pure ``Name``/``Attribute`` chain; ``None`` for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_type_checking_test(test: ast.expr) -> bool:
    target = dotted_name(test)
    return target in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


class Project:
    """All modules of one package, indexed for rule consumption."""

    def __init__(self, modules: Dict[str, LintModule]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.package_names: Set[str] = {
            name
            for name in modules
            if any(other.startswith(name + ".") for other in modules)
        }
        for module in modules.values():
            self._index_module(module)
        # Unique class-name index: resolves re-exported names (``from
        # repro.engine import DesignPointStore``) back to the defining class.
        # Ambiguous names map to None and never resolve.
        self._classes_by_name: Dict[str, Optional[ClassInfo]] = {}
        for class_info in self.classes.values():
            if class_info.name in self._classes_by_name:
                self._classes_by_name[class_info.name] = None
            else:
                self._classes_by_name[class_info.name] = class_info
        self._dataflow_cache: Dict[str, FunctionDataflow] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_directory(
        cls,
        package_dir: Path,
        package: Optional[str] = None,
        jobs: int = 1,
    ) -> "Project":
        """Parse every ``*.py`` file under one package directory.

        ``package_dir`` is the directory of the package itself (the one
        containing the top-level ``__init__.py``); ``package`` defaults to
        the directory name.  ``jobs > 1`` parses the files in a process pool
        (AST trees pickle cleanly); cross-module indexing stays in the
        parent, so results are identical to the serial path.  ``jobs == 0``
        means one worker per CPU.
        """
        if jobs == 0:
            import os

            jobs = os.cpu_count() or 1
        package_dir = Path(package_dir).resolve()
        package_name = package or package_dir.name
        tasks: List[Tuple[str, str, str]] = []
        for path in sorted(package_dir.rglob("*.py")):
            relative = path.relative_to(package_dir)
            parts = [package_name, *relative.parts[:-1]]
            if relative.name != "__init__.py":
                parts.append(relative.stem)
            name = ".".join(parts)
            display = str(Path(package_dir.name, *relative.parts))
            tasks.append((name, display, str(path)))
        modules: Dict[str, LintModule] = {}
        if jobs > 1 and len(tasks) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for module in pool.map(_load_module_file, tasks):
                    modules[module.name] = module
        else:
            for task in tasks:
                module = _load_module_file(task)
                modules[module.name] = module
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{dotted module name: source}`` (tests)."""
        modules = {
            name: _parse_module(name, f"<memory>/{name}.py", source)
            for name, source in sources.items()
        }
        return cls(modules)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def _index_module(self, module: LintModule) -> None:
        _collect_imports(module)
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{statement.name}",
                    module=module.name,
                    name=statement.name,
                    class_name=None,
                    node=statement,
                )
                module.functions[info.qualname] = info
            elif isinstance(statement, ast.ClassDef):
                class_info = ClassInfo(
                    qualname=f"{module.name}.{statement.name}",
                    module=module.name,
                    name=statement.name,
                    node=statement,
                )
                for base in statement.bases:
                    base_name = dotted_name(base)
                    if base_name is not None:
                        class_info.bases.append(base_name)
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{class_info.qualname}.{member.name}",
                            module=module.name,
                            name=member.name,
                            class_name=statement.name,
                            node=member,
                        )
                        class_info.methods[member.name] = info
                        module.functions[info.qualname] = info
                module.classes[class_info.qualname] = class_info
        self.functions.update(module.functions)
        self.classes.update(module.classes)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, module: LintModule, dotted: str) -> str:
        """Rewrite a dotted chain through the module's import bindings."""
        first, _, rest = dotted.partition(".")
        target = module.bindings.get(first)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_base_class(self, module: LintModule, base: str) -> Optional[ClassInfo]:
        """Resolve a base-class expression to a project class, if any.

        Checks the module's import bindings first, then the module's own
        namespace (a base defined in the same file is written unqualified).
        """
        resolved = self.resolve_dotted(module, base)
        found = self.classes.get(resolved)
        if found is None:
            found = self.classes.get(f"{module.name}.{resolved}")
        return found

    def resolve_call(
        self,
        module: LintModule,
        call: ast.Call,
        enclosing: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Qualified target of a call site, or ``None`` when unresolvable.

        Returns a project function qualname, a project *class* qualname (for
        constructor calls), or ``builtins.<name>`` for recognized builtins.
        """
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{module.name}.{func.id}"
            if local in self.functions:
                return local
            if local in self.classes:
                return local
            target = module.bindings.get(func.id)
            if target is not None:
                return target
            if func.id in BUILTIN_NAMES:
                return f"builtins.{func.id}"
            return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        if first in ("self", "cls") and rest:
            if enclosing is not None and enclosing.class_name is not None:
                candidate = f"{module.name}.{enclosing.class_name}.{rest}"
                if candidate in self.functions:
                    return candidate
            return None
        resolved = self.resolve_dotted(module, dotted)
        if resolved in self.functions or resolved in self.classes:
            return resolved
        return None

    def call_target(
        self,
        module: LintModule,
        call: ast.Call,
        enclosing: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Best-effort dotted target of a call, including external callables.

        Like :meth:`resolve_call` but also names targets *outside* the
        project: any Python builtin resolves to ``builtins.<name>``, and a
        dotted chain rooted in an import binding resolves to its external
        dotted path (``concurrent.futures.ProcessPoolExecutor``,
        ``decimal.getcontext``).  Attribute chains rooted in a local variable
        stay unresolvable — the dataflow pass handles those separately.
        """
        resolved = self.resolve_call(module, call, enclosing)
        if resolved is not None:
            return resolved
        func = call.func
        if isinstance(func, ast.Name):
            if hasattr(_builtins, func.id):
                return f"builtins.{func.id}"
            return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        first, _, _rest = dotted.partition(".")
        if first in ("self", "cls"):
            return None
        if first in module.bindings:
            return self.resolve_dotted(module, dotted)
        return None

    def find_class(self, module: LintModule, dotted: str) -> Optional[ClassInfo]:
        """Project class named by ``dotted``, tolerating re-exported paths.

        Tries the exact qualname, the module-local name, then — best effort —
        a project-unique class-name suffix (resolves ``from repro.engine
        import DesignPointStore`` back to the defining class).
        """
        found = self.classes.get(dotted)
        if found is None:
            found = self.classes.get(f"{module.name}.{dotted}")
        if found is None:
            found = self._classes_by_name.get(dotted.rsplit(".", 1)[-1])
        return found

    def dataflow(self, info: FunctionInfo) -> FunctionDataflow:
        """Memoized :class:`FunctionDataflow` for one project function."""
        cached = self._dataflow_cache.get(info.qualname)
        if cached is None:
            cached = FunctionDataflow(self, self.modules[info.module], info)
            self._dataflow_cache[info.qualname] = cached
        return cached

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def reachable_functions(
        self, roots: Iterable[str], follow_instances: bool = False
    ) -> Set[str]:
        """Project functions reachable from ``roots`` through resolved calls.

        Constructor calls continue into the class's ``__init__``.  The walk
        stays within the project; builtins terminate an edge.  With
        ``follow_instances`` the dataflow pass extends the edge set: a method
        call on a local whose tracked origin is a project-class constructor
        (``store = DesignPointStore(...); store.warm(...)``) resolves into
        that class's method.
        """
        queue: List[str] = [root for root in roots if root in self.functions]
        reachable: Set[str] = set(queue)
        while queue:
            qualname = queue.pop()
            info = self.functions[qualname]
            module = self.modules[info.module]
            flow = self.dataflow(info) if follow_instances else None
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(module, node, info)
                if target is None and flow is not None:
                    target = self._instance_method_target(module, node, flow)
                if target is None or target.startswith("builtins."):
                    continue
                if target in self.classes:
                    target = f"{target}.__init__"
                if target in self.functions and target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        return reachable

    def _instance_method_target(
        self, module: LintModule, call: ast.Call, flow: FunctionDataflow
    ) -> Optional[str]:
        """Resolve ``local.method(...)`` through the local's tracked origin."""
        func = call.func
        if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
            return None
        origin = flow.env.get(func.value.id)
        if origin is None or origin.kind != "call":
            return None
        class_info = self.find_class(module, origin.detail)
        if class_info is None:
            return None
        method = class_info.methods.get(func.attr)
        return method.qualname if method is not None else None

    def runtime_import_closure(self, root: str) -> Set[str]:
        """Project modules transitively imported from ``root`` at runtime.

        Follows the modules a file imports *by name* (including submodules
        pulled in through ``from package import submodule``).  Package
        ``__init__`` modules join the closure as members but their own
        imports are not expanded: they are aggregation surfaces, and
        following them would model interpreter import side effects
        ("importing ``repro`` executes ``repro.core``") rather than what the
        rules ask — "does this module's code use X".
        """
        if root not in self.modules:
            return set()
        closure: Set[str] = set()
        queue = [root]
        while queue:
            name = queue.pop()
            if name in closure or name not in self.modules:
                continue
            closure.add(name)
            if name != root and name in self.package_names:
                continue
            module = self.modules[name]
            queue.extend(
                target for target in module.runtime_imports if target in self.modules
            )
        return closure

    def enclosing_function(self, module: LintModule, node: ast.AST) -> Optional[str]:
        """Qualname of the innermost indexed function containing ``node``."""
        best: Optional[Tuple[int, str]] = None
        node_line = getattr(node, "lineno", None)
        if node_line is None:
            return None
        for info in module.functions.values():
            start = info.node.lineno
            end = getattr(info.node, "end_lineno", start)
            if start <= node_line <= (end or start):
                if best is None or start > best[0]:
                    best = (start, info.qualname)
        return best[1] if best is not None else None


# ----------------------------------------------------------------------
# module parsing helpers
# ----------------------------------------------------------------------
def _parse_module(name: str, path: str, source: str) -> LintModule:
    tree = ast.parse(source, filename=path)
    return LintModule(
        name=name,
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def _load_module_file(task: Tuple[str, str, str]) -> LintModule:
    """Read and parse one file; module-level so a process pool can run it."""
    name, display, path = task
    source = Path(path).read_text(encoding="utf-8")
    return _parse_module(name, display, source)


def _resolve_relative(module_name: str, level: int, target: Optional[str]) -> str:
    """Absolute module named by a ``from``-import with ``level`` leading dots."""
    if level == 0:
        return target or ""
    # Relative to the containing package: one level strips the module's own
    # name, each further level one more package.  Module vs package __init__
    # cannot be distinguished from the name alone; the repository uses
    # absolute imports throughout, so this path is best-effort.
    base = module_name.split(".")[:-level]
    if target:
        base.append(target)
    return ".".join(base)


def _collect_imports(module: LintModule) -> None:
    """Populate ``bindings`` and ``runtime_imports`` for one module."""

    def visit(statements: Iterable[ast.stmt], type_checking: bool) -> None:
        for statement in statements:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    module.bindings[bound] = target
                    if not type_checking:
                        module.runtime_imports.add(alias.name)
            elif isinstance(statement, ast.ImportFrom):
                source = _resolve_relative(
                    module.name, statement.level, statement.module
                )
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.bindings[bound] = f"{source}.{alias.name}" if source else alias.name
                    if not type_checking:
                        module.runtime_imports.add(source)
                        # ``from package import submodule`` imports the
                        # submodule at runtime as well.
                        module.runtime_imports.add(
                            f"{source}.{alias.name}" if source else alias.name
                        )
            elif isinstance(statement, ast.If):
                guarded = type_checking or _is_type_checking_test(statement.test)
                visit(statement.body, guarded)
                visit(statement.orelse, type_checking)
            elif isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With, ast.Try),
            ):
                bodies: List[Iterable[ast.stmt]] = [statement.body]
                if isinstance(statement, ast.Try):
                    bodies.extend(handler.body for handler in statement.handlers)
                    bodies.append(statement.orelse)
                    bodies.append(statement.finalbody)
                for body in bodies:
                    visit(body, type_checking)

    visit(module.tree.body, False)
