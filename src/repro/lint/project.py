"""Parsed-project model for ``repro.lint``: modules, imports and call graph.

A :class:`Project` is the unit every lint rule operates on: the ``ast`` trees
of all modules under one package, plus three cheap cross-module indexes —

* *name bindings* per module (``from repro.kernels.base import SFPKernel``
  binds ``SFPKernel`` to the dotted target ``repro.kernels.base.SFPKernel``),
* the *runtime import graph* (imports under ``if TYPE_CHECKING:`` are
  excluded — they never execute, so they cannot leak behaviour), and
* a best-effort *call graph* resolving ``Name``, ``module.attr`` and
  ``self.method`` call sites to project functions or to builtins.

The call resolution is deliberately conservative static analysis: anything it
cannot resolve (dynamic dispatch, higher-order callables) is simply not an
edge.  Rules that rely on reachability therefore under-approximate, which is
the right failure mode for a checker gating CI — no false alarms from
imaginary edges — while the known-bad fixture tests keep the resolution
honest on the patterns the rules exist to catch.

Projects load from a package directory (the real tree) or from an in-memory
``{module name: source}`` mapping (the fixture tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtin callables that rules reason about; resolved as ``builtins.<name>``.
BUILTIN_NAMES = frozenset(
    {
        "hash",
        "id",
        "repr",
        "sorted",
        "set",
        "frozenset",
        "dict",
        "list",
        "tuple",
        "str",
        "float",
        "int",
        "min",
        "max",
    }
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: FunctionNode


@dataclass
class ClassInfo:
    """One top-level class definition."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class LintModule:
    """One parsed module plus its per-module indexes."""

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    bindings: Dict[str, str] = field(default_factory=dict)
    runtime_imports: Set[str] = field(default_factory=set)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Unparse a pure ``Name``/``Attribute`` chain; ``None`` for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_type_checking_test(test: ast.expr) -> bool:
    target = dotted_name(test)
    return target in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


class Project:
    """All modules of one package, indexed for rule consumption."""

    def __init__(self, modules: Dict[str, LintModule]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.package_names: Set[str] = {
            name
            for name in modules
            if any(other.startswith(name + ".") for other in modules)
        }
        for module in modules.values():
            self._index_module(module)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_directory(cls, package_dir: Path, package: Optional[str] = None) -> "Project":
        """Parse every ``*.py`` file under one package directory.

        ``package_dir`` is the directory of the package itself (the one
        containing the top-level ``__init__.py``); ``package`` defaults to
        the directory name.
        """
        package_dir = Path(package_dir).resolve()
        package_name = package or package_dir.name
        modules: Dict[str, LintModule] = {}
        for path in sorted(package_dir.rglob("*.py")):
            relative = path.relative_to(package_dir)
            parts = [package_name, *relative.parts[:-1]]
            if relative.name != "__init__.py":
                parts.append(relative.stem)
            name = ".".join(parts)
            display = str(Path(package_dir.name, *relative.parts))
            source = path.read_text(encoding="utf-8")
            modules[name] = _parse_module(name, display, source)
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{dotted module name: source}`` (tests)."""
        modules = {
            name: _parse_module(name, f"<memory>/{name}.py", source)
            for name, source in sources.items()
        }
        return cls(modules)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def _index_module(self, module: LintModule) -> None:
        _collect_imports(module)
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{statement.name}",
                    module=module.name,
                    name=statement.name,
                    class_name=None,
                    node=statement,
                )
                module.functions[info.qualname] = info
            elif isinstance(statement, ast.ClassDef):
                class_info = ClassInfo(
                    qualname=f"{module.name}.{statement.name}",
                    module=module.name,
                    name=statement.name,
                    node=statement,
                )
                for base in statement.bases:
                    base_name = dotted_name(base)
                    if base_name is not None:
                        class_info.bases.append(base_name)
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{class_info.qualname}.{member.name}",
                            module=module.name,
                            name=member.name,
                            class_name=statement.name,
                            node=member,
                        )
                        class_info.methods[member.name] = info
                        module.functions[info.qualname] = info
                module.classes[class_info.qualname] = class_info
        self.functions.update(module.functions)
        self.classes.update(module.classes)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, module: LintModule, dotted: str) -> str:
        """Rewrite a dotted chain through the module's import bindings."""
        first, _, rest = dotted.partition(".")
        target = module.bindings.get(first)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_base_class(self, module: LintModule, base: str) -> Optional[ClassInfo]:
        """Resolve a base-class expression to a project class, if any.

        Checks the module's import bindings first, then the module's own
        namespace (a base defined in the same file is written unqualified).
        """
        resolved = self.resolve_dotted(module, base)
        found = self.classes.get(resolved)
        if found is None:
            found = self.classes.get(f"{module.name}.{resolved}")
        return found

    def resolve_call(
        self,
        module: LintModule,
        call: ast.Call,
        enclosing: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Qualified target of a call site, or ``None`` when unresolvable.

        Returns a project function qualname, a project *class* qualname (for
        constructor calls), or ``builtins.<name>`` for recognized builtins.
        """
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{module.name}.{func.id}"
            if local in self.functions:
                return local
            if local in self.classes:
                return local
            target = module.bindings.get(func.id)
            if target is not None:
                return target
            if func.id in BUILTIN_NAMES:
                return f"builtins.{func.id}"
            return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        if first in ("self", "cls") and rest:
            if enclosing is not None and enclosing.class_name is not None:
                candidate = f"{module.name}.{enclosing.class_name}.{rest}"
                if candidate in self.functions:
                    return candidate
            return None
        resolved = self.resolve_dotted(module, dotted)
        if resolved in self.functions or resolved in self.classes:
            return resolved
        return None

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def reachable_functions(self, roots: Iterable[str]) -> Set[str]:
        """Project functions reachable from ``roots`` through resolved calls.

        Constructor calls continue into the class's ``__init__``.  The walk
        stays within the project; builtins terminate an edge.
        """
        queue: List[str] = [root for root in roots if root in self.functions]
        reachable: Set[str] = set(queue)
        while queue:
            qualname = queue.pop()
            info = self.functions[qualname]
            module = self.modules[info.module]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(module, node, info)
                if target is None or target.startswith("builtins."):
                    continue
                if target in self.classes:
                    target = f"{target}.__init__"
                if target in self.functions and target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        return reachable

    def runtime_import_closure(self, root: str) -> Set[str]:
        """Project modules transitively imported from ``root`` at runtime.

        Follows the modules a file imports *by name* (including submodules
        pulled in through ``from package import submodule``).  Package
        ``__init__`` modules join the closure as members but their own
        imports are not expanded: they are aggregation surfaces, and
        following them would model interpreter import side effects
        ("importing ``repro`` executes ``repro.core``") rather than what the
        rules ask — "does this module's code use X".
        """
        if root not in self.modules:
            return set()
        closure: Set[str] = set()
        queue = [root]
        while queue:
            name = queue.pop()
            if name in closure or name not in self.modules:
                continue
            closure.add(name)
            if name != root and name in self.package_names:
                continue
            module = self.modules[name]
            queue.extend(
                target for target in module.runtime_imports if target in self.modules
            )
        return closure

    def enclosing_function(self, module: LintModule, node: ast.AST) -> Optional[str]:
        """Qualname of the innermost indexed function containing ``node``."""
        best: Optional[Tuple[int, str]] = None
        node_line = getattr(node, "lineno", None)
        if node_line is None:
            return None
        for info in module.functions.values():
            start = info.node.lineno
            end = getattr(info.node, "end_lineno", start)
            if start <= node_line <= (end or start):
                if best is None or start > best[0]:
                    best = (start, info.qualname)
        return best[1] if best is not None else None


# ----------------------------------------------------------------------
# module parsing helpers
# ----------------------------------------------------------------------
def _parse_module(name: str, path: str, source: str) -> LintModule:
    tree = ast.parse(source, filename=path)
    return LintModule(
        name=name,
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def _resolve_relative(module_name: str, level: int, target: Optional[str]) -> str:
    """Absolute module named by a ``from``-import with ``level`` leading dots."""
    if level == 0:
        return target or ""
    # Relative to the containing package: one level strips the module's own
    # name, each further level one more package.  Module vs package __init__
    # cannot be distinguished from the name alone; the repository uses
    # absolute imports throughout, so this path is best-effort.
    base = module_name.split(".")[:-level]
    if target:
        base.append(target)
    return ".".join(base)


def _collect_imports(module: LintModule) -> None:
    """Populate ``bindings`` and ``runtime_imports`` for one module."""

    def visit(statements: Iterable[ast.stmt], type_checking: bool) -> None:
        for statement in statements:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    module.bindings[bound] = target
                    if not type_checking:
                        module.runtime_imports.add(alias.name)
            elif isinstance(statement, ast.ImportFrom):
                source = _resolve_relative(
                    module.name, statement.level, statement.module
                )
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.bindings[bound] = f"{source}.{alias.name}" if source else alias.name
                    if not type_checking:
                        module.runtime_imports.add(source)
                        # ``from package import submodule`` imports the
                        # submodule at runtime as well.
                        module.runtime_imports.add(
                            f"{source}.{alias.name}" if source else alias.name
                        )
            elif isinstance(statement, ast.If):
                guarded = type_checking or _is_type_checking_test(statement.test)
                visit(statement.body, guarded)
                visit(statement.orelse, type_checking)
            elif isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With, ast.Try),
            ):
                bodies: List[Iterable[ast.stmt]] = [statement.body]
                if isinstance(statement, ast.Try):
                    bodies.extend(handler.body for handler in statement.handlers)
                    bodies.append(statement.orelse)
                    bodies.append(statement.finalbody)
                for body in bodies:
                    visit(body, type_checking)

    visit(module.tree.body, False)
