"""Rule registry for ``repro.lint`` — same shape as ``kernels/registry.py``.

Rules are classes registered under a stable id (``R001`` …); the registry
owns one singleton instance per rule and hands out deterministic, id-sorted
listings.  Registration happens at import time of :mod:`repro.lint.rules`,
exactly like kernel backends registering at the bottom of their registry
module — a rule that is not imported does not exist, so the rule set is
always the imported code, never stale configuration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Type

from repro.lint.model import Violation
from repro.lint.project import Project


class LintRule:
    """Abstract lint rule.

    Subclasses set :attr:`rule_id` (the registry/CLI/suppression identifier),
    a one-line :attr:`title`, and :attr:`rationale` (why the invariant exists;
    surfaced by ``--list-rules`` and the docs) — then implement :meth:`check`.
    """

    #: Registry identifier, also used in ``# repro-lint: disable=`` comments.
    rule_id: str = ""
    #: One-line human description of what the rule enforces.
    title: str = ""
    #: Why violating the invariant breaks the reproduction (one sentence).
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Violation]:
        """Yield every violation of this rule in ``project``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rule_id={self.rule_id!r})"


class RuleRegistry:
    """Registry + singleton store of the lint rule set."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[LintRule]] = {}
        self._instances: Dict[str, LintRule] = {}

    def register(self, rule_class: Type[LintRule]) -> Type[LintRule]:
        """Register a rule class under its ``rule_id`` (usable as decorator)."""
        rule_id = rule_class.rule_id
        if not rule_id:
            raise ValueError(f"Rule class {rule_class.__name__} needs a rule_id")
        existing = self._classes.get(rule_id)
        if existing is not None and existing is not rule_class:
            raise ValueError(f"Rule id {rule_id!r} is already registered")
        self._classes[rule_id] = rule_class
        return rule_class

    def ids(self) -> List[str]:
        return sorted(self._classes)

    def get(self, rule_id: str) -> LintRule:
        rule_class = self._classes.get(rule_id)
        if rule_class is None:
            raise KeyError(
                f"Unknown lint rule {rule_id!r}; registered: {self.ids()}"
            )
        instance = self._instances.get(rule_id)
        if instance is None:
            instance = self._instances[rule_id] = rule_class()
        return instance

    def rules(self, only: Optional[List[str]] = None) -> List[LintRule]:
        """Rule instances in id order, optionally restricted to ``only``."""
        ids = self.ids() if only is None else sorted(only)
        return [self.get(rule_id) for rule_id in ids]


#: The process-wide rule registry (populated by importing repro.lint.rules).
RULES = RuleRegistry()


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    return RULES.register(rule_class)
