"""Domain rules of ``repro.lint``.

Importing this package registers every rule with
:data:`repro.lint.registry.RULES` — the same import-time registration idiom
the kernel backends use.  One module per rule keeps each invariant's
detection logic reviewable next to its rationale.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    r001_fingerprint_purity,
    r002_kernel_contract,
    r003_structure_token,
    r004_seeded_rng,
    r005_decimal_float,
    r006_fork_pickle,
    r007_worker_isolation,
    r008_report_json,
)

__all__ = [
    "r001_fingerprint_purity",
    "r002_kernel_contract",
    "r003_structure_token",
    "r004_seeded_rng",
    "r005_decimal_float",
    "r006_fork_pickle",
    "r007_worker_isolation",
    "r008_report_json",
]
