"""R001 — fingerprint purity: cache keys must be canonical and run-stable.

The persistent design-point store (and ROADMAP's federated warm store) is
only sound if every value flowing into a cache key is a pure function of the
design point's *content*.  Three classes of impurity can leak into a key
computation without failing any test on a single machine:

* ``hash()`` — salted per interpreter run (``PYTHONHASHSEED``);
* ``id()`` — an address, different every run;
* ``repr()`` — representation-sensitive (container ordering, future float
  formatting changes); key paths must encode through an explicit canonical
  encoder instead;
* iterating a ``set`` (hash order) or a dict view without a ``sorted(...)``
  normalization — order-dependent when the consumer folds the sequence.

The rule computes the call-graph closure of the key-computation roots — all
top-level functions of ``repro.engine.fingerprint`` plus the store's
file-key methods — and flags the patterns above anywhere in that closure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.model import Violation
from repro.lint.project import FunctionInfo, LintModule, Project, dotted_name
from repro.lint.registry import LintRule, register_rule

#: Modules whose every top-level function is a key-computation root.
KEY_ROOT_MODULES: Tuple[str, ...] = ("repro.engine.fingerprint",)

#: Individual functions/methods that are key-computation roots.
KEY_ROOT_FUNCTIONS: Tuple[str, ...] = (
    "repro.engine.store.DesignPointStore.context_key",
    "repro.engine.store.DesignPointStore.path_for",
)

#: Builtins whose *output* is not a pure function of input content.
_IMPURE_BUILTINS = {
    "builtins.hash": (
        "builtin hash() is salted per interpreter run (PYTHONHASHSEED); "
        "use a sha256 digest of the canonical encoding"
    ),
    "builtins.id": (
        "id() is an object address — different every run; "
        "key material must be content-derived"
    ),
    "builtins.repr": (
        "repr() is representation-sensitive; encode key material through "
        "an explicit canonical encoder"
    ),
}

#: Wrapper calls that make an iteration order-insensitive.
_ORDER_NORMALIZERS = {"builtins.sorted", "builtins.min", "builtins.max"}

_DICT_VIEW_METHODS = {"keys", "values", "items"}


@register_rule
class FingerprintPurityRule(LintRule):
    """No impure builtins or unordered iteration on cache-key paths."""

    rule_id = "R001"
    title = "fingerprint purity: cache-key paths must be content-pure"
    rationale = (
        "cache keys must be canonical and PYTHONHASHSEED-independent or the "
        "persistent warm store returns wrong hits across runs and machines"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        roots = self._roots(project)
        for qualname in sorted(project.reachable_functions(roots)):
            info = project.functions[qualname]
            module = project.modules[info.module]
            yield from self._check_function(project, module, info)

    # ------------------------------------------------------------------
    def _roots(self, project: Project) -> List[str]:
        roots: List[str] = []
        for module_name in KEY_ROOT_MODULES:
            module = project.modules.get(module_name)
            if module is None:
                continue
            roots.extend(
                info.qualname
                for info in module.functions.values()
                if info.class_name is None
            )
        roots.extend(name for name in KEY_ROOT_FUNCTIONS if name in project.functions)
        return roots

    def _check_function(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        parents = module.parent_map()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = project.resolve_call(module, node, info)
                if target in _IMPURE_BUILTINS:
                    yield self._violation(
                        module, info, node, _IMPURE_BUILTINS[target]
                    )
            for iterable, site in _iteration_sites(node):
                yield from self._check_iteration(
                    project, module, info, parents, iterable, site
                )

    def _check_iteration(
        self,
        project: Project,
        module: LintModule,
        info: FunctionInfo,
        parents: Dict[ast.AST, ast.AST],
        iterable: ast.expr,
        site: ast.AST,
    ) -> Iterator[Violation]:
        if _is_set_expression(project, module, info, iterable):
            yield self._violation(
                module,
                info,
                iterable,
                "iteration over a set has hash-dependent order on a "
                "cache-key path; iterate sorted(...) instead",
            )
            return
        if _is_dict_view(iterable) and not self._is_normalized(
            project, module, info, parents, site
        ):
            yield self._violation(
                module,
                info,
                iterable,
                "unsorted dict-view iteration on a cache-key path; wrap the "
                "iteration in sorted(...) (or reduce with min/max)",
            )

    def _is_normalized(
        self,
        project: Project,
        module: LintModule,
        info: FunctionInfo,
        parents: Dict[ast.AST, ast.AST],
        site: ast.AST,
    ) -> bool:
        """Does the iteration's result feed directly into an order normalizer?

        Covers ``sorted(x for ... in d.items())`` and
        ``for k in sorted(d.items())`` — the two shapes the codebase uses.
        A bare ``for`` statement over a dict view is never normalized.
        """
        if isinstance(site, ast.For):
            return False
        # ``site`` is a comprehension's generator owner (GeneratorExp & co.);
        # check whether it is a direct argument of a normalizing call.
        parent = parents.get(site)
        if not isinstance(parent, ast.Call):
            return False
        if site not in parent.args:
            return False
        target = project.resolve_call(module, parent, info)
        return target in _ORDER_NORMALIZERS

    def _violation(
        self, module: LintModule, info: FunctionInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", info.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=info.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _iteration_sites(node: ast.AST) -> List[Tuple[ast.expr, ast.AST]]:
    """``(iterable expression, owning For/comprehension node)`` pairs."""
    sites: List[Tuple[ast.expr, ast.AST]] = []
    if isinstance(node, ast.For):
        sites.append((node.iter, node))
    elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
        for generator in node.generators:
            sites.append((generator.iter, node))
    return sites


def _is_set_expression(
    project: Project,
    module: LintModule,
    info: FunctionInfo,
    expression: ast.expr,
) -> bool:
    if isinstance(expression, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expression, ast.Call):
        target = project.resolve_call(module, expression, info)
        return target in ("builtins.set", "builtins.frozenset")
    return False


def _is_dict_view(expression: ast.expr) -> bool:
    return (
        isinstance(expression, ast.Call)
        and isinstance(expression.func, ast.Attribute)
        and expression.func.attr in _DICT_VIEW_METHODS
        and not expression.args
        and not expression.keywords
    )


#: The dotted-name helper is re-exported for the fixture tests.
__all__ = ["FingerprintPurityRule", "KEY_ROOT_MODULES", "KEY_ROOT_FUNCTIONS", "dotted_name"]
