"""R002 — kernel-contract conformance and cache-key/kernels isolation.

Kernel backends are bit-identical drop-ins (PERFORMANCE.md): a backend that
silently narrows the abstract contract — missing method, drifted signature,
shared mutable class state — can pass the equivalence suite on the inputs it
happens to see and still diverge in production.  And because backend
*selection* must never influence results, no code reachable from cache-key
computation may import the kernels package: a key that observes the selected
kernel would fragment the warm store by speed knob.

Checks, per class subclassing a family base (``SFPKernel`` /
``SchedulerKernel``):

* every abstract method of the base (body = ``raise NotImplementedError``)
  is overridden;
* the override's signature matches the base declaration exactly — same
  argument names, order, defaults, and the same varargs/kwargs shape
  (annotations are mypy's job, not this rule's);
* the registry attributes ``name`` (non-empty), ``description`` and
  ``priority`` are declared on the class;
* no class-level assignment binds a mutable container (list/dict/set) —
  per-instance buffers belong in ``__init__``, shared class state breaks the
  one-registry-per-process isolation the parallel sweep relies on.

Plus, per cache-key module (``engine/fingerprint.py``, ``engine/store.py``):
the module's runtime import closure must not contain ``repro.kernels``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import ClassInfo, FunctionNode, LintModule, Project
from repro.lint.registry import LintRule, register_rule

#: Family base classes whose subclasses must conform.
FAMILY_BASES: Tuple[str, ...] = (
    "repro.kernels.base.SFPKernel",
    "repro.kernels.sched_base.SchedulerKernel",
)

#: Class attributes every registered backend must declare.
REQUIRED_CLASS_ATTRS: Tuple[str, ...] = ("name", "description", "priority")

#: Modules computing cache keys; their import closure must avoid kernels.
CACHE_KEY_MODULES: Tuple[str, ...] = (
    "repro.engine.fingerprint",
    "repro.engine.store",
)

#: Package that must stay unreachable from cache-key modules.
KERNELS_PACKAGE = "repro.kernels"

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}


@register_rule
class KernelContractRule(LintRule):
    """Backends implement the full contract; cache keys never see kernels."""

    rule_id = "R002"
    title = "kernel-contract conformance and cache-key isolation"
    rationale = (
        "backends must be bit-identical drop-ins with matching signatures, "
        "and kernel selection must never be observable from cache-key code"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for base_qualname in FAMILY_BASES:
            base = project.classes.get(base_qualname)
            if base is None:
                continue
            abstract = _abstract_methods(base)
            for subclass in _subclasses_of(project, base):
                yield from self._check_backend(project, subclass, base, abstract)
        yield from self._check_cache_key_isolation(project)

    # ------------------------------------------------------------------
    def _check_backend(
        self,
        project: Project,
        subclass: ClassInfo,
        base: ClassInfo,
        abstract: List[str],
    ) -> Iterator[Violation]:
        module = project.modules[subclass.module]
        for method_name in abstract:
            implementation = subclass.methods.get(method_name)
            if implementation is None:
                yield self._violation(
                    module,
                    subclass,
                    subclass.node,
                    f"backend {subclass.name} does not implement abstract "
                    f"method {method_name}() of {base.name}",
                )
                continue
            if _still_abstract(implementation.node):
                yield self._violation(
                    module,
                    subclass,
                    implementation.node,
                    f"backend {subclass.name}.{method_name}() still raises "
                    f"NotImplementedError — the contract is unimplemented",
                )
                continue
            mismatch = _signature_mismatch(
                base.methods[method_name].node, implementation.node
            )
            if mismatch is not None:
                yield self._violation(
                    module,
                    subclass,
                    implementation.node,
                    f"backend {subclass.name}.{method_name}() signature "
                    f"drifts from {base.name}: {mismatch}",
                )
        yield from self._check_class_attrs(module, subclass)
        yield from self._check_mutable_state(module, subclass)

    def _check_class_attrs(
        self, module: LintModule, subclass: ClassInfo
    ) -> Iterator[Violation]:
        declared = _class_level_assignments(subclass.node)
        for attr in REQUIRED_CLASS_ATTRS:
            if attr not in declared:
                yield self._violation(
                    module,
                    subclass,
                    subclass.node,
                    f"backend {subclass.name} must declare the registry "
                    f"attribute {attr!r}",
                )
                continue
            value = declared[attr]
            if attr == "name" and isinstance(value, ast.Constant):
                if not (isinstance(value.value, str) and value.value):
                    yield self._violation(
                        module,
                        subclass,
                        value,
                        f"backend {subclass.name} declares an empty registry "
                        f"name",
                    )

    def _check_mutable_state(
        self, module: LintModule, subclass: ClassInfo
    ) -> Iterator[Violation]:
        for attr, value in _class_level_assignments(subclass.node).items():
            if value is None:
                continue
            if _is_mutable_literal(value):
                yield self._violation(
                    module,
                    subclass,
                    value,
                    f"backend {subclass.name}.{attr} is mutable class state "
                    f"shared by every instance; allocate per-instance "
                    f"buffers in __init__ instead",
                )

    def _check_cache_key_isolation(self, project: Project) -> Iterator[Violation]:
        for module_name in CACHE_KEY_MODULES:
            module = project.modules.get(module_name)
            if module is None:
                continue
            closure = project.runtime_import_closure(module_name)
            offenders = sorted(
                name
                for name in closure
                if name == KERNELS_PACKAGE or name.startswith(KERNELS_PACKAGE + ".")
            )
            if offenders:
                yield Violation(
                    rule=self.rule_id,
                    module=module.name,
                    path=module.path,
                    line=1,
                    column=0,
                    symbol="",
                    message=(
                        f"cache-key module {module_name} reaches the kernels "
                        f"package at runtime via {', '.join(offenders)}; "
                        f"kernel selection must not leak into cache keys"
                    ),
                )

    def _violation(
        self, module: LintModule, subclass: ClassInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", subclass.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=subclass.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _subclasses_of(project: Project, base: ClassInfo) -> List[ClassInfo]:
    result: List[ClassInfo] = []
    for module in project.modules.values():
        for class_info in module.classes.values():
            if class_info is base:
                continue
            for written_base in class_info.bases:
                resolved = project.resolve_base_class(module, written_base)
                if resolved is base:
                    result.append(class_info)
                    break
    return sorted(result, key=lambda info: info.qualname)


def _abstract_methods(base: ClassInfo) -> List[str]:
    return sorted(
        name for name, info in base.methods.items() if _still_abstract(info.node)
    )


def _still_abstract(node: FunctionNode) -> bool:
    """Is the (docstring-stripped) body a single ``raise NotImplementedError``?"""
    body = list(node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _signature_tuple(node: FunctionNode) -> Tuple[object, ...]:
    args = node.args
    return (
        tuple(a.arg for a in args.posonlyargs),
        tuple(a.arg for a in args.args),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        args.kwarg.arg if args.kwarg else None,
        tuple(ast.unparse(default) for default in args.defaults),
        tuple(
            ast.unparse(default) if default is not None else None
            for default in args.kw_defaults
        ),
    )


def _signature_mismatch(base: FunctionNode, override: FunctionNode) -> Optional[str]:
    base_signature = _signature_tuple(base)
    override_signature = _signature_tuple(override)
    if base_signature == override_signature:
        return None
    return (
        f"expected ({ast.unparse(base.args)}), "
        f"got ({ast.unparse(override.args)})"
    )


def _class_level_assignments(node: ast.ClassDef) -> dict:
    assignments: dict = {}
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    assignments[target.id] = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                assignments[statement.target.id] = statement.value
    return assignments


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_CALLS
    return False
