"""R002 — kernel-contract conformance and cache-key/kernels isolation.

Kernel backends are bit-identical drop-ins (PERFORMANCE.md): a backend that
silently narrows the abstract contract — missing method, drifted signature,
shared mutable class state — can pass the equivalence suite on the inputs it
happens to see and still diverge in production.  And because backend
*selection* must never influence results, no code reachable from cache-key
computation may import the kernels package: a key that observes the selected
kernel would fragment the warm store by speed knob.

Checks, per class deriving (directly or transitively — stacked backends
like ``array`` → ``batch`` inherit the contract along with the code) from a
family base (``SFPKernel`` / ``SchedulerKernel``):

* every abstract method of the base (body = ``raise NotImplementedError``)
  is implemented somewhere along the inheritance chain; defects of an
  override (still abstract, drifted signature) are reported once, on the
  class that wrote it, not on every descendant that inherits it;
* an override's signature matches the base declaration exactly — same
  argument names, order, defaults, and the same varargs/kwargs shape
  (annotations are mypy's job, not this rule's);
* the *batch* contract methods (``batch_probability_exceeds`` /
  ``batch_schedule``) have a total scalar fallback in the base, so they are
  not abstract — but any override must still match the base signature
  exactly and stay implemented, and a backend declaring
  ``supports_batch = True`` must actually provide (or inherit) a
  specialized override rather than the inherited scalar fallback;
* the registry attributes ``name`` (non-empty), ``description`` and
  ``priority`` are declared on the class itself — stacked backends are
  distinct registry entries and must not alias a parent's identity;
* no class-level assignment binds a mutable container (list/dict/set) —
  per-instance buffers belong in ``__init__``, shared class state breaks the
  one-registry-per-process isolation the parallel sweep relies on.

Plus, per cache-key module (``engine/fingerprint.py``, ``engine/store.py``):
the module's runtime import closure must not contain ``repro.kernels``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.model import Violation
from repro.lint.project import ClassInfo, FunctionNode, LintModule, Project
from repro.lint.registry import LintRule, register_rule

#: Family base classes whose subclasses must conform.
FAMILY_BASES: Tuple[str, ...] = (
    "repro.kernels.base.SFPKernel",
    "repro.kernels.sched_base.SchedulerKernel",
)

#: Class attributes every registered backend must declare.
REQUIRED_CLASS_ATTRS: Tuple[str, ...] = ("name", "description", "priority")

#: Non-abstract batch entry point per family base: total scalar fallback in
#: the base, exact-signature override required of vectorizing backends.
BATCH_CONTRACT_METHODS: Dict[str, str] = {
    "repro.kernels.base.SFPKernel": "batch_probability_exceeds",
    "repro.kernels.sched_base.SchedulerKernel": "batch_schedule",
}

#: Modules computing cache keys; their import closure must avoid kernels.
CACHE_KEY_MODULES: Tuple[str, ...] = (
    "repro.engine.fingerprint",
    "repro.engine.store",
)

#: Package that must stay unreachable from cache-key modules.
KERNELS_PACKAGE = "repro.kernels"

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}


@register_rule
class KernelContractRule(LintRule):
    """Backends implement the full contract; cache keys never see kernels."""

    rule_id = "R002"
    title = "kernel-contract conformance and cache-key isolation"
    rationale = (
        "backends must be bit-identical drop-ins with matching signatures, "
        "and kernel selection must never be observable from cache-key code"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for base_qualname in FAMILY_BASES:
            base = project.classes.get(base_qualname)
            if base is None:
                continue
            abstract = _abstract_methods(base)
            for subclass in _subclasses_of(project, base):
                yield from self._check_backend(project, subclass, base, abstract)
        yield from self._check_cache_key_isolation(project)

    # ------------------------------------------------------------------
    def _check_backend(
        self,
        project: Project,
        subclass: ClassInfo,
        base: ClassInfo,
        abstract: List[str],
    ) -> Iterator[Violation]:
        module = project.modules[subclass.module]
        for method_name in abstract:
            owner, implementation = _resolve_method(
                project, subclass, base, method_name
            )
            if implementation is None:
                yield self._violation(
                    module,
                    subclass,
                    subclass.node,
                    f"backend {subclass.name} does not implement abstract "
                    f"method {method_name}() of {base.name}",
                )
                continue
            if owner is not subclass:
                # Inherited from an intermediate backend; any defect of that
                # override is reported once, on the class that wrote it.
                continue
            if _still_abstract(implementation.node):
                yield self._violation(
                    module,
                    subclass,
                    implementation.node,
                    f"backend {subclass.name}.{method_name}() still raises "
                    f"NotImplementedError — the contract is unimplemented",
                )
                continue
            mismatch = _signature_mismatch(
                base.methods[method_name].node, implementation.node
            )
            if mismatch is not None:
                yield self._violation(
                    module,
                    subclass,
                    implementation.node,
                    f"backend {subclass.name}.{method_name}() signature "
                    f"drifts from {base.name}: {mismatch}",
                )
        yield from self._check_batch_contract(project, module, subclass, base)
        yield from self._check_class_attrs(module, subclass)
        yield from self._check_mutable_state(module, subclass)

    def _check_batch_contract(
        self,
        project: Project,
        module: LintModule,
        subclass: ClassInfo,
        base: ClassInfo,
    ) -> Iterator[Violation]:
        batch_name = BATCH_CONTRACT_METHODS.get(base.qualname)
        if batch_name is None or batch_name not in base.methods:
            return
        override = subclass.methods.get(batch_name)
        if override is not None:
            if _still_abstract(override.node):
                yield self._violation(
                    module,
                    subclass,
                    override.node,
                    f"backend {subclass.name}.{batch_name}() raises "
                    f"NotImplementedError — the batch contract is total; "
                    f"inherit the scalar fallback instead of disabling it",
                )
            else:
                mismatch = _signature_mismatch(
                    base.methods[batch_name].node, override.node
                )
                if mismatch is not None:
                    yield self._violation(
                        module,
                        subclass,
                        override.node,
                        f"backend {subclass.name}.{batch_name}() signature "
                        f"drifts from {base.name}: {mismatch}",
                    )
        declared = _class_level_assignments(subclass.node).get("supports_batch")
        if (
            isinstance(declared, ast.Constant)
            and declared.value is True
        ):
            owner, implementation = _resolve_method(
                project, subclass, base, batch_name
            )
            if implementation is None:
                yield self._violation(
                    module,
                    subclass,
                    subclass.node,
                    f"backend {subclass.name} declares supports_batch = True "
                    f"but inherits the scalar fallback {batch_name}() — a "
                    f"vectorizing backend must override it",
                )

    def _check_class_attrs(
        self, module: LintModule, subclass: ClassInfo
    ) -> Iterator[Violation]:
        declared = _class_level_assignments(subclass.node)
        for attr in REQUIRED_CLASS_ATTRS:
            if attr not in declared:
                yield self._violation(
                    module,
                    subclass,
                    subclass.node,
                    f"backend {subclass.name} must declare the registry "
                    f"attribute {attr!r}",
                )
                continue
            value = declared[attr]
            if attr == "name" and isinstance(value, ast.Constant):
                if not (isinstance(value.value, str) and value.value):
                    yield self._violation(
                        module,
                        subclass,
                        value,
                        f"backend {subclass.name} declares an empty registry "
                        f"name",
                    )

    def _check_mutable_state(
        self, module: LintModule, subclass: ClassInfo
    ) -> Iterator[Violation]:
        for attr, value in _class_level_assignments(subclass.node).items():
            if value is None:
                continue
            if _is_mutable_literal(value):
                yield self._violation(
                    module,
                    subclass,
                    value,
                    f"backend {subclass.name}.{attr} is mutable class state "
                    f"shared by every instance; allocate per-instance "
                    f"buffers in __init__ instead",
                )

    def _check_cache_key_isolation(self, project: Project) -> Iterator[Violation]:
        for module_name in CACHE_KEY_MODULES:
            module = project.modules.get(module_name)
            if module is None:
                continue
            closure = project.runtime_import_closure(module_name)
            offenders = sorted(
                name
                for name in closure
                if name == KERNELS_PACKAGE or name.startswith(KERNELS_PACKAGE + ".")
            )
            if offenders:
                yield Violation(
                    rule=self.rule_id,
                    module=module.name,
                    path=module.path,
                    line=1,
                    column=0,
                    symbol="",
                    message=(
                        f"cache-key module {module_name} reaches the kernels "
                        f"package at runtime via {', '.join(offenders)}; "
                        f"kernel selection must not leak into cache keys"
                    ),
                )

    def _violation(
        self, module: LintModule, subclass: ClassInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", subclass.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=subclass.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _resolved_bases(project: Project, class_info: ClassInfo) -> List[ClassInfo]:
    """The written base classes that resolve to project classes, in order."""
    module = project.modules[class_info.module]
    resolved = (
        project.resolve_base_class(module, written)
        for written in class_info.bases
    )
    return [base for base in resolved if base is not None]


def _derives_from(
    project: Project, class_info: ClassInfo, base: ClassInfo, seen: Set[str]
) -> bool:
    """Does ``class_info`` reach ``base`` through any chain of bases?"""
    if class_info.qualname in seen:
        return False
    seen.add(class_info.qualname)
    for parent in _resolved_bases(project, class_info):
        if parent is base or _derives_from(project, parent, base, seen):
            return True
    return False


def _subclasses_of(project: Project, base: ClassInfo) -> List[ClassInfo]:
    """All project classes deriving from ``base``, directly or transitively.

    Stacked backends (``batch`` on top of ``array`` on top of ``reference``)
    inherit the family contract through intermediate classes, so a
    direct-bases-only scan would silently exempt exactly the backends most
    likely to drift.
    """
    result = [
        class_info
        for module in project.modules.values()
        for class_info in module.classes.values()
        if class_info is not base and _derives_from(project, class_info, base, set())
    ]
    return sorted(result, key=lambda info: info.qualname)


def _resolve_method(
    project: Project, class_info: ClassInfo, base: ClassInfo, method_name: str
) -> Tuple[Optional[ClassInfo], Optional[FunctionInfo]]:
    """Nearest definition of ``method_name`` below ``base``.

    Walks the inheritance chain breadth-first from ``class_info`` (written
    base order, cycle-guarded) and stops before the family base, so the
    base's own abstract declaration or scalar fallback never counts as an
    implementation.  Returns ``(owner, method)`` or ``(None, None)``.
    """
    queue: List[ClassInfo] = [class_info]
    seen: Set[str] = set()
    while queue:
        current = queue.pop(0)
        if current is base or current.qualname in seen:
            continue
        seen.add(current.qualname)
        method = current.methods.get(method_name)
        if method is not None:
            return current, method
        queue.extend(_resolved_bases(project, current))
    return None, None


def _abstract_methods(base: ClassInfo) -> List[str]:
    return sorted(
        name for name, info in base.methods.items() if _still_abstract(info.node)
    )


def _still_abstract(node: FunctionNode) -> bool:
    """Is the (docstring-stripped) body a single ``raise NotImplementedError``?"""
    body = list(node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _signature_tuple(node: FunctionNode) -> Tuple[object, ...]:
    args = node.args
    return (
        tuple(a.arg for a in args.posonlyargs),
        tuple(a.arg for a in args.args),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        args.kwarg.arg if args.kwarg else None,
        tuple(ast.unparse(default) for default in args.defaults),
        tuple(
            ast.unparse(default) if default is not None else None
            for default in args.kw_defaults
        ),
    )


def _signature_mismatch(base: FunctionNode, override: FunctionNode) -> Optional[str]:
    base_signature = _signature_tuple(base)
    override_signature = _signature_tuple(override)
    if base_signature == override_signature:
        return None
    return (
        f"expected ({ast.unparse(base.args)}), "
        f"got ({ast.unparse(override.args)})"
    )


def _class_level_assignments(node: ast.ClassDef) -> dict:
    assignments: dict = {}
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    assignments[target.id] = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                assignments[statement.target.id] = statement.value
    return assignments


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_CALLS
    return False
