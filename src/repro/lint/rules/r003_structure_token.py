"""R003 — structure-token safety: guarded containers mutate only via the API.

PR 4 fixed, by hand, the exact bug this rule now machine-checks: the list
scheduler memoized an application's static structure, and a count-preserving
in-place graph edit (rewiring one message) left the memo stale because
nothing bumped ``structure_token``.  The contract since then: the containers
backing ``TaskGraph``/``Application`` structure (and the immutable-after-
construction ``Schedule`` tables) are mutated **only** inside the methods
that keep the structural token and caches consistent.

The rule flags, anywhere in the tree, item assignment / deletion, mutating
method calls (``append``, ``update``, ``add_edge`` …) and attribute
rebinding on the guarded attributes — unless the mutation happens inside the
owning class's sanctioned mutator methods.  Local-alias mutations
(``g = graph._graph; g.add_node(...)``) are not modeled; the guarded names
are private, so any such alias is already a reach into internals that review
should catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import LintModule, Project, dotted_name
from repro.lint.registry import LintRule, register_rule


@dataclass(frozen=True)
class GuardSpec:
    """One guarded class: its containers and sanctioned mutator methods."""

    class_name: str
    attrs: FrozenSet[str]
    mutators: FrozenSet[str]


#: The guarded containers.  Mutator lists name exactly the methods that keep
#: the structural token / derived caches consistent (or construct the object).
GUARDS: Tuple[GuardSpec, ...] = (
    GuardSpec(
        class_name="TaskGraph",
        attrs=frozenset({"_graph", "_messages"}),
        mutators=frozenset(
            {
                "__init__",
                "add_process",
                "add_message",
                "remove_message",
                "_invalidate_structure_caches",
            }
        ),
    ),
    GuardSpec(
        class_name="Application",
        attrs=frozenset({"_graphs", "_recovery_overheads"}),
        mutators=frozenset(
            {"__init__", "add_graph", "new_graph", "set_recovery_overhead",
             "recovery_overhead"}
        ),
    ),
    GuardSpec(
        class_name="Schedule",
        attrs=frozenset({"_processes", "_messages", "node_recovery_slack"}),
        mutators=frozenset({"__init__", "from_kernel"}),
    ),
)

_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        # networkx.DiGraph mutators reached through TaskGraph._graph
        "add_node",
        "add_edge",
        "add_nodes_from",
        "add_edges_from",
        "remove_node",
        "remove_edge",
    }
)

_ALL_GUARDED_ATTRS: FrozenSet[str] = frozenset().union(*(g.attrs for g in GUARDS))


@register_rule
class StructureTokenRule(LintRule):
    """Guarded structure containers mutate only inside sanctioned mutators."""

    rule_id = "R003"
    title = "structure-token safety: no out-of-API container mutation"
    rationale = (
        "in-place edits of Application/TaskGraph/Schedule containers that "
        "bypass the token-bumping methods leave memoized scheduler structure "
        "stale (the PR 4 bug class)"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            yield from self._check_module(project, module)

    # ------------------------------------------------------------------
    def _check_module(
        self, project: Project, module: LintModule
    ) -> Iterator[Violation]:
        for node in module.walk():
            for attr, mutation, anchor in _mutations(node):
                if self._is_sanctioned(project, module, anchor, attr):
                    continue
                yield Violation(
                    rule=self.rule_id,
                    module=module.name,
                    path=module.path,
                    line=getattr(anchor, "lineno", 1),
                    column=getattr(anchor, "col_offset", 0),
                    symbol=project.enclosing_function(module, anchor) or "",
                    message=(
                        f"{mutation} of guarded container .{attr} outside "
                        f"the owning class's token-bumping mutators; use the "
                        f"construction API (add_*/remove_*) so "
                        f"structure_token observes the edit"
                    ),
                )

    def _is_sanctioned(
        self, project: Project, module: LintModule, node: ast.AST, attr: str
    ) -> bool:
        qualname = project.enclosing_function(module, node)
        if qualname is None:
            return False
        info = project.functions.get(qualname)
        if info is None or info.class_name is None:
            return False
        for guard in GUARDS:
            if attr not in guard.attrs:
                continue
            if info.class_name == guard.class_name and info.name in guard.mutators:
                return True
        return False


# ----------------------------------------------------------------------
# mutation detection
# ----------------------------------------------------------------------
def _guarded_attribute(expression: ast.expr) -> Optional[str]:
    """The guarded attribute name if ``expression`` is ``<obj>.<guarded>``."""
    if isinstance(expression, ast.Attribute) and expression.attr in _ALL_GUARDED_ATTRS:
        return expression.attr
    return None


def _mutations(node: ast.AST) -> List[Tuple[str, str, ast.AST]]:
    """``(attr, mutation kind, anchor node)`` triples detected on ``node``."""
    found: List[Tuple[str, str, ast.AST]] = []

    def check_target(target: ast.expr, kind_prefix: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                check_target(element, kind_prefix)
            return
        if isinstance(target, ast.Subscript):
            attr = _guarded_attribute(target.value)
            if attr is not None:
                found.append((attr, f"item {kind_prefix}", target))
        elif isinstance(target, ast.Attribute):
            attr = _guarded_attribute(target)
            if attr is not None:
                found.append((attr, f"attribute {kind_prefix}", target))

    if isinstance(node, ast.Assign):
        for target in node.targets:
            check_target(target, "assignment")
    elif isinstance(node, ast.AugAssign):
        check_target(node.target, "assignment")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            check_target(target, "deletion")
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _guarded_attribute(func.value)
            if attr is not None:
                found.append((attr, f"mutating call .{func.attr}()", node))
    return found


#: Re-exported for the fixture tests.
__all__ = ["StructureTokenRule", "GUARDS", "GuardSpec", "dotted_name"]
