"""R004 — seeded-RNG-only: no interpreter-global random state, anywhere.

Every stochastic quantity in the reproduction (synthetic benchmark graphs,
platform generation, Monte-Carlo fault injection) must flow from an explicit
seeded generator (``numpy.random.default_rng(seed)`` or a ``random.Random``
instance threaded through call signatures).  Module-level RNG calls —
``random.random()``, ``np.random.seed()``, ``np.random.rand()`` — share
hidden global state: results then depend on *call order across the whole
process*, which breaks the n_jobs determinism contract (each worker must
produce bit-identical results regardless of scheduling) and makes golden
fixtures irreproducible.

The rule flags every call through the ``random`` module's functions (the
seedable-instance constructor ``random.Random`` is allowed) and every call
into ``numpy.random``'s global-state API (``default_rng``, ``Generator`` and
``SeedSequence`` are allowed).  The allowed constructors must themselves be
*seeded*: ``default_rng()`` / ``SeedSequence()`` without an entropy argument
draw their seed from the OS — a fresh stream every process, exactly the
irreproducibility the rule exists to prevent — and ``Generator(PCG64())``
around a zero-argument bit generator is the same defect one layer down.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import LintModule, Project, dotted_name
from repro.lint.registry import LintRule, register_rule

#: Attributes of the stdlib ``random`` module that are allowed (explicit,
#: seedable instances; everything else is global-state).
_ALLOWED_RANDOM = frozenset({"Random"})

#: ``numpy.random`` bit-generator constructors (seedable, explicit streams).
_BIT_GENERATORS = frozenset({"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"})

#: Attributes of ``numpy.random`` that construct explicit seeded generators.
_ALLOWED_NUMPY_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator"}
) | _BIT_GENERATORS

#: Allowed constructors that must receive an explicit entropy argument.
_SEED_REQUIRED = frozenset({"default_rng", "SeedSequence"}) | _BIT_GENERATORS


@register_rule
class SeededRngRule(LintRule):
    """All randomness flows from explicit seeded generators."""

    rule_id = "R004"
    title = "seeded-RNG-only: no global random state"
    rationale = (
        "global RNG state makes results depend on process-wide call order, "
        "breaking parallel-sweep determinism and golden fixtures"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            for node in module.walk():
                if not isinstance(node, ast.Call):
                    continue
                message = self._message(project, module, node)
                if message is None:
                    continue
                yield Violation(
                    rule=self.rule_id,
                    module=module.name,
                    path=module.path,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=project.enclosing_function(module, node) or "",
                    message=message,
                )

    def _message(
        self, project: Project, module: LintModule, call: ast.Call
    ) -> Optional[str]:
        verdict = self._classify(project, module, call)
        if verdict is not None:
            family, function_name = verdict
            return (
                f"global-state RNG call {family}.{function_name}(); "
                f"thread an explicit seeded generator "
                f"(numpy.random.default_rng(seed) / random.Random(seed)) "
                f"through the call signature instead"
            )
        return self._seedless_message(project, module, call)

    # ------------------------------------------------------------------
    def _classify(
        self, project: Project, module: LintModule, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """``(family, function)`` when the call hits a global-state RNG."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = project.resolve_dotted(module, dotted)
        if resolved.startswith("random."):
            function_name = resolved.split(".", 1)[1]
            if function_name not in _ALLOWED_RANDOM:
                return ("random", function_name)
            return None
        if resolved.startswith("numpy.random."):
            function_name = resolved.split(".", 2)[2]
            head = function_name.split(".", 1)[0]
            if head not in _ALLOWED_NUMPY_RANDOM:
                return ("numpy.random", function_name)
            return None
        return None

    def _seedless_message(
        self, project: Project, module: LintModule, call: ast.Call
    ) -> Optional[str]:
        """Message when an *allowed* constructor is called without entropy."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = project.resolve_dotted(module, dotted)
        if not resolved.startswith("numpy.random."):
            return None
        name = resolved.split(".", 2)[2]
        if name in _SEED_REQUIRED:
            entropy = _entropy_argument(call)
            if entropy is None or _is_none_constant(entropy):
                return (
                    f"seedless numpy.random.{name}() draws its seed from the "
                    f"OS — a different stream every process; pass an explicit "
                    f"seed (or a spawned SeedSequence child) instead"
                )
            return None
        if name == "Generator" and _entropy_argument(call) is None:
            return (
                "bare numpy.random.Generator construction without a bit "
                "generator; use numpy.random.default_rng(seed) (a seedless "
                "bit generator is flagged at its own construction site)"
            )
        return None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _entropy_argument(call: ast.Call) -> Optional[ast.expr]:
    """The seed/entropy/bit-generator argument of an RNG constructor call."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy", "bit_generator"):
            return keyword.value
    return None


def _is_none_constant(expression: ast.expr) -> bool:
    return isinstance(expression, ast.Constant) and expression.value is None
