"""R004 — seeded-RNG-only: no interpreter-global random state, anywhere.

Every stochastic quantity in the reproduction (synthetic benchmark graphs,
platform generation, Monte-Carlo fault injection) must flow from an explicit
seeded generator (``numpy.random.default_rng(seed)`` or a ``random.Random``
instance threaded through call signatures).  Module-level RNG calls —
``random.random()``, ``np.random.seed()``, ``np.random.rand()`` — share
hidden global state: results then depend on *call order across the whole
process*, which breaks the n_jobs determinism contract (each worker must
produce bit-identical results regardless of scheduling) and makes golden
fixtures irreproducible.

The rule flags every call through the ``random`` module's functions (the
seedable-instance constructor ``random.Random`` is allowed) and every call
into ``numpy.random``'s global-state API (``default_rng``, ``Generator`` and
``SeedSequence`` are allowed).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import LintModule, Project, dotted_name
from repro.lint.registry import LintRule, register_rule

#: Attributes of the stdlib ``random`` module that are allowed (explicit,
#: seedable instances; everything else is global-state).
_ALLOWED_RANDOM = frozenset({"Random"})

#: Attributes of ``numpy.random`` that construct explicit seeded generators.
_ALLOWED_NUMPY_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence"})


@register_rule
class SeededRngRule(LintRule):
    """All randomness flows from explicit seeded generators."""

    rule_id = "R004"
    title = "seeded-RNG-only: no global random state"
    rationale = (
        "global RNG state makes results depend on process-wide call order, "
        "breaking parallel-sweep determinism and golden fixtures"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                verdict = self._classify(project, module, node)
                if verdict is None:
                    continue
                family, function_name = verdict
                yield Violation(
                    rule=self.rule_id,
                    module=module.name,
                    path=module.path,
                    line=node.lineno,
                    column=node.col_offset,
                    symbol=project.enclosing_function(module, node) or "",
                    message=(
                        f"global-state RNG call {family}.{function_name}(); "
                        f"thread an explicit seeded generator "
                        f"(numpy.random.default_rng(seed) / random.Random(seed)) "
                        f"through the call signature instead"
                    ),
                )

    # ------------------------------------------------------------------
    def _classify(
        self, project: Project, module: LintModule, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """``(family, function)`` when the call hits a global-state RNG."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = project.resolve_dotted(module, dotted)
        if resolved.startswith("random."):
            function_name = resolved.split(".", 1)[1]
            if function_name not in _ALLOWED_RANDOM:
                return ("random", function_name)
            return None
        if resolved.startswith("numpy.random."):
            function_name = resolved.split(".", 2)[2]
            head = function_name.split(".", 1)[0]
            if head not in _ALLOWED_NUMPY_RANDOM:
                return ("numpy.random", function_name)
            return None
        return None
