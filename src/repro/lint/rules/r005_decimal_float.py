"""R005 — no ``Decimal``/``float`` mixing in the SFP rounding chains.

The Appendix A pessimistic-rounding chains are specified as an exact
``Decimal`` operation sequence (see ``kernels/base.py``: the rounding
direction is part of the paper's safety argument, and every backend must be
bit-identical to it).  Two ``Decimal`` mistakes survive casual testing:

* ``Decimal(0.1)`` — constructing from a float captures the full binary
  expansion (``0.1000000000000000055511151231257827…``), silently shifting
  every downstream rounding; floats must enter via ``Decimal(repr(x))``;
* arithmetic or comparison mixing a ``Decimal`` with a float — a crash for
  ``+``/``*`` but silently *allowed* for comparisons, which then go through
  exact conversion of the binary float, not the decimal string the chain is
  specified over.

The rule applies to every module that imports ``decimal.Decimal``; it tracks
names assigned from Decimal expressions within each function and flags
float-tainted constructions, mixed arithmetic and mixed comparisons.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.model import Violation
from repro.lint.project import LintModule, Project
from repro.lint.registry import LintRule, register_rule

_ARITHMETIC_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


@register_rule
class DecimalFloatRule(LintRule):
    """Decimal chains stay decimal: floats enter via ``Decimal(repr(x))``."""

    rule_id = "R005"
    title = "Decimal/float mixing in SFP rounding chains"
    rationale = (
        "Decimal(float) captures the binary expansion and Decimal-vs-float "
        "comparisons bypass the decimal grid, silently shifting the paper's "
        "pessimistic rounding"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            if not _imports_decimal(module):
                continue
            for scope_name, body in _scopes(module):
                yield from self._check_scope(project, module, scope_name, body)

    # ------------------------------------------------------------------
    def _check_scope(
        self,
        project: Project,
        module: LintModule,
        scope_name: str,
        body: Sequence[ast.stmt],
    ) -> Iterator[Violation]:
        prune_defs = scope_name == module.name
        nodes = list(_scope_nodes(body, prune_defs))
        tracker = _TypeTracker(project, module)
        tracker.scan(nodes)
        for node in nodes:
            yield from self._check_node(module, scope_name, tracker, node)

    def _check_node(
        self,
        module: LintModule,
        scope_name: str,
        tracker: "_TypeTracker",
        node: ast.AST,
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Call) and tracker.is_decimal_constructor(node):
            if node.args and tracker.is_float(node.args[0]):
                yield self._violation(
                    module,
                    scope_name,
                    node,
                    "Decimal() constructed from a float captures the binary "
                    "expansion; construct from repr(x) (or an int/str)",
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, _ARITHMETIC_OPS):
            operands = (node.left, node.right)
            if self._mixes(tracker, operands):
                yield self._violation(
                    module,
                    scope_name,
                    node,
                    "arithmetic mixes Decimal and float; keep the chain "
                    "Decimal (floats enter via Decimal(repr(x)))",
                )
        elif isinstance(node, ast.Compare):
            operands = (node.left, *node.comparators)
            if self._mixes(tracker, operands):
                yield self._violation(
                    module,
                    scope_name,
                    node,
                    "comparison mixes Decimal and float; floats compare "
                    "through exact binary conversion, bypassing the decimal "
                    "grid — convert explicitly first",
                )

    def _mixes(self, tracker: "_TypeTracker", operands: Sequence[ast.expr]) -> bool:
        has_decimal = any(tracker.is_decimal(operand) for operand in operands)
        has_float = any(tracker.is_float(operand) for operand in operands)
        return has_decimal and has_float

    def _violation(
        self, module: LintModule, scope_name: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            symbol=scope_name,
            message=message,
        )


# ----------------------------------------------------------------------
# lightweight local type tracking
# ----------------------------------------------------------------------
class _TypeTracker:
    """Tracks which local names are Decimal- or float-valued in one scope.

    Single forward pass over the scope's assignments; conservative in both
    directions (an unknown name is neither Decimal nor float, so it can
    never contribute to a mixing report).
    """

    def __init__(self, project: Project, module: LintModule) -> None:
        self._project = project
        self._module = module
        self.decimal_names: Set[str] = set()
        self.float_names: Set[str] = set()

    def scan(self, nodes: Sequence[ast.AST]) -> None:
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._record(target.id, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._record(node.target.id, node.value)

    def _record(self, name: str, value: ast.expr) -> None:
        if self.is_decimal(value):
            self.decimal_names.add(name)
            self.float_names.discard(name)
        elif self.is_float(value):
            self.float_names.add(name)
            self.decimal_names.discard(name)
        else:
            self.decimal_names.discard(name)
            self.float_names.discard(name)

    # ------------------------------------------------------------------
    def is_decimal_constructor(self, call: ast.Call) -> bool:
        target = self._project.resolve_call(self._module, call)
        return target == "decimal.Decimal"

    def is_decimal(self, expression: ast.expr) -> bool:
        if isinstance(expression, ast.Call):
            if self.is_decimal_constructor(expression):
                return True
            # Method chains on a Decimal stay Decimal (quantize, scaleb, …).
            func = expression.func
            if isinstance(func, ast.Attribute) and self.is_decimal(func.value):
                return True
            return False
        if isinstance(expression, ast.Name):
            return expression.id in self.decimal_names
        if isinstance(expression, ast.BinOp):
            return self.is_decimal(expression.left) or self.is_decimal(expression.right)
        if isinstance(expression, ast.UnaryOp):
            return self.is_decimal(expression.operand)
        return False

    def is_float(self, expression: ast.expr) -> bool:
        if isinstance(expression, ast.Constant):
            return isinstance(expression.value, float)
        if isinstance(expression, ast.Name):
            return expression.id in self.float_names
        if isinstance(expression, ast.Call):
            target = self._project.resolve_call(self._module, expression)
            return target == "builtins.float"
        if isinstance(expression, ast.UnaryOp):
            return self.is_float(expression.operand)
        return False


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _imports_decimal(module: LintModule) -> bool:
    return any(
        target == "decimal.Decimal" or target == "decimal"
        for target in module.bindings.values()
    )


def _scopes(module: LintModule) -> List[Tuple[str, List[ast.stmt]]]:
    """``(scope name, statement list)`` pairs: module body + every function.

    The module scope prunes function and class definitions (methods and
    top-level functions are their own scopes), so no node is checked twice.
    """
    scopes: List[Tuple[str, List[ast.stmt]]] = [(module.name, module.tree.body)]
    for info in module.functions.values():
        scopes.append((info.qualname, info.node.body))
    return scopes


def _scope_nodes(body: Sequence[ast.stmt], prune_defs: bool) -> Iterator[ast.AST]:
    """All AST nodes of one scope, optionally pruning nested definitions."""
    pending: List[ast.AST] = list(body)
    while pending:
        node = pending.pop()
        if prune_defs and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        pending.extend(ast.iter_child_nodes(node))
