"""R006 — fork/pickle safety: everything crossing a pool boundary pickles.

The process-parallel sweep (``experiments/synthetic.py``) and the ROADMAP's
distributed sweep shards ship work to ``ProcessPoolExecutor`` workers.  The
boundary is a pickle boundary: a lambda, a function defined inside another
function (its closure cells cannot be rebuilt), an open file handle, a
``decimal`` context, or a live ``Session``/engine/store handle submitted in
a task tuple either fails to pickle at submit time or — worse — pickles a
*copy* whose mutations the parent never sees.  The sanctioned idiom is the
one ``_init_worker`` uses: module-level task functions, scalar task tuples,
and per-worker reconstruction of engines and stores from those scalars.

The rule finds pool boundaries with the dataflow pass (pool constructor
origins tracked through locals and ``with`` captures, plus the
``self._pool()``/``executor`` naming idiom) and type-checks what crosses
them: the submitted callable must be a module-level function, and task
arguments / ``initargs`` must not carry the unpicklable origins above.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import (
    FunctionDataflow,
    FunctionInfo,
    LintModule,
    Project,
    ValueOrigin,
    dotted_name,
)
from repro.lint.registry import LintRule, register_rule

#: Class names (suffix of the resolved constructor target) that open a
#: process-pool boundary.
POOL_CLASS_NAMES = frozenset({"ProcessPoolExecutor", "Pool"})

#: Receiver names accepted as pool handles when no origin is tracked — the
#: repository idiom (``self._pool().map``, ``with ... as pool:``).
_POOL_RECEIVER_NAMES = frozenset({"pool", "executor", "_pool", "_executor"})

#: Pool methods that ship a callable plus arguments to workers.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply_async", "map_async", "starmap", "imap", "imap_unordered"}
)

#: Project handles that must never cross the boundary: workers rebuild their
#: own from scalars instead (the ``_init_worker`` idiom).
SHARED_HANDLE_CLASSES = frozenset(
    {"Session", "EvaluationEngine", "MemoCache", "DesignPointStore"}
)

#: Callables returning ``decimal`` context objects (process-local state).
_DECIMAL_CONTEXTS = frozenset(
    {"decimal.getcontext", "decimal.localcontext", "decimal.Context"}
)


def is_pool_constructor(target: Optional[str]) -> bool:
    """Does a resolved call target construct a process pool?"""
    return target is not None and target.rsplit(".", 1)[-1] in POOL_CLASS_NAMES


def is_pool_boundary(
    project: Project,
    module: LintModule,
    info: FunctionInfo,
    flow: FunctionDataflow,
    call: ast.Call,
) -> bool:
    """Is ``call`` a submit/map across a process-pool boundary?"""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _SUBMIT_METHODS:
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        origin = flow.env.get(receiver.id)
        if origin is not None:
            return origin.kind == "call" and is_pool_constructor(origin.detail)
        return receiver.id in _POOL_RECEIVER_NAMES
    if isinstance(receiver, ast.Call):
        # ``ProcessPoolExecutor(...).map`` or the ``self._pool().map`` idiom.
        target = project.call_target(module, receiver, info)
        if is_pool_constructor(target):
            return True
        inner = receiver.func
        if isinstance(inner, ast.Attribute):
            return inner.attr in _POOL_RECEIVER_NAMES
        return False
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _POOL_RECEIVER_NAMES
    return False


def submitted_callables(
    project: Project, module: LintModule, info: FunctionInfo
) -> Iterator[Tuple[ast.Call, ast.expr]]:
    """``(boundary call, callable expression)`` pairs in one function."""
    flow = project.dataflow(info)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        if is_pool_boundary(project, module, info, flow, node) and node.args:
            yield node, node.args[0]


@register_rule
class ForkPickleRule(LintRule):
    """Pool-crossing callables and task payloads are picklable by type."""

    rule_id = "R006"
    title = "fork/pickle safety: pool tasks are transitively picklable"
    rationale = (
        "lambdas, closures, open handles, decimal contexts and live "
        "engine/store handles either fail to pickle at the pool boundary or "
        "silently ship copies whose mutations the parent never observes"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            for info in module.functions.values():
                yield from self._check_function(project, module, info)

    # ------------------------------------------------------------------
    def _check_function(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        flow = project.dataflow(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.call_target(module, node, info)
            if is_pool_constructor(target):
                yield from self._check_construction(project, module, info, flow, node)
            elif is_pool_boundary(project, module, info, flow, node):
                yield from self._check_submission(project, module, info, flow, node)

    def _check_construction(
        self,
        project: Project,
        module: LintModule,
        info: FunctionInfo,
        flow: FunctionDataflow,
        call: ast.Call,
    ) -> Iterator[Violation]:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                yield from self._check_callable(
                    project, module, info, flow, keyword.value, role="pool initializer"
                )
            elif keyword.arg == "initargs":
                yield from self._check_payload(
                    module, info, flow, keyword.value, role="initargs"
                )

    def _check_submission(
        self,
        project: Project,
        module: LintModule,
        info: FunctionInfo,
        flow: FunctionDataflow,
        call: ast.Call,
    ) -> Iterator[Violation]:
        if not call.args:
            return
        yield from self._check_callable(
            project, module, info, flow, call.args[0], role="submitted callable"
        )
        for argument in call.args[1:]:
            # ``pool.map(fn, [(i, x) for ...])`` — check the element shape.
            if isinstance(argument, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                argument = argument.elt
            yield from self._check_payload(
                module, info, flow, argument, role="task payload"
            )

    # ------------------------------------------------------------------
    def _check_callable(
        self,
        project: Project,
        module: LintModule,
        info: FunctionInfo,
        flow: FunctionDataflow,
        expression: ast.expr,
        role: str,
    ) -> Iterator[Violation]:
        origin = flow.classify(expression)
        if origin is not None and origin.kind == "lambda":
            yield self._violation(
                module, info, origin.node or expression,
                f"lambda as {role}: lambdas are not picklable; "
                f"use a module-level function",
            )
            return
        if origin is not None and origin.kind == "local_function":
            yield self._violation(
                module, info, origin.node or expression,
                f"nested function {origin.detail!r} as {role}: closures are "
                f"not picklable; move it to module level",
            )
            return
        dotted = dotted_name(expression)
        if dotted is None or "." not in dotted:
            return
        first = dotted.partition(".")[0]
        if first in ("self", "cls") or (
            first in flow.env and flow.env[first].kind == "call"
        ):
            yield self._violation(
                module, info, expression,
                f"bound method {dotted!r} as {role}: pickling it ships the "
                f"whole instance to every worker; use a module-level "
                f"function over scalar arguments",
            )

    def _check_payload(
        self,
        module: LintModule,
        info: FunctionInfo,
        flow: FunctionDataflow,
        expression: ast.expr,
        role: str,
    ) -> Iterator[Violation]:
        origin = flow.classify(expression)
        if origin is None:
            return
        for defect_origin, message in _payload_defects(origin, role):
            yield self._violation(
                module, info, defect_origin.node or expression, message
            )

    def _violation(
        self, module: LintModule, info: FunctionInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", info.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=info.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# payload classification
# ----------------------------------------------------------------------
def _payload_defects(
    origin: ValueOrigin, role: str
) -> List[Tuple[ValueOrigin, str]]:
    """``(origin, message)`` for every unpicklable origin under ``origin``."""
    found: List[Tuple[ValueOrigin, str]] = []
    if origin.kind == "container":
        for element in origin.elements:
            found.extend(_payload_defects(element, role))
        return found
    if origin.kind == "lambda":
        found.append(
            (origin, f"lambda in {role}: lambdas are not picklable; pass "
                     f"scalars and rebuild behaviour in the worker")
        )
    elif origin.kind == "local_function":
        found.append(
            (origin, f"nested function {origin.detail!r} in {role}: closures "
                     f"are not picklable; move it to module level")
        )
    elif origin.kind == "call":
        detail = origin.detail
        if detail == "builtins.open":
            found.append(
                (origin, f"open file handle in {role}: handles cannot cross "
                         f"the fork/pickle boundary; pass the path and "
                         f"reopen in the worker")
            )
        elif detail in _DECIMAL_CONTEXTS:
            found.append(
                (origin, f"decimal context in {role}: contexts are "
                         f"process-local state; pass the precision/quantum "
                         f"scalars instead")
            )
        else:
            class_name = detail.rsplit(".", 1)[-1]
            if class_name in SHARED_HANDLE_CLASSES:
                found.append(
                    (origin, f"{class_name} handle in {role}: workers must "
                             f"rebuild engines/stores from scalars (the "
                             f"_init_worker idiom), not receive pickled "
                             f"copies whose mutations the parent never sees")
                )
    return found


__all__ = [
    "ForkPickleRule",
    "POOL_CLASS_NAMES",
    "SHARED_HANDLE_CLASSES",
    "is_pool_boundary",
    "is_pool_constructor",
    "submitted_callables",
]
