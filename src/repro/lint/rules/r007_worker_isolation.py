"""R007 — worker shared-state isolation: task code mutates nothing shared.

A worker process is a fork-time copy: mutating a module global, a
``Session``, a ``MemoCache`` or a ``DesignPointStore`` from code reachable
from a pool task entrypoint either mutates the *copy* (the parent silently
never sees the write — the classic "my cache warmed but stayed cold" bug) or
corrupts shared on-disk state without the owning class's invariants.  The
sanctioned write paths mirror R003's token-bumping idiom: each guarded
class's own state-keeping methods (``MemoCache.put``,
``DesignPointStore.persist`` …) may mutate its attributes, and pool
*initializers* (``_init_worker``) may populate worker-local module state —
they run once per worker by design and are not task code.

The rule discovers task entrypoints from the pool boundaries R006 detects
(the first argument of ``submit``/``map``), computes their call-graph
closure with the dataflow pass following instance-method calls, and flags
inside that closure: ``global`` rebinding, item/attribute stores and
mutating method calls on module-level names, and unsanctioned mutation of
the guarded classes' attributes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.model import Violation
from repro.lint.project import FunctionDataflow, FunctionInfo, LintModule, Project
from repro.lint.registry import LintRule, register_rule
from repro.lint.rules.r003_structure_token import _MUTATING_METHODS, GuardSpec
from repro.lint.rules.r006_fork_pickle import submitted_callables

#: Shared-handle classes guarded inside the worker closure, with the methods
#: allowed to mutate their attributes (the classes' own write paths).
WORKER_GUARDS: Tuple[GuardSpec, ...] = (
    GuardSpec(
        class_name="Session",
        attrs=frozenset(
            {"_experiment", "_store", "_kernel_scope", "_scenario_counters"}
        ),
        mutators=frozenset(
            {"__init__", "__enter__", "__exit__", "store", "experiment",
             "add_cache_counters"}
        ),
    ),
    GuardSpec(
        class_name="MemoCache",
        attrs=frozenset({"_store", "_preloaded"}),
        mutators=frozenset(
            {"__init__", "get", "put", "memoize", "get_many", "load", "clear"}
        ),
    ),
    GuardSpec(
        class_name="DesignPointStore",
        attrs=frozenset({"stats"}),
        mutators=frozenset(
            {"__init__", "warm", "persist", "_read", "_write_atomic",
             "_discard", "_sweep_stale_temp_files", "_enforce_cap"}
        ),
    ),
)

_ALL_GUARDED_ATTRS = frozenset().union(*(guard.attrs for guard in WORKER_GUARDS))

_GUARD_CLASS_NAMES = frozenset(guard.class_name for guard in WORKER_GUARDS)


@register_rule
class WorkerIsolationRule(LintRule):
    """Worker-reachable code never mutates shared parent-process state."""

    rule_id = "R007"
    title = "worker isolation: task-reachable code mutates no shared state"
    rationale = (
        "workers are fork-time copies — writes to module globals or shared "
        "Session/MemoCache/DesignPointStore state from task code mutate the "
        "copy and are silently lost to the parent"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        roots = self._task_roots(project)
        if not roots:
            return
        closure = project.reachable_functions(roots, follow_instances=True)
        for qualname in sorted(closure):
            info = project.functions[qualname]
            module = project.modules[info.module]
            yield from self._check_function(project, module, info)

    # ------------------------------------------------------------------
    def _task_roots(self, project: Project) -> List[str]:
        """Task entrypoints: first arguments of pool submit/map boundaries."""
        roots: List[str] = []
        for module in project.modules.values():
            for info in module.functions.values():
                for _boundary, callable_expr in submitted_callables(
                    project, module, info
                ):
                    if not isinstance(callable_expr, ast.Name):
                        continue
                    local = f"{module.name}.{callable_expr.id}"
                    if local in project.functions:
                        roots.append(local)
                        continue
                    bound = module.bindings.get(callable_expr.id)
                    if bound is not None and bound in project.functions:
                        roots.append(bound)
        return roots

    def _check_function(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        module_globals = _module_level_names(module)
        local_names = _locally_bound_names(info)
        flow = project.dataflow(info)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                yield self._violation(
                    module, info, node,
                    f"'global {', '.join(node.names)}' in worker-reachable "
                    f"code: rebinding module globals from a task mutates the "
                    f"fork-time copy; return the value instead",
                )
                continue
            for name, mutation, anchor in _global_mutations(
                node, module_globals, local_names
            ):
                yield self._violation(
                    module, info, anchor,
                    f"{mutation} of module global {name!r} in "
                    f"worker-reachable code: the parent never sees the "
                    f"write; only pool initializers may populate "
                    f"worker-local module state",
                )
            for class_name, attr, mutation, anchor in _guarded_mutations(
                project, module, flow, node
            ):
                if self._is_sanctioned(info, class_name, attr):
                    continue
                owner = class_name or "guarded class"
                yield self._violation(
                    module, info, anchor,
                    f"{mutation} of {owner} state ({attr!r}) in "
                    f"worker-reachable code outside the owning class's "
                    f"write path; workers must stay read-only on shared "
                    f"handles and return results instead",
                )

    def _is_sanctioned(
        self, info: FunctionInfo, class_name: Optional[str], attr: str
    ) -> bool:
        if info.class_name is None:
            return False
        for guard in WORKER_GUARDS:
            if class_name is not None and guard.class_name != class_name:
                continue
            if class_name is None and attr not in guard.attrs:
                continue
            if info.class_name == guard.class_name and info.name in guard.mutators:
                return True
        return False

    def _violation(
        self, module: LintModule, info: FunctionInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", info.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=info.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# mutation detection
# ----------------------------------------------------------------------
def _module_level_names(module: LintModule) -> Set[str]:
    """Names assigned at module top level (the fork-copied module state)."""
    names: Set[str] = set()
    for statement in module.tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(statement.target, ast.Name):
                names.add(statement.target.id)
    return names


def _locally_bound_names(info: FunctionInfo) -> Set[str]:
    """Names bound inside the function (parameters and assignment targets)."""
    arguments = info.node.args
    names: Set[str] = {
        parameter.arg
        for parameter in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    }
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)

    def bind(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element)

    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bind(node.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
    return names


def _global_mutations(
    node: ast.AST, module_globals: Set[str], local_names: Set[str]
) -> List[Tuple[str, str, ast.AST]]:
    """``(name, mutation kind, anchor)`` for stores through module globals."""
    found: List[Tuple[str, str, ast.AST]] = []

    def global_name(expression: ast.expr) -> Optional[str]:
        if not isinstance(expression, ast.Name):
            return None
        if expression.id in local_names or expression.id not in module_globals:
            return None
        return expression.id

    def check_target(target: ast.expr, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                check_target(element, kind)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = global_name(target.value)
            if name is not None:
                found.append((name, kind, target))

    if isinstance(node, ast.Assign):
        for target in node.targets:
            check_target(target, "item/attribute store")
    elif isinstance(node, ast.AugAssign):
        check_target(node.target, "item/attribute store")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            check_target(target, "deletion")
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            name = global_name(func.value)
            if name is not None:
                found.append((name, f"mutating call .{func.attr}()", node))
    return found


def _guarded_mutations(
    project: Project,
    module: LintModule,
    flow: FunctionDataflow,
    node: ast.AST,
) -> List[Tuple[Optional[str], str, str, ast.AST]]:
    """``(class name, attr, mutation kind, anchor)`` on guarded state.

    Two nets: (a) any store / guarded-attr mutation on a local whose tracked
    origin is a guard-class constructor or annotated parameter; (b) stores
    through the guarded *attribute names* themselves (``self._store[k] = v``)
    — receiver-agnostic, like R003, with the owning class resolved from the
    enclosing method for the sanction check.
    """
    found: List[Tuple[Optional[str], str, str, ast.AST]] = []

    def tracked_guard_class(expression: ast.expr) -> Optional[str]:
        if not isinstance(expression, ast.Name):
            return None
        origin = flow.env.get(expression.id)
        if origin is None or origin.kind != "call":
            return None
        class_name = origin.detail.rsplit(".", 1)[-1]
        return class_name if class_name in _GUARD_CLASS_NAMES else None

    def check_target(target: ast.expr, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                check_target(element, kind)
            return
        if isinstance(target, ast.Attribute):
            class_name = tracked_guard_class(target.value)
            if class_name is not None:
                found.append((class_name, target.attr, f"attribute {kind}", target))
            elif target.attr in _ALL_GUARDED_ATTRS:
                found.append((None, target.attr, f"attribute {kind}", target))
        elif isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in _ALL_GUARDED_ATTRS:
                # Name the owning class when the receiver base is tracked
                # (``cache._store[k] = v`` with ``cache = MemoCache(...)``).
                found.append(
                    (tracked_guard_class(value.value), value.attr, f"item {kind}", target)
                )
            else:
                class_name = tracked_guard_class(value)
                if class_name is not None:
                    found.append((class_name, "<item>", f"item {kind}", target))

    if isinstance(node, ast.Assign):
        for target in node.targets:
            check_target(target, "store")
    elif isinstance(node, ast.AugAssign):
        check_target(node.target, "store")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            check_target(target, "deletion")
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            receiver = func.value
            if isinstance(receiver, ast.Attribute):
                if receiver.attr in _ALL_GUARDED_ATTRS:
                    found.append(
                        (None, receiver.attr, f"mutating call .{func.attr}()", node)
                    )
            else:
                class_name = tracked_guard_class(receiver)
                if class_name is not None:
                    found.append(
                        (class_name, func.attr, f"mutating call .{func.attr}()", node)
                    )
    return found


__all__ = ["WorkerIsolationRule", "WORKER_GUARDS"]
