"""R008 — report JSON-serializability: payloads reach JSON-native types.

PR 8 fixed, reactively, a numpy scalar leaking into a scenario payload and
breaking ``RunReport.to_json``; the fix was canonicalization at the
``ScenarioOutcome`` boundary (``canonicalize_payload``).  This rule turns
that hotfix into a checked invariant with three nets:

* values flowing into a scenario runner's ``ScenarioOutcome`` payload must
  not have statically-known non-JSON origins that the canonicalizer's
  pass-through fallback would forward verbatim into ``json.dumps`` — set
  literals, ``bytes``, ``Decimal``/``Path`` objects, open handles, lambdas,
  or project-class instances;
* ``RunReport`` is constructed only inside the API layer
  (``Session.run`` / ``RunReport.from_dict``) where canonicalized payloads
  and schema stamping are guaranteed — ad-hoc construction elsewhere
  bypasses the boundary;
* the ``ScenarioOutcome.__post_init__`` canonicalization call itself is
  pinned: removing it reverts the PR 8 fix, so its absence is a violation;
* the serve layer's HTTP response roots (``json_response`` /
  ``event_line``) extend the same contract to every body leaving the
  evaluation service: their payload argument (first positional, by the
  call-site contract of :mod:`repro.serve.protocol`) is dataflow-checked
  at every call site in ``repro.serve.*``, and the roots' own
  ``canonicalize_payload`` calls are pinned like the outcome boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.model import Violation
from repro.lint.project import (
    FunctionDataflow,
    FunctionInfo,
    LintModule,
    Project,
    ValueOrigin,
)
from repro.lint.registry import LintRule, register_rule

#: Modules allowed to construct ``RunReport`` directly (the API boundary).
REPORT_BOUNDARY_MODULES = frozenset({"repro.api.session", "repro.api.report"})

#: Serve-layer response roots: every HTTP body and NDJSON event line leaves
#: through one of these, and both take the payload as their *first
#: positional argument* by contract so call sites are statically checkable.
SERVE_RESPONSE_ROOTS = frozenset({"json_response", "event_line"})

#: The module defining (and canonicalizing inside) the serve response roots.
SERVE_PROTOCOL_MODULE = "repro.serve.protocol"

#: Resolved call targets whose results json.dumps rejects and the
#: canonicalizer forwards verbatim.
_NON_JSON_FACTORIES: Dict[str, str] = {
    "decimal.Decimal": "a Decimal survives canonicalization as-is and "
                       "json.dumps rejects it; convert with float()/str()",
    "pathlib.Path": "a Path survives canonicalization as-is and json.dumps "
                    "rejects it; convert with str()",
    "builtins.open": "an open file handle can never serialize; record the "
                     "path string instead",
    "builtins.bytes": "bytes are not JSON-native; decode or hex-encode",
    "builtins.bytearray": "bytearray is not JSON-native; decode or "
                          "hex-encode",
    "decimal.getcontext": "a decimal context is process state, not data",
    "decimal.localcontext": "a decimal context is process state, not data",
    "decimal.Context": "a decimal context is process state, not data",
}


@register_rule
class ReportJsonRule(LintRule):
    """Every report payload value reaches a JSON-native type."""

    rule_id = "R008"
    title = "report JSON-serializability: payloads are JSON-native"
    rationale = (
        "values the canonicalizer passes through verbatim (sets, bytes, "
        "Decimal, Path, object handles) make RunReport.to_json raise after "
        "the run completed — the PR 8 bug class, now machine-checked"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            yield from self._check_outcome_contract(project, module)
            yield from self._check_serve_protocol_contract(module)
            for info in module.functions.values():
                yield from self._check_report_construction(project, module, info)
                if _is_scenario_runner(project, module, info):
                    yield from self._check_runner(project, module, info)
                if module.name.startswith("repro.serve"):
                    yield from self._check_serve_responses(project, module, info)

    # ------------------------------------------------------------------
    # net 1: payload values in scenario runners
    # ------------------------------------------------------------------
    def _check_runner(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        flow = project.dataflow(info)
        dict_literals = _dict_literal_bindings(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.call_target(module, node, info)
            if target is None or target.rsplit(".", 1)[-1] != "ScenarioOutcome":
                continue
            payload = _payload_argument(node)
            if payload is None:
                continue
            if isinstance(payload, ast.Name):
                payload = dict_literals.get(payload.id, payload)
            for anchor, message in self._payload_findings(project, flow, payload):
                yield self._violation(module, info, anchor, message)

    def _payload_findings(
        self, project: Project, flow: FunctionDataflow, expression: ast.expr
    ) -> List[Tuple[ast.AST, str]]:
        found: List[Tuple[ast.AST, str]] = []
        if isinstance(expression, ast.Dict):
            for value in expression.values:
                found.extend(self._payload_findings(project, flow, value))
            return found
        if isinstance(expression, (ast.List, ast.Tuple)):
            for element in expression.elts:
                found.extend(self._payload_findings(project, flow, element))
            return found
        origin = flow.classify(expression)
        if origin is None:
            return found
        found.extend(
            (defect.node or expression, message)
            for defect, message in _origin_defects(project, origin)
        )
        return found

    # ------------------------------------------------------------------
    # net 2: RunReport construction outside the API boundary
    # ------------------------------------------------------------------
    def _check_report_construction(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        if module.name in REPORT_BOUNDARY_MODULES:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.call_target(module, node, info)
            if target is None or target.rsplit(".", 1)[-1] != "RunReport":
                continue
            yield self._violation(
                module, info, node,
                "RunReport constructed outside the API boundary "
                "(Session.run / RunReport.from_dict): ad-hoc construction "
                "bypasses payload canonicalization and schema stamping",
            )

    # ------------------------------------------------------------------
    # net 3: the ScenarioOutcome canonicalization call is pinned
    # ------------------------------------------------------------------
    def _check_outcome_contract(
        self, project: Project, module: LintModule
    ) -> Iterator[Violation]:
        for class_info in module.classes.values():
            if class_info.name != "ScenarioOutcome":
                continue
            post_init = class_info.methods.get("__post_init__")
            if post_init is not None and _calls_canonicalizer(post_init):
                continue
            anchor: ast.AST = post_init.node if post_init else class_info.node
            yield Violation(
                rule=self.rule_id,
                module=module.name,
                path=module.path,
                line=getattr(anchor, "lineno", 1),
                column=getattr(anchor, "col_offset", 0),
                symbol=class_info.qualname,
                message=(
                    "ScenarioOutcome.__post_init__ must canonicalize the "
                    "payload (canonicalize_payload) — removing the call "
                    "reverts the PR 8 numpy-payload fix"
                ),
            )

    # ------------------------------------------------------------------
    # net 4: payloads flowing into serve response roots
    # ------------------------------------------------------------------
    def _check_serve_responses(
        self, project: Project, module: LintModule, info: FunctionInfo
    ) -> Iterator[Violation]:
        """Dataflow-check the payload at every serve response call site.

        Response bodies leave the service without crossing the
        ``ScenarioOutcome`` boundary, so the same non-JSON origins net 1
        catches in runner payloads applies to every ``json_response`` /
        ``event_line`` call in ``repro.serve.*``.  The protocol module
        itself is exempt here: its roots canonicalize internally, which
        net 5 pins.
        """
        if module.name == SERVE_PROTOCOL_MODULE:
            return
        flow = project.dataflow(info)
        dict_literals = _dict_literal_bindings(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.call_target(module, node, info)
            if target is None or target.rsplit(".", 1)[-1] not in SERVE_RESPONSE_ROOTS:
                continue
            payload = _payload_argument(node)
            if payload is None:
                continue
            if isinstance(payload, ast.Name):
                payload = dict_literals.get(payload.id, payload)
            for anchor, message in self._payload_findings(project, flow, payload):
                yield self._violation(module, info, anchor, message)

    # ------------------------------------------------------------------
    # net 5: the serve roots' canonicalization calls are pinned
    # ------------------------------------------------------------------
    def _check_serve_protocol_contract(
        self, module: LintModule
    ) -> Iterator[Violation]:
        if module.name != SERVE_PROTOCOL_MODULE:
            return
        for name in sorted(SERVE_RESPONSE_ROOTS):
            info = module.functions.get(f"{module.name}.{name}")
            if info is not None and _calls_canonicalizer(info):
                continue
            anchor: ast.AST = info.node if info is not None else module.tree
            yield Violation(
                rule=self.rule_id,
                module=module.name,
                path=module.path,
                line=getattr(anchor, "lineno", 1),
                column=getattr(anchor, "col_offset", 0),
                symbol=f"{module.name}.{name}",
                message=(
                    f"{name} must canonicalize its payload "
                    "(canonicalize_payload) before json.dumps — serve "
                    "response bodies never cross the ScenarioOutcome "
                    "boundary, this call is their only canonicalization"
                ),
            )

    def _violation(
        self, module: LintModule, info: FunctionInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            module=module.name,
            path=module.path,
            line=getattr(node, "lineno", info.node.lineno),
            column=getattr(node, "col_offset", 0),
            symbol=info.qualname,
            message=message,
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _is_scenario_runner(
    project: Project, module: LintModule, info: FunctionInfo
) -> bool:
    for decorator in info.node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        target = project.call_target(module, decorator, info)
        if target is not None and target.rsplit(".", 1)[-1] == "register_scenario":
            return True
    return False


def _payload_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "payload":
            return keyword.value
    return None


def _dict_literal_bindings(info: FunctionInfo) -> Dict[str, ast.Dict]:
    """Names assigned a dict literal inside the function (last wins)."""
    bindings: Dict[str, ast.Dict] = {}
    for node in ast.walk(info.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Dict)
        ):
            bindings[node.targets[0].id] = node.value
    return bindings


def _origin_defects(
    project: Project, origin: ValueOrigin
) -> List[Tuple[ValueOrigin, str]]:
    found: List[Tuple[ValueOrigin, str]] = []
    if origin.kind == "container":
        for element in origin.elements:
            found.extend(_origin_defects(project, element))
        return found
    if origin.kind == "set":
        found.append(
            (origin, "set in a report payload: the canonicalizer passes "
                     "sets through verbatim and json.dumps rejects them; "
                     "use sorted(...) for a deterministic list")
        )
    elif origin.kind == "bytes":
        found.append(
            (origin, "bytes in a report payload are not JSON-native; "
                     "decode or hex-encode")
        )
    elif origin.kind in ("lambda", "local_function"):
        found.append(
            (origin, "callable in a report payload can never serialize; "
                     "record its result or name instead")
        )
    elif origin.kind == "call":
        reason = _NON_JSON_FACTORIES.get(origin.detail)
        if reason is not None:
            found.append((origin, f"non-JSON value in a report payload: {reason}"))
        elif origin.detail in project.classes:
            class_name = origin.detail.rsplit(".", 1)[-1]
            found.append(
                (origin, f"{class_name} instance in a report payload: the "
                         f"canonicalizer passes unknown objects through "
                         f"verbatim and json.dumps rejects them; export "
                         f"scalar fields instead")
            )
    return found


def _calls_canonicalizer(post_init: FunctionInfo) -> bool:
    for node in ast.walk(post_init.node):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "canonicalize_payload":
                return True
    return False


__all__ = [
    "ReportJsonRule",
    "REPORT_BOUNDARY_MODULES",
    "SERVE_PROTOCOL_MODULE",
    "SERVE_RESPONSE_ROOTS",
]
