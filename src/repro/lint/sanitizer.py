"""Opt-in runtime determinism sanitizer: the dynamic half of ``repro.lint``.

The static rules (R001–R008) reason about the tree; this module observes a
*real run* through patched choke points and reports what actually happened,
in the same :class:`~repro.lint.model.Violation` format and rule-id
vocabulary so CI can diff the static and dynamic reports against one
baseline:

========  ============================================================
R001      an unordered container (set/frozenset/dict) reached the
          canonical fingerprint encoder
R004      unseeded RNG construction (``default_rng()`` without entropy)
          or a global-state RNG call (``random.random`` & co.) from
          repro code
R006      a pool submission that does not pickle, or a shared
          Session/engine/store handle shipped in a task payload
R007      a mutating method ran on a guarded object in a different
          process than the one that constructed it (the write mutates a
          fork-time copy the parent never sees)
R008      a non-JSON-native value in a scenario payload or run report
========  ============================================================

Enable it per run with ``repro-ftes run --sanitize`` or process-wide with
``REPRO_SANITIZE=1``; library code can use the context manager directly::

    with DeterminismSanitizer() as sanitizer:
        report = session.run("fig6a")
    assert not sanitizer.violations

The sanitizer never changes behaviour — wrappers record and then delegate
to the originals — so a sanitized run produces byte-identical results.  It
is off by default because the patches are process-global state (stdlib and
numpy entry points) and the per-call checks, while cheap, sit on paths a
tight DSE loop may hit millions of times.
"""

from __future__ import annotations

import io
import os
import pickle
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.lint.model import Violation, sort_violations

#: Environment variable enabling the sanitizer process-wide.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Global-state functions of the stdlib ``random`` module (R004 when called
#: from repro code; the module-level instance is shared hidden state).
_RANDOM_GLOBALS = (
    "seed", "random", "randint", "randrange", "uniform", "shuffle",
    "choice", "sample", "gauss", "normalvariate", "betavariate",
)

#: Global-state functions of ``numpy.random`` (legacy shared RandomState).
_NUMPY_GLOBALS = (
    "seed", "rand", "randn", "random", "randint", "shuffle",
    "permutation", "choice", "uniform", "normal",
)

#: Class names whose live instances must not cross a pool boundary.
_SHARED_HANDLE_CLASSES = (
    "Session", "EvaluationEngine", "MemoCache", "DesignPointStore",
)

_ACTIVE: Optional["DeterminismSanitizer"] = None

_AUDIT_HOOK_INSTALLED = False


def active_sanitizer() -> Optional["DeterminismSanitizer"]:
    """The currently installed sanitizer, if any."""
    return _ACTIVE


def env_requests_sanitizer() -> bool:
    """Is ``REPRO_SANITIZE`` set to a truthy value?"""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


@dataclass
class SanitizerReport:
    """Violations plus contextual counters from one sanitized span."""

    violations: List[Violation] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "violations": [violation.as_dict() for violation in self.violations],
            "counters": dict(sorted(self.counters.items())),
        }

    def format_text(self) -> str:
        lines = [violation.format_text() for violation in self.violations]
        counters = ", ".join(f"{key}={value}" for key, value in sorted(self.counters.items()))
        lines.append(
            f"sanitizer: {len(self.violations)} violation(s)"
            + (f" [{counters}]" if counters else "")
        )
        return "\n".join(lines)


class DeterminismSanitizer:
    """Records determinism hazards during a real run; never changes behaviour."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.counters: Dict[str, int] = {}
        self._patches: List[Tuple[Any, str, Any]] = []
        self._installed = False
        self._seen_fingerprints: set = set()
        # Birth PIDs of slotted guarded objects (no __dict__ to stamp);
        # keyed by id().  Inherited by fork-started workers along with the
        # rest of the sanitizer, which is exactly what the R007 check needs.
        self._birth_pids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "DeterminismSanitizer":
        global _ACTIVE
        if self._installed:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("a DeterminismSanitizer is already installed")
        self._patch_stdlib_random()
        self._patch_numpy_random()
        self._patch_pool_boundary()
        self._patch_fingerprint_encoder()
        self._patch_shared_handles()
        self._install_audit_hook()
        self._installed = True
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        if not self._installed:
            return
        for owner, name, original in reversed(self._patches):
            setattr(owner, name, original)
        self._patches.clear()
        self._installed = False
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "DeterminismSanitizer":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            violations=sort_violations(self.violations),
            counters=dict(self.counters),
        )

    # ------------------------------------------------------------------
    # birth-PID bookkeeping (R007)
    # ------------------------------------------------------------------
    def _stamp_birth_pid(self, obj: Any) -> None:
        try:
            obj._sanitizer_pid = os.getpid()
        except (AttributeError, TypeError):
            # Slotted class (e.g. MemoCache): fall back to an id-keyed map.
            self._birth_pids[id(obj)] = os.getpid()

    def _birth_pid(self, obj: Any) -> Optional[int]:
        stamped = getattr(obj, "_sanitizer_pid", None)
        if stamped is not None:
            return int(stamped)
        return self._birth_pids.get(id(obj))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    def _record(self, rule: str, message: str) -> None:
        site = _caller_site()
        if site is None:
            # No repro frame on the stack: third-party/interpreter internals
            # (e.g. pytest machinery) — not this run's code, don't record.
            return
        module, path, line, symbol = site
        violation = Violation(
            rule=rule,
            module=module,
            path=path,
            line=line,
            column=0,
            symbol=symbol,
            message=message,
        )
        key = (violation.fingerprint(), line)
        if key in self._seen_fingerprints:
            return
        self._seen_fingerprints.add(key)
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # patches
    # ------------------------------------------------------------------
    def _patch(self, owner: Any, name: str, wrapper_factory: Callable[[Any], Any]) -> None:
        original = getattr(owner, name)
        setattr(owner, name, wrapper_factory(original))
        self._patches.append((owner, name, original))

    def _patch_stdlib_random(self) -> None:
        import random as random_module

        for name in _RANDOM_GLOBALS:
            if not hasattr(random_module, name):
                continue

            def factory(original: Any, fn_name: str = name) -> Any:
                def wrapper(*args: Any, **kwargs: Any) -> Any:
                    self._count("random_global_calls")
                    self._record(
                        "R004",
                        f"global-state RNG call random.{fn_name}() observed "
                        f"at runtime; thread an explicit random.Random(seed) "
                        f"through the call signature",
                    )
                    return original(*args, **kwargs)

                return wrapper

            self._patch(random_module, name, factory)

    def _patch_numpy_random(self) -> None:
        try:
            import numpy.random as np_random
        except ImportError:  # pragma: no cover - numpy is a core dependency
            return

        for name in _NUMPY_GLOBALS:
            if not hasattr(np_random, name):
                continue

            def factory(original: Any, fn_name: str = name) -> Any:
                def wrapper(*args: Any, **kwargs: Any) -> Any:
                    self._count("numpy_global_calls")
                    self._record(
                        "R004",
                        f"global-state RNG call numpy.random.{fn_name}() "
                        f"observed at runtime; use "
                        f"numpy.random.default_rng(seed) instead",
                    )
                    return original(*args, **kwargs)

                return wrapper

            self._patch(np_random, name, factory)

        def default_rng_factory(original: Any) -> Any:
            def wrapper(seed: Any = None, *args: Any, **kwargs: Any) -> Any:
                if seed is None:
                    self._count("seedless_rng_constructions")
                    self._record(
                        "R004",
                        "seedless numpy.random.default_rng() constructed at "
                        "runtime: the stream differs every process; pass an "
                        "explicit seed",
                    )
                return original(seed, *args, **kwargs)

            return wrapper

        self._patch(np_random, "default_rng", default_rng_factory)

        def seed_sequence_factory(original: Any) -> Any:
            def wrapper(entropy: Any = None, *args: Any, **kwargs: Any) -> Any:
                if entropy is None:
                    self._count("seedless_rng_constructions")
                    self._record(
                        "R004",
                        "seedless numpy.random.SeedSequence() constructed at "
                        "runtime: OS entropy differs every process; pass "
                        "explicit entropy",
                    )
                return original(entropy, *args, **kwargs)

            return wrapper

        self._patch(np_random, "SeedSequence", seed_sequence_factory)

    def _patch_pool_boundary(self) -> None:
        from concurrent.futures import ProcessPoolExecutor

        sanitizer = self

        def init_factory(original: Any) -> Any:
            def wrapper(pool_self: Any, *args: Any, **kwargs: Any) -> Any:
                # Positional layout after self: (max_workers, mp_context,
                # initializer, initargs).
                initargs = kwargs.get("initargs", ())
                if len(args) >= 4:
                    initargs = args[3]
                sanitizer._check_pool_payload(initargs, role="initargs")
                return original(pool_self, *args, **kwargs)

            return wrapper

        def submit_factory(original: Any) -> Any:
            def wrapper(pool_self: Any, fn: Any, /, *args: Any, **kwargs: Any) -> Any:
                sanitizer._count("pool_submissions")
                sanitizer._check_pool_payload(
                    (fn, *args, *kwargs.values()), role="pool submission"
                )
                return original(pool_self, fn, *args, **kwargs)

            return wrapper

        self._patch(ProcessPoolExecutor, "__init__", init_factory)
        self._patch(ProcessPoolExecutor, "submit", submit_factory)

    def _check_pool_payload(self, payload: Tuple[Any, ...], role: str) -> None:
        try:
            pickle.dumps(payload)
        except Exception as exc:  # noqa: BLE001 - any pickling failure counts
            self._count("unpicklable_pool_payloads")
            self._record(
                "R006",
                f"{role} does not pickle ({type(exc).__name__}: {exc}); "
                f"everything crossing the pool boundary must be picklable "
                f"by type",
            )
        for handle_name in _shared_handles(payload):
            self._count("shared_handles_shipped")
            self._record(
                "R006",
                f"live {handle_name} handle in {role}: workers must rebuild "
                f"engines/stores from scalars (the _init_worker idiom)",
            )

    def _patch_fingerprint_encoder(self) -> None:
        try:
            from repro.engine import fingerprint as fingerprint_module
        except ImportError:  # pragma: no cover - engine is a core package
            return

        def encode_factory(original: Any) -> Any:
            def wrapper(value: Any) -> Any:
                if isinstance(value, (set, frozenset, dict)):
                    self._count("unordered_key_material")
                    self._record(
                        "R001",
                        f"unordered {type(value).__name__} reached the "
                        f"canonical fingerprint encoder: iteration order is "
                        f"hash-dependent; sort before encoding",
                    )
                return original(value)

            return wrapper

        self._patch(fingerprint_module, "_canonical_encode", encode_factory)

    def _patch_shared_handles(self) -> None:
        """Stamp guarded objects with their construction PID and flag
        mutating methods running in a different process (R007)."""
        sanitizer = self
        for owner, mutators in _guarded_runtime_classes():
            def init_factory(original: Any) -> Any:
                def wrapper(obj_self: Any, *args: Any, **kwargs: Any) -> Any:
                    result = original(obj_self, *args, **kwargs)
                    sanitizer._stamp_birth_pid(obj_self)
                    return result

                return wrapper

            self._patch(owner, "__init__", init_factory)
            for method_name in mutators:
                if not hasattr(owner, method_name):
                    continue

                def method_factory(
                    original: Any,
                    class_name: str = owner.__name__,
                    name: str = method_name,
                ) -> Any:
                    def wrapper(obj_self: Any, *args: Any, **kwargs: Any) -> Any:
                        born = sanitizer._birth_pid(obj_self)
                        if born is not None and born != os.getpid():
                            sanitizer._count("cross_process_mutations")
                            message = (
                                f"{class_name}.{name}() mutating an object "
                                f"constructed in process {born} from process "
                                f"{os.getpid()}: the write hits a fork-time "
                                f"copy the parent never sees"
                            )
                            sanitizer._record("R007", message)
                            # A forked child's sanitizer state is invisible
                            # to the parent — surface on stderr as well.
                            print(f"repro-sanitizer: R007 {message}", file=sys.stderr)
                        return original(obj_self, *args, **kwargs)

                    return wrapper

                self._patch(owner, method_name, method_factory)

    def _install_audit_hook(self) -> None:
        # Audit hooks cannot be removed; install one process-wide hook that
        # consults the active sanitizer and otherwise does nothing.
        global _AUDIT_HOOK_INSTALLED
        if _AUDIT_HOOK_INSTALLED:
            return

        def hook(event: str, _args: Tuple[Any, ...]) -> None:
            active = _ACTIVE
            if active is None:
                return
            if event == "os.fork":
                active._count("forks")

        sys.addaudithook(hook)
        _AUDIT_HOOK_INSTALLED = True

    # ------------------------------------------------------------------
    # payload / report checks (called from the API layer when active)
    # ------------------------------------------------------------------
    def check_payload(self, value: Any, context: str = "payload") -> None:
        """Record R008 for every non-JSON-native leaf in ``value``."""
        for path, leaf in _non_json_native(value, context):
            self._count("non_json_payload_values")
            self._record(
                "R008",
                f"non-JSON-native {type(leaf).__name__} at {path}: the "
                f"canonicalizer passed it through verbatim and "
                f"RunReport.to_json would raise",
            )

    def check_report(self, report_dict: Dict[str, Any], scenario: str = "") -> None:
        """Validate the JSON-facing fields of an assembled run report."""
        prefix = f"report[{scenario}]" if scenario else "report"
        for fragment in ("results", "params", "cache", "timings", "kernels"):
            if fragment in report_dict:
                self.check_payload(report_dict[fragment], f"{prefix}.{fragment}")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _caller_site() -> Optional[Tuple[str, str, int, str]]:
    """``(module, path, line, symbol)`` of the nearest repro caller frame."""
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module.startswith("repro.") and not module.startswith("repro.lint"):
            code = frame.f_code
            symbol = getattr(code, "co_qualname", code.co_name)
            return (
                module,
                code.co_filename,
                frame.f_lineno,
                f"{module}.{symbol}",
            )
        frame = frame.f_back
    return None


def _guarded_runtime_classes() -> Iterator[Tuple[type, Tuple[str, ...]]]:
    """Guarded classes with the mutating methods worth PID-checking."""
    try:
        from repro.engine.cache import MemoCache

        yield MemoCache, ("put", "load", "clear")
    except ImportError:  # pragma: no cover - engine is a core package
        pass
    try:
        from repro.engine.store import DesignPointStore

        yield DesignPointStore, ("warm", "persist")
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.api.session import Session

        yield Session, ("add_cache_counters",)
    except ImportError:  # pragma: no cover
        pass


def _shared_handles(value: Any, depth: int = 3) -> List[str]:
    """Names of shared-handle instances found in a (shallow) payload walk."""
    found: List[str] = []
    class_names = {cls.__name__ for cls, _ in _guarded_runtime_classes()}
    class_names.update(_SHARED_HANDLE_CLASSES)

    def walk(node: Any, remaining: int) -> None:
        type_name = type(node).__name__
        if type_name in class_names and not isinstance(
            node, (str, bytes, int, float, bool, type(None))
        ):
            found.append(type_name)
            return
        if remaining <= 0:
            return
        if isinstance(node, dict):
            for child in node.values():
                walk(child, remaining - 1)
        elif isinstance(node, (list, tuple, set, frozenset)):
            for child in node:
                walk(child, remaining - 1)

    walk(value, depth)
    return found


def _non_json_native(value: Any, path: str) -> List[Tuple[str, Any]]:
    """``(path, leaf)`` for every value ``json.dumps`` would reject."""
    from repro.api.report import iter_non_json_native

    return list(iter_non_json_native(value, path))


def print_report(sanitizer: DeterminismSanitizer, stream: Optional[io.TextIOBase] = None) -> None:
    """Render a sanitizer report to ``stream`` (default stderr)."""
    target = stream if stream is not None else sys.stderr
    print(sanitizer.report().format_text(), file=target)


__all__ = [
    "SANITIZE_ENV",
    "DeterminismSanitizer",
    "SanitizerReport",
    "active_sanitizer",
    "env_requests_sanitizer",
    "print_report",
]
