"""Additional software fault-tolerance policies (extensions).

The DATE'09 paper uses re-execution as its software fault-tolerance mechanism
and cites the authors' companion work on checkpointing and replication
(reference [15], Pop et al., IEEE TVLSI 2009) as the broader policy space.
This package implements those two additional policies so the library can be
used to study the same trade-offs:

* :mod:`repro.policies.checkpointing` — equidistant checkpointing with an
  analytically optimal number of checkpoints,
* :mod:`repro.policies.replication` — active (space) replication of a process
  on several nodes.
"""

from __future__ import annotations

from repro.policies.checkpointing import (
    CheckpointingPlan,
    optimal_checkpoint_count,
    worst_case_execution_with_checkpoints,
)
from repro.policies.replication import (
    ReplicationPlan,
    replication_failure_probability,
    required_replicas,
)

__all__ = [
    "CheckpointingPlan",
    "ReplicationPlan",
    "optimal_checkpoint_count",
    "replication_failure_probability",
    "required_replicas",
    "worst_case_execution_with_checkpoints",
]
