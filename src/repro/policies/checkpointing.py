"""Equidistant checkpointing with rollback recovery.

Re-execution (the policy used in the DATE'09 paper) restarts a failed process
from the beginning.  Checkpointing splits the process into ``n`` equal
segments and saves its state after each segment, so a fault only forces the
re-execution of the segment in which it occurred.  Following the authors'
companion work (Pop et al., TVLSI 2009), the worst-case execution time of a
process of WCET ``t`` with ``n`` checkpoints tolerating ``k`` faults is

``E(n) = t + n * chi  +  k * (t / n + mu + chi)``

where ``chi`` is the checkpointing overhead (saving state) and ``mu`` the
recovery overhead (restoring state and restarting).  The first two terms are
the fault-free cost, the last one the recovery slack.  ``E(n)`` is convex in
``n``; the real-valued minimiser is ``n0 = sqrt(k * t / chi)`` and the optimal
integer count is one of ``floor(n0)``/``ceil(n0)``.

Re-execution is the special case ``n = 1`` with ``chi = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor, sqrt

from repro.core.exceptions import ModelError
from repro.utils.validation import require_non_negative, require_positive


def worst_case_execution_with_checkpoints(
    wcet: float,
    checkpoints: int,
    faults: int,
    checkpoint_overhead: float,
    recovery_overhead: float,
) -> float:
    """Worst-case execution time of one process with ``checkpoints`` segments.

    Parameters
    ----------
    wcet:
        Fault-free worst-case execution time ``t`` of the whole process.
    checkpoints:
        Number of equal segments ``n`` (>= 1).  ``n = 1`` means a single
        checkpoint at the end, i.e. plain re-execution of the whole process.
    faults:
        Number of faults ``k`` to tolerate in the worst case.
    checkpoint_overhead:
        Time ``chi`` to save the state at each checkpoint.
    recovery_overhead:
        Time ``mu`` to restore the state before re-executing a segment.
    """
    require_positive(wcet, "wcet")
    if checkpoints < 1:
        raise ModelError(f"checkpoints must be >= 1, got {checkpoints}")
    if faults < 0:
        raise ModelError(f"faults must be >= 0, got {faults}")
    require_non_negative(checkpoint_overhead, "checkpoint_overhead")
    require_non_negative(recovery_overhead, "recovery_overhead")
    fault_free = wcet + checkpoints * checkpoint_overhead
    recovery = faults * (wcet / checkpoints + recovery_overhead + checkpoint_overhead)
    return fault_free + recovery


def optimal_checkpoint_count(
    wcet: float,
    faults: int,
    checkpoint_overhead: float,
    recovery_overhead: float,
    max_checkpoints: int = 64,
) -> int:
    """Number of checkpoints minimizing the worst-case execution time.

    Evaluates the two integers around the analytic optimum
    ``sqrt(k * t / chi)`` (clamped to ``[1, max_checkpoints]``) and returns
    the better one; with no faults or no checkpoint overhead the extremes are
    handled explicitly.
    """
    require_positive(wcet, "wcet")
    if faults < 0:
        raise ModelError(f"faults must be >= 0, got {faults}")
    require_non_negative(checkpoint_overhead, "checkpoint_overhead")
    require_non_negative(recovery_overhead, "recovery_overhead")
    if max_checkpoints < 1:
        raise ModelError(f"max_checkpoints must be >= 1, got {max_checkpoints}")
    if faults == 0:
        return 1
    if checkpoint_overhead == 0.0:
        # Checkpoints are free: the more segments the smaller the re-executed
        # portion, so saturate the allowed maximum.
        return max_checkpoints
    continuous_optimum = sqrt(faults * wcet / checkpoint_overhead)
    candidates = {
        max(1, min(max_checkpoints, floor(continuous_optimum))),
        max(1, min(max_checkpoints, ceil(continuous_optimum))),
    }
    return min(
        candidates,
        key=lambda count: (
            worst_case_execution_with_checkpoints(
                wcet, count, faults, checkpoint_overhead, recovery_overhead
            ),
            count,
        ),
    )


@dataclass(frozen=True)
class CheckpointingPlan:
    """Chosen checkpointing configuration for one process."""

    process: str
    wcet: float
    faults: int
    checkpoint_overhead: float
    recovery_overhead: float
    checkpoints: int

    @classmethod
    def optimal(
        cls,
        process: str,
        wcet: float,
        faults: int,
        checkpoint_overhead: float,
        recovery_overhead: float,
        max_checkpoints: int = 64,
    ) -> "CheckpointingPlan":
        """Build the plan with the optimal number of checkpoints."""
        count = optimal_checkpoint_count(
            wcet, faults, checkpoint_overhead, recovery_overhead, max_checkpoints
        )
        return cls(
            process=process,
            wcet=wcet,
            faults=faults,
            checkpoint_overhead=checkpoint_overhead,
            recovery_overhead=recovery_overhead,
            checkpoints=count,
        )

    @property
    def worst_case_execution(self) -> float:
        """Worst-case execution time under this plan."""
        return worst_case_execution_with_checkpoints(
            self.wcet,
            self.checkpoints,
            self.faults,
            self.checkpoint_overhead,
            self.recovery_overhead,
        )

    @property
    def reexecution_worst_case(self) -> float:
        """Worst-case execution time of plain re-execution (the paper's policy)."""
        return worst_case_execution_with_checkpoints(
            self.wcet, 1, self.faults, 0.0, self.recovery_overhead
        )

    def saving_over_reexecution(self) -> float:
        """Absolute worst-case time saved compared with plain re-execution."""
        return max(0.0, self.reexecution_worst_case - self.worst_case_execution)
