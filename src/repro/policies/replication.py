"""Active replication of processes across computation nodes.

Replication tolerates faults in *space*: ``r`` replicas of a process run on
different nodes and the result of any fault-free replica is used.  Unlike
re-execution it adds no recovery latency, but it occupies several nodes at
once and all replicas must be scheduled.  The DATE'09 paper cites replication
as the alternative software policy (via its references [5], [14], [20] and the
authors' own TVLSI work); this module provides the corresponding analysis so
the policy space can be compared on top of the same SFP machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Dict, Sequence

from repro.core.exceptions import ModelError, ReliabilityError
from repro.utils.rounding import DEFAULT_DECIMALS, ceil_probability
from repro.utils.validation import require_in_unit_interval


def replication_failure_probability(
    replica_failure_probabilities: Sequence[float],
    decimals: int = DEFAULT_DECIMALS,
) -> float:
    """Probability that *all* replicas of a process fail in one iteration.

    The replicas run on different nodes, so their failures are independent
    and the process result is lost only when every replica fails.  The value
    is rounded up (pessimistically), consistent with the SFP analysis.
    """
    if not replica_failure_probabilities:
        raise ModelError("At least one replica is required")
    for probability in replica_failure_probabilities:
        require_in_unit_interval(probability, "replica failure probability")
    return ceil_probability(prod(replica_failure_probabilities), decimals)


def required_replicas(
    replica_failure_probability: float,
    target_failure_probability: float,
    max_replicas: int = 16,
    decimals: int = DEFAULT_DECIMALS,
) -> int:
    """Smallest replica count whose joint failure probability meets a target.

    Raises :class:`ReliabilityError` if the target cannot be met with
    ``max_replicas`` identical replicas.
    """
    require_in_unit_interval(replica_failure_probability, "replica_failure_probability")
    require_in_unit_interval(target_failure_probability, "target_failure_probability")
    if max_replicas < 1:
        raise ModelError(f"max_replicas must be >= 1, got {max_replicas}")
    for count in range(1, max_replicas + 1):
        joint = replication_failure_probability(
            [replica_failure_probability] * count, decimals
        )
        if joint <= target_failure_probability:
            return count
    raise ReliabilityError(
        f"Even {max_replicas} replicas with failure probability "
        f"{replica_failure_probability} cannot reach the target "
        f"{target_failure_probability}"
    )


@dataclass(frozen=True)
class ReplicationPlan:
    """Assignment of the replicas of one process to nodes."""

    process: str
    replica_nodes: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.replica_nodes:
            raise ModelError(f"ReplicationPlan for {self.process} has no replicas")
        for node, probability in self.replica_nodes.items():
            require_in_unit_interval(probability, f"failure probability on {node}")

    @property
    def replica_count(self) -> int:
        return len(self.replica_nodes)

    @property
    def failure_probability(self) -> float:
        """Probability that every replica fails in the same iteration."""
        return replication_failure_probability(list(self.replica_nodes.values()))

    def meets(self, target_failure_probability: float) -> bool:
        require_in_unit_interval(target_failure_probability, "target_failure_probability")
        return self.failure_probability <= target_failure_probability
