"""Static cyclic scheduling with recovery slack for re-executions."""

from __future__ import annotations

from repro.scheduling.list_scheduler import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack

__all__ = [
    "ListScheduler",
    "Schedule",
    "ScheduledMessage",
    "ScheduledProcess",
    "naive_recovery_slack",
    "shared_recovery_slack",
]
