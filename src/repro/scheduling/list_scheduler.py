"""Static list scheduler with shared recovery slack.

This implements the ``Scheduling`` building block of the paper (Section 6.4),
adapted from the authors' earlier work [7, 15]:

1. Build the fault-free *root schedule*: processes are scheduled on their
   mapped nodes with list scheduling driven by partial-critical-path
   priorities; inter-node messages are scheduled on the shared bus in the
   order their consumers are placed.
2. Reserve recovery slack per node: after the last process of node ``Nj`` a
   slack of ``k_j * (max_i t_ijh + mu_i)`` is kept free so that up to ``k_j``
   re-executions (each preceded by the recovery overhead ``mu``) fit in the
   worst case.  The slack is shared between the processes of the node
   (see :mod:`repro.scheduling.slack`).
3. The worst-case schedule length is the latest node completion including its
   slack; it is the value compared against the deadline by every heuristic.

The scheduler is deterministic: ties in priority are broken by process name so
that repeated runs over the same inputs produce identical schedules (important
both for reproducibility of the experiments and for the tabu-search mapping
heuristic, which compares schedule lengths across small perturbations).

The root-schedule construction itself (priorities, layer placement, bus
reservation, recovery slack) runs in a pluggable *scheduler kernel backend*
(:mod:`repro.kernels.sched_base`): ``reference`` is the per-object loop this
class historically inlined, ``flat`` compiles the application into
integer-indexed tables.  All backends are bit-identical — selection
(``--sched-kernel`` / ``REPRO_SCHED_KERNEL`` / ``auto``) is a speed knob
only and never part of an evaluation-engine cache key.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.comm.bus import Bus, SimpleBus
from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import SchedulingError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.kernels.registry import resolve_sched_kernel
from repro.kernels.sched_base import (
    SchedulerKernel,
    ScheduleStructure,
    SchedulingProblem,
)
from repro.scheduling.schedule import Schedule

#: Accepted ``kernel=`` selections: an instance, a registered name or ``None``.
SchedulerKernelSpec = Union[SchedulerKernel, str, None]


class ListScheduler:
    """List scheduler producing root schedules with recovery slack.

    Parameters
    ----------
    bus:
        Bus model used for inter-node messages.  Defaults to a fresh
        :class:`~repro.comm.bus.SimpleBus`; a TDMA bus can be supplied for
        time-triggered platforms.
    slack_sharing:
        When ``True`` (default, the paper's approach) the recovery slack of a
        node covers the worst single victim ``k_j`` times; when ``False`` the
        naive per-process slack is reserved instead (ablation baseline).
    kernel:
        Scheduler kernel backend running the root-schedule construction (an
        instance, a registered name, or ``None`` for the process-wide
        selection).  A speed knob only: every backend is bit-identical.
    """

    def __init__(
        self,
        bus: Optional[Bus] = None,
        slack_sharing: bool = True,
        kernel: SchedulerKernelSpec = None,
    ) -> None:
        self.bus = bus if bus is not None else SimpleBus()
        self.slack_sharing = slack_sharing
        self.kernel = resolve_sched_kernel(kernel)
        # One-slot memo of the application's static structure (scheduling
        # layers and per-process incoming messages).  The DSE stack schedules
        # the same application thousands of times in a row.  The memo holds a
        # strong reference to the application (so a recycled object address
        # can never alias a dead one) and re-derives when the identity or the
        # structural token — process/message names, edge endpoints and
        # transmission times — changes, so in-place graph edits that preserve
        # the process/message counts still invalidate it.
        self._structure_app: Optional[Application] = None
        self._structure: Optional[ScheduleStructure] = None

    def _application_structure(self, application: Application) -> ScheduleStructure:
        """Static scheduling structure: (layers, incoming messages, token).

        ``layers`` concatenates the topological generations of every task
        graph: all processes of layer ``i`` have their predecessors in layers
        ``< i``, which is exactly the set the ready-list loop would discover
        batch by batch — but precomputed once instead of rescanned per call.
        """
        token = application.structure_token()
        structure = self._structure
        if (
            self._structure_app is not application
            or structure is None
            or structure.token != token
        ):
            graph_generations = [
                graph.topological_generations() for graph in application.graphs
            ]
            depth = max((len(g) for g in graph_generations), default=0)
            layers: List[List[str]] = []
            for level in range(depth):
                layer: List[str] = []
                for generations in graph_generations:
                    if level < len(generations):
                        layer.extend(generations[level])
                layers.append(layer)
            incoming: Dict[str, List] = {}
            for graph in application.graphs:
                for process in graph.process_names:
                    incoming[process] = graph.incoming_messages(process)
            structure = ScheduleStructure(token=token, layers=layers, incoming=incoming)
            self._structure = structure
            self._structure_app = application
        return structure

    # ------------------------------------------------------------------
    def schedule(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        reexecutions: Optional[Mapping[str, int]] = None,
    ) -> Schedule:
        """Build the static schedule for one application iteration.

        Parameters
        ----------
        reexecutions:
            Re-execution budget ``k_j`` per node name; omitted nodes get 0.
        """
        mapping.validate(application, architecture, profile)
        budgets: Dict[str, int] = {node.name: 0 for node in architecture}
        if reexecutions:
            for name, value in reexecutions.items():
                if name not in budgets:
                    raise SchedulingError(
                        f"Re-execution budget given for unknown node {name}"
                    )
                if value < 0:
                    raise SchedulingError(
                        f"Re-execution budget of node {name} must be >= 0, got {value}"
                    )
                budgets[name] = int(value)

        problem = SchedulingProblem(
            application=application,
            architecture=architecture,
            mapping=mapping,
            profile=profile,
            budgets=budgets,
            bus=self.bus,
            slack_sharing=self.slack_sharing,
            structure=self._application_structure(application),
        )
        return self.kernel.build_schedule(problem)

    def schedule_batch(
        self,
        application: Application,
        rows: List[
            Tuple[Architecture, ProcessMapping, Optional[Mapping[str, int]]]
        ],
        profile: ExecutionProfile,
    ) -> List[Schedule]:
        """Build the schedules of a whole candidate neighbourhood in one call.

        Each row is an ``(architecture, mapping, reexecutions)`` sibling of
        one base design point.  Validation and budget normalization run per
        row (mapping validity depends on the row's hardening levels via the
        profile), the static application structure is derived once, and the
        kernel receives the whole block through
        :meth:`~repro.kernels.sched_base.SchedulerKernel.batch_schedule` —
        vectorizing backends amortize their compiled tables across the rows,
        every other backend falls back to the scalar loop.  Row order is
        preserved and results are bit-identical to sequential
        :meth:`schedule` calls.
        """
        structure = self._application_structure(application)
        problems: List[SchedulingProblem] = []
        for architecture, mapping, reexecutions in rows:
            mapping.validate(application, architecture, profile)
            budgets: Dict[str, int] = {node.name: 0 for node in architecture}
            if reexecutions:
                for name, value in reexecutions.items():
                    if name not in budgets:
                        raise SchedulingError(
                            f"Re-execution budget given for unknown node {name}"
                        )
                    if value < 0:
                        raise SchedulingError(
                            f"Re-execution budget of node {name} must be >= 0, "
                            f"got {value}"
                        )
                    budgets[name] = int(value)
            problems.append(
                SchedulingProblem(
                    application=application,
                    architecture=architecture,
                    mapping=mapping,
                    profile=profile,
                    budgets=budgets,
                    bus=self.bus,
                    slack_sharing=self.slack_sharing,
                    structure=structure,
                )
            )
        return self.kernel.batch_schedule(problems)
