"""Static list scheduler with shared recovery slack.

This implements the ``Scheduling`` building block of the paper (Section 6.4),
adapted from the authors' earlier work [7, 15]:

1. Build the fault-free *root schedule*: processes are scheduled on their
   mapped nodes with list scheduling driven by partial-critical-path
   priorities; inter-node messages are scheduled on the shared bus in the
   order their consumers are placed.
2. Reserve recovery slack per node: after the last process of node ``Nj`` a
   slack of ``k_j * (max_i t_ijh + mu_i)`` is kept free so that up to ``k_j``
   re-executions (each preceded by the recovery overhead ``mu``) fit in the
   worst case.  The slack is shared between the processes of the node
   (see :mod:`repro.scheduling.slack`).
3. The worst-case schedule length is the latest node completion including its
   slack; it is the value compared against the deadline by every heuristic.

The scheduler is deterministic: ties in priority are broken by process name so
that repeated runs over the same inputs produce identical schedules (important
both for reproducibility of the experiments and for the tabu-search mapping
heuristic, which compares schedule lengths across small perturbations).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.comm.bus import Bus, SimpleBus
from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import SchedulingError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.scheduling.priorities import critical_path_priorities
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack


class ListScheduler:
    """List scheduler producing root schedules with recovery slack.

    Parameters
    ----------
    bus:
        Bus model used for inter-node messages.  Defaults to a fresh
        :class:`~repro.comm.bus.SimpleBus`; a TDMA bus can be supplied for
        time-triggered platforms.
    slack_sharing:
        When ``True`` (default, the paper's approach) the recovery slack of a
        node covers the worst single victim ``k_j`` times; when ``False`` the
        naive per-process slack is reserved instead (ablation baseline).
    """

    def __init__(self, bus: Optional[Bus] = None, slack_sharing: bool = True) -> None:
        self.bus = bus if bus is not None else SimpleBus()
        self.slack_sharing = slack_sharing

    # ------------------------------------------------------------------
    def schedule(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        reexecutions: Optional[Mapping[str, int]] = None,
    ) -> Schedule:
        """Build the static schedule for one application iteration.

        Parameters
        ----------
        reexecutions:
            Re-execution budget ``k_j`` per node name; omitted nodes get 0.
        """
        mapping.validate(application, architecture, profile)
        budgets: Dict[str, int] = {node.name: 0 for node in architecture}
        if reexecutions:
            for name, value in reexecutions.items():
                if name not in budgets:
                    raise SchedulingError(
                        f"Re-execution budget given for unknown node {name}"
                    )
                if value < 0:
                    raise SchedulingError(
                        f"Re-execution budget of node {name} must be >= 0, got {value}"
                    )
                budgets[name] = int(value)

        priorities = critical_path_priorities(application, architecture, mapping, profile)
        scheduled: Dict[str, ScheduledProcess] = {}
        scheduled_messages: List[ScheduledMessage] = []
        node_free: Dict[str, float] = {node.name: 0.0 for node in architecture}
        self.bus.reset()

        remaining: Set[str] = set(application.process_names())
        # Predecessor map across all graphs for readiness checks.
        predecessors: Dict[str, List[str]] = {}
        graph_of: Dict[str, str] = {}
        for graph in application.graphs:
            for process in graph.process_names:
                predecessors[process] = graph.predecessors(process)
                graph_of[process] = graph.name

        progress_guard = 0
        limit = len(remaining) + 1
        while remaining:
            ready = [
                process
                for process in remaining
                if all(pred in scheduled for pred in predecessors[process])
            ]
            if not ready:
                raise SchedulingError(
                    "No ready process found while tasks remain; the task graphs "
                    "are inconsistent (this should be prevented by the acyclicity "
                    "check at construction time)"
                )
            ready.sort(key=lambda process: (-priorities[process], process))
            for process in ready:
                entry, new_messages = self._place_process(
                    process,
                    application,
                    architecture,
                    mapping,
                    profile,
                    scheduled,
                    node_free,
                )
                scheduled[process] = entry
                scheduled_messages.extend(new_messages)
                node_free[entry.node] = entry.finish
                remaining.discard(process)
            progress_guard += 1
            if progress_guard > limit:  # pragma: no cover - defensive
                raise SchedulingError("List scheduler failed to make progress")

        slack = self._recovery_slack(
            application, architecture, mapping, profile, budgets
        )
        return Schedule(
            processes=list(scheduled.values()),
            messages=scheduled_messages,
            node_recovery_slack=slack,
            reexecutions=budgets,
            hardening=architecture.hardening_vector(),
        )

    # ------------------------------------------------------------------
    def _place_process(
        self,
        process: str,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        scheduled: Dict[str, ScheduledProcess],
        node_free: Dict[str, float],
    ) -> Tuple[ScheduledProcess, List[ScheduledMessage]]:
        """Compute the execution window of ``process`` and its input messages."""
        graph = application.graph_of(process)
        node = architecture.node(mapping.node_of(process))
        earliest = node_free[node.name]
        new_messages: List[ScheduledMessage] = []
        for message in graph.incoming_messages(process):
            producer_entry = scheduled[message.source]
            if producer_entry.node == node.name:
                # Intra-node communication happens through local memory and is
                # available as soon as the producer finishes.
                earliest = max(earliest, producer_entry.finish)
                continue
            reservation = self.bus.reserve(
                message.name,
                producer_entry.node,
                producer_entry.finish,
                message.transmission_time,
            )
            new_messages.append(
                ScheduledMessage(
                    message=message.name,
                    source_process=message.source,
                    destination_process=message.destination,
                    source_node=producer_entry.node,
                    destination_node=node.name,
                    start=reservation.start,
                    finish=reservation.finish,
                )
            )
            earliest = max(earliest, reservation.finish)
        wcet = profile.wcet_on_node(process, node)
        entry = ScheduledProcess(
            process=process, node=node.name, start=earliest, finish=earliest + wcet
        )
        return entry, new_messages

    def _recovery_slack(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        budgets: Mapping[str, int],
    ) -> Dict[str, float]:
        """Recovery slack reserved at the end of each node's schedule."""
        slack: Dict[str, float] = {}
        slack_function = shared_recovery_slack if self.slack_sharing else naive_recovery_slack
        for node in architecture:
            pairs = [
                (
                    profile.wcet_on_node(process, node),
                    application.recovery_overhead_of(process),
                )
                for process in mapping.processes_on(node.name)
            ]
            slack[node.name] = slack_function(pairs, budgets.get(node.name, 0))
        return slack
