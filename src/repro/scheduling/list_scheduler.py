"""Static list scheduler with shared recovery slack.

This implements the ``Scheduling`` building block of the paper (Section 6.4),
adapted from the authors' earlier work [7, 15]:

1. Build the fault-free *root schedule*: processes are scheduled on their
   mapped nodes with list scheduling driven by partial-critical-path
   priorities; inter-node messages are scheduled on the shared bus in the
   order their consumers are placed.
2. Reserve recovery slack per node: after the last process of node ``Nj`` a
   slack of ``k_j * (max_i t_ijh + mu_i)`` is kept free so that up to ``k_j``
   re-executions (each preceded by the recovery overhead ``mu``) fit in the
   worst case.  The slack is shared between the processes of the node
   (see :mod:`repro.scheduling.slack`).
3. The worst-case schedule length is the latest node completion including its
   slack; it is the value compared against the deadline by every heuristic.

The scheduler is deterministic: ties in priority are broken by process name so
that repeated runs over the same inputs produce identical schedules (important
both for reproducibility of the experiments and for the tabu-search mapping
heuristic, which compares schedule lengths across small perturbations).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.comm.bus import Bus, SimpleBus
from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import SchedulingError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.scheduling.priorities import critical_path_priorities
from repro.scheduling.schedule import Schedule, ScheduledMessage, ScheduledProcess
from repro.scheduling.slack import naive_recovery_slack, shared_recovery_slack


class ListScheduler:
    """List scheduler producing root schedules with recovery slack.

    Parameters
    ----------
    bus:
        Bus model used for inter-node messages.  Defaults to a fresh
        :class:`~repro.comm.bus.SimpleBus`; a TDMA bus can be supplied for
        time-triggered platforms.
    slack_sharing:
        When ``True`` (default, the paper's approach) the recovery slack of a
        node covers the worst single victim ``k_j`` times; when ``False`` the
        naive per-process slack is reserved instead (ablation baseline).
    """

    def __init__(self, bus: Optional[Bus] = None, slack_sharing: bool = True) -> None:
        self.bus = bus if bus is not None else SimpleBus()
        self.slack_sharing = slack_sharing
        # One-slot memo of the application's static structure (scheduling
        # layers and per-process incoming messages).  The DSE stack schedules
        # the same application thousands of times in a row.  The memo holds a
        # strong reference to the application (so a recycled object address
        # can never alias a dead one) and re-derives when the identity or the
        # graph sizes change.
        self._structure_app: Optional[Application] = None
        self._structure_guard: Optional[Tuple[int, int]] = None
        self._structure: Optional[
            Tuple[List[List[str]], Dict[str, List]]
        ] = None

    def _application_structure(
        self, application: Application
    ) -> Tuple[List[List[str]], Dict[str, List]]:
        """Static scheduling structure: (layers, incoming messages).

        ``layers`` concatenates the topological generations of every task
        graph: all processes of layer ``i`` have their predecessors in layers
        ``< i``, which is exactly the set the ready-list loop would discover
        batch by batch — but precomputed once instead of rescanned per call.
        """
        guard = (
            application.number_of_processes(),
            len(application.messages()),
        )
        if (
            self._structure_app is not application
            or self._structure_guard != guard
            or self._structure is None
        ):
            graph_generations = [
                graph.topological_generations() for graph in application.graphs
            ]
            depth = max((len(g) for g in graph_generations), default=0)
            layers: List[List[str]] = []
            for level in range(depth):
                layer: List[str] = []
                for generations in graph_generations:
                    if level < len(generations):
                        layer.extend(generations[level])
                layers.append(layer)
            incoming: Dict[str, List] = {}
            for graph in application.graphs:
                for process in graph.process_names:
                    incoming[process] = graph.incoming_messages(process)
            self._structure = (layers, incoming)
            self._structure_app = application
            self._structure_guard = guard
        return self._structure

    # ------------------------------------------------------------------
    def schedule(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        reexecutions: Optional[Mapping[str, int]] = None,
    ) -> Schedule:
        """Build the static schedule for one application iteration.

        Parameters
        ----------
        reexecutions:
            Re-execution budget ``k_j`` per node name; omitted nodes get 0.
        """
        mapping.validate(application, architecture, profile)
        budgets: Dict[str, int] = {node.name: 0 for node in architecture}
        if reexecutions:
            for name, value in reexecutions.items():
                if name not in budgets:
                    raise SchedulingError(
                        f"Re-execution budget given for unknown node {name}"
                    )
                if value < 0:
                    raise SchedulingError(
                        f"Re-execution budget of node {name} must be >= 0, got {value}"
                    )
                budgets[name] = int(value)

        priorities = critical_path_priorities(application, architecture, mapping, profile)
        scheduled: Dict[str, ScheduledProcess] = {}
        scheduled_messages: List[ScheduledMessage] = []
        node_free: Dict[str, float] = {node.name: 0.0 for node in architecture}
        self.bus.reset()

        # Scheduling layers and incoming-message table are static per
        # application and memoized: each layer is exactly the ready set the
        # original ready-list loop would discover, so placing the layers in
        # (-priority, name) order reproduces the original schedule.
        layers, incoming = self._application_structure(application)
        # Per-call node view: (name, wcet lookup key) resolved once per node
        # instead of re-deriving type/hardening for each placed process.
        node_info: Dict[str, Tuple[str, str, int]] = {
            node.name: (node.name, node.node_type.name, node.hardening)
            for node in architecture
        }
        node_of = mapping.node_of
        for layer in layers:
            for process in sorted(
                layer, key=lambda process: (-priorities[process], process)
            ):
                entry, new_messages = self._place_process(
                    process,
                    incoming[process],
                    node_info[node_of(process)],
                    profile,
                    scheduled,
                    node_free,
                )
                scheduled[process] = entry
                scheduled_messages.extend(new_messages)
                node_free[entry.node] = entry.finish

        slack = self._recovery_slack(
            application, architecture, mapping, profile, budgets
        )
        return Schedule(
            processes=list(scheduled.values()),
            messages=scheduled_messages,
            node_recovery_slack=slack,
            reexecutions=budgets,
            hardening=architecture.hardening_vector(),
        )

    # ------------------------------------------------------------------
    def _place_process(
        self,
        process: str,
        incoming_messages: List,
        node_info: Tuple[str, str, int],
        profile: ExecutionProfile,
        scheduled: Dict[str, ScheduledProcess],
        node_free: Dict[str, float],
    ) -> Tuple[ScheduledProcess, List[ScheduledMessage]]:
        """Compute the execution window of ``process`` and its input messages."""
        node_name, type_name, hardening = node_info
        earliest = node_free[node_name]
        new_messages: List[ScheduledMessage] = []
        for message in incoming_messages:
            producer_entry = scheduled[message.source]
            if producer_entry.node == node_name:
                # Intra-node communication happens through local memory and is
                # available as soon as the producer finishes.
                earliest = max(earliest, producer_entry.finish)
                continue
            reservation = self.bus.reserve(
                message.name,
                producer_entry.node,
                producer_entry.finish,
                message.transmission_time,
            )
            new_messages.append(
                ScheduledMessage(
                    message=message.name,
                    source_process=message.source,
                    destination_process=message.destination,
                    source_node=producer_entry.node,
                    destination_node=node_name,
                    start=reservation.start,
                    finish=reservation.finish,
                )
            )
            earliest = max(earliest, reservation.finish)
        wcet = profile.wcet(process, type_name, hardening)
        entry = ScheduledProcess(
            process=process, node=node_name, start=earliest, finish=earliest + wcet
        )
        return entry, new_messages

    def _recovery_slack(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        budgets: Mapping[str, int],
    ) -> Dict[str, float]:
        """Recovery slack reserved at the end of each node's schedule."""
        slack: Dict[str, float] = {}
        slack_function = shared_recovery_slack if self.slack_sharing else naive_recovery_slack
        wcet = profile.wcet
        for node in architecture:
            type_name = node.node_type.name
            hardening = node.hardening
            pairs = [
                (
                    wcet(process, type_name, hardening),
                    application.recovery_overhead_of(process),
                )
                for process in mapping.processes_on(node.name)
            ]
            slack[node.name] = slack_function(pairs, budgets.get(node.name, 0))
        return slack
