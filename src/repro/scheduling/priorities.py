"""Scheduling priorities (partial critical path / upward rank).

The list scheduler orders ready processes by the length of the longest path
from the process to any sink of its task graph, measured with the execution
times of the processes on their *mapped* nodes at the *current* hardening
levels, plus worst-case message transmission times for dependencies that cross
nodes.  This is the classic partial-critical-path priority used by the
authors' earlier mapping/scheduling work.
"""

from __future__ import annotations

from typing import Dict

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile


def mapped_execution_time(
    process: str,
    architecture: Architecture,
    mapping: ProcessMapping,
    profile: ExecutionProfile,
) -> float:
    """WCET of ``process`` on its mapped node at the node's current hardening."""
    node = architecture.node(mapping.node_of(process))
    return profile.wcet_on_node(process, node)


def critical_path_priorities(
    application: Application,
    architecture: Architecture,
    mapping: ProcessMapping,
    profile: ExecutionProfile,
) -> Dict[str, float]:
    """Partial-critical-path priority of every process of the application.

    A larger value means the process lies on a longer remaining path and is
    scheduled earlier among ready processes.
    """
    priorities: Dict[str, float] = {}
    node_of = mapping.node_of
    wcet = profile.wcet
    # (type name, hardening) per node, resolved once instead of per process.
    node_key = {
        node.name: (node.node_type.name, node.hardening) for node in architecture
    }
    for graph in application.graphs:
        successor_map = graph.adjacency_maps()[1]
        message_between = graph.message_between
        for process_name in reversed(graph.topological_order()):
            own_node = node_of(process_name)
            type_name, hardening = node_key[own_node]
            own_time = wcet(process_name, type_name, hardening)
            best_tail = 0.0
            for successor in successor_map[process_name]:
                tail = priorities[successor]
                if node_of(successor) != own_node:
                    message = message_between(process_name, successor)
                    if message is not None:
                        tail += message.transmission_time
                if tail > best_tail:
                    best_tail = tail
            priorities[process_name] = own_time + best_tail
    return priorities
