"""Schedule data structures and validation.

A :class:`Schedule` is the output of the static list scheduler: the fault-free
(*root*) start and finish time of every process on its node, the transmission
window of every inter-node message on the bus, and the recovery slack reserved
per node for software re-executions.  The *worst-case schedule length* —
the quantity compared against the deadline — is the latest node completion
including its recovery slack (and never earlier than the last bus
transmission).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.exceptions import SchedulingError


@dataclass(frozen=True)
class ScheduledProcess:
    """Fault-free execution window of one process on its mapped node."""

    process: str
    node: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ScheduledMessage:
    """Transmission window of one inter-node message on the shared bus."""

    message: str
    source_process: str
    destination_process: str
    source_node: str
    destination_node: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """A complete static schedule for one application iteration."""

    def __init__(
        self,
        processes: List[ScheduledProcess],
        messages: List[ScheduledMessage],
        node_recovery_slack: Mapping[str, float],
        reexecutions: Mapping[str, int],
        hardening: Mapping[str, int],
    ) -> None:
        self._processes: Dict[str, ScheduledProcess] = {
            entry.process: entry for entry in processes
        }
        if len(self._processes) != len(processes):
            raise SchedulingError("Duplicate process entries in schedule")
        self._messages: Dict[str, ScheduledMessage] = {
            entry.message: entry for entry in messages
        }
        self.node_recovery_slack = dict(node_recovery_slack)
        self.reexecutions = dict(reexecutions)
        self.hardening = dict(hardening)
        # Lazy derived tables.  A Schedule is immutable after construction
        # (the heuristics only read it), so the per-node grouping and the
        # worst-case length are computed once on first query.
        self._by_node: Optional[Dict[str, List[ScheduledProcess]]] = None
        self._length: Optional[float] = None
        self._hash: Optional[int] = None

    @classmethod
    def from_kernel(
        cls,
        processes_by_name: Dict[str, ScheduledProcess],
        messages_by_name: Dict[str, ScheduledMessage],
        node_recovery_slack: Dict[str, float],
        reexecutions: Dict[str, int],
        hardening: Dict[str, int],
    ) -> "Schedule":
        """Trusted constructor for scheduler kernels.

        Takes ownership of the dictionaries without copying and skips the
        duplicate-entry check — the kernel's placement loop guarantees one
        entry per process/message.  Semantically identical to the public
        constructor for such inputs.
        """
        schedule = cls.__new__(cls)
        schedule._processes = processes_by_name
        schedule._messages = messages_by_name
        schedule.node_recovery_slack = node_recovery_slack
        schedule.reexecutions = reexecutions
        schedule.hardening = hardening
        schedule._by_node = None
        schedule._length = None
        schedule._hash = None
        return schedule

    def _node_table(self) -> Dict[str, List[ScheduledProcess]]:
        if self._by_node is None:
            table: Dict[str, List[ScheduledProcess]] = {}
            for entry in self._processes.values():
                table.setdefault(entry.node, []).append(entry)
            for entries in table.values():
                entries.sort(key=lambda entry: entry.start)
            self._by_node = table
        return self._by_node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[ScheduledProcess]:
        return sorted(self._processes.values(), key=lambda entry: (entry.start, entry.process))

    @property
    def messages(self) -> List[ScheduledMessage]:
        return sorted(self._messages.values(), key=lambda entry: (entry.start, entry.message))

    def entry(self, process: str) -> ScheduledProcess:
        try:
            return self._processes[process]
        except KeyError as exc:
            raise SchedulingError(f"Process {process} is not part of the schedule") from exc

    def message_entry(self, message: str) -> ScheduledMessage:
        try:
            return self._messages[message]
        except KeyError as exc:
            raise SchedulingError(f"Message {message} is not part of the schedule") from exc

    def has_message(self, message: str) -> bool:
        return message in self._messages

    def processes_on(self, node: str) -> List[ScheduledProcess]:
        """Processes executing on ``node``, ordered by start time."""
        return list(self._node_table().get(node, ()))

    def nodes(self) -> List[str]:
        return list(self._node_table())

    # ------------------------------------------------------------------
    # lengths
    # ------------------------------------------------------------------
    @property
    def fault_free_length(self) -> float:
        """Makespan of the root (fault-free) schedule."""
        process_finish = max((entry.finish for entry in self._processes.values()), default=0.0)
        message_finish = max((entry.finish for entry in self._messages.values()), default=0.0)
        return max(process_finish, message_finish)

    def node_completion(self, node: str) -> float:
        """Fault-free completion time of the last process on ``node``."""
        entries = self.processes_on(node)
        if not entries:
            return 0.0
        return max(entry.finish for entry in entries)

    def worst_case_node_completion(self, node: str) -> float:
        """Node completion including its shared recovery slack."""
        return self.node_completion(node) + self.node_recovery_slack.get(node, 0.0)

    @property
    def length(self) -> float:
        """Worst-case schedule length ``SL`` compared against the deadline."""
        if self._length is None:
            node_lengths = [
                self.worst_case_node_completion(node) for node in self.nodes()
            ]
            message_finish = max(
                (entry.finish for entry in self._messages.values()), default=0.0
            )
            self._length = max(node_lengths + [message_finish], default=0.0)
        return self._length

    def meets_deadline(self, deadline: float) -> bool:
        return self.length <= deadline

    def seed_worst_case_length(self, length: float) -> None:
        """Install a precomputed worst-case length (scheduler-kernel fast path).

        The caller must supply the exact float the lazy :attr:`length`
        property would compute — kernels derive it from their per-node
        completion arrays, where ``max`` over the same values yields the
        same float regardless of evaluation order.  Seeding only skips the
        lazy per-node table construction; every other query still derives
        from the entry dicts.
        """
        self._length = length

    # ------------------------------------------------------------------
    # equality
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Value equality over the schedule's semantic content.

        Two schedules are equal when every process window, message window,
        recovery-slack reservation, re-execution budget and hardening level
        matches — the properties that determine every downstream quantity
        (lengths, validation, simulation replay).  Lazily derived tables are
        excluded: they are functions of the compared state.  This is what
        makes :class:`~repro.core.evaluation.DesignResult` equality
        meaningful across independently produced designs (the determinism
        and kernel-equivalence suites rely on it).
        """
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._processes == other._processes
            and self._messages == other._messages
            and self.node_recovery_slack == other.node_recovery_slack
            and self.reexecutions == other.reexecutions
            and self.hardening == other.hardening
        )

    def __hash__(self) -> int:
        """Value hash consistent with :meth:`__eq__`.

        A schedule is immutable by convention once built (the heuristics only
        read it; the scheduler never hands the same instance out twice) —
        hashing relies on that convention and caches the result, making equal
        schedules usable as dict/set keys (e.g. when deduplicating design
        points across strategies).  The entry dicts are hashed as frozensets
        of their values: the keys are derivable from the values, so two
        ``__eq__``-equal schedules always hash equally.
        """
        value = self._hash
        if value is None:
            value = self._hash = hash(
                (
                    frozenset(self._processes.values()),
                    frozenset(self._messages.values()),
                    frozenset(self.node_recovery_slack.items()),
                    frozenset(self.reexecutions.items()),
                    frozenset(self.hardening.items()),
                )
            )
        return value

    # ------------------------------------------------------------------
    # validation and reporting
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural sanity checks; raise :class:`SchedulingError` on violation.

        * no two processes overlap on the same node,
        * no two messages overlap on the bus,
        * every window has non-negative duration and start time.
        """
        for entry in self._processes.values():
            if entry.start < 0 or entry.finish < entry.start:
                raise SchedulingError(
                    f"Process {entry.process} has an invalid window "
                    f"[{entry.start}, {entry.finish}]"
                )
        for entry in self._messages.values():
            if entry.start < 0 or entry.finish < entry.start:
                raise SchedulingError(
                    f"Message {entry.message} has an invalid window "
                    f"[{entry.start}, {entry.finish}]"
                )
        for node in self.nodes():
            entries = self.processes_on(node)
            for first, second in zip(entries, entries[1:]):
                if second.start < first.finish - 1e-9:
                    raise SchedulingError(
                        f"Processes {first.process} and {second.process} overlap "
                        f"on node {node}"
                    )
        # Zero-duration messages occupy no bus time: the half-open window
        # [t, t) conflicts with nothing (exactly the arbitration rule of
        # ``Bus._conflicts``), so they are excluded from the pairwise scan —
        # both as non-overlapping themselves and so they cannot mask a real
        # overlap between their neighbours in the sorted adjacency check.
        messages = [entry for entry in self.messages if entry.finish > entry.start]
        for first, second in zip(messages, messages[1:]):
            if second.start < first.finish - 1e-9:
                raise SchedulingError(
                    f"Messages {first.message} and {second.message} overlap on the bus"
                )

    def as_gantt_text(self, time_scale: float = 1.0) -> str:
        """Human-readable Gantt-style rendering (one line per node + bus)."""
        lines: List[str] = []
        for node in self.nodes():
            windows = ", ".join(
                f"{entry.process}[{entry.start * time_scale:.1f}-{entry.finish * time_scale:.1f}]"
                for entry in self.processes_on(node)
            )
            slack = self.node_recovery_slack.get(node, 0.0)
            budget = self.reexecutions.get(node, 0)
            lines.append(
                f"{node} (h={self.hardening.get(node, '?')}, k={budget}, "
                f"slack={slack * time_scale:.1f}): {windows}"
            )
        if self._messages:
            windows = ", ".join(
                f"{entry.message}[{entry.start * time_scale:.1f}-{entry.finish * time_scale:.1f}]"
                for entry in self.messages
            )
            lines.append(f"bus: {windows}")
        lines.append(f"worst-case schedule length: {self.length * time_scale:.1f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(processes={len(self._processes)}, messages={len(self._messages)}, "
            f"length={self.length:.2f})"
        )
