"""Schedule data structures and validation.

A :class:`Schedule` is the output of the static list scheduler: the fault-free
(*root*) start and finish time of every process on its node, the transmission
window of every inter-node message on the bus, and the recovery slack reserved
per node for software re-executions.  The *worst-case schedule length* —
the quantity compared against the deadline — is the latest node completion
including its recovery slack (and never earlier than the last bus
transmission).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.exceptions import SchedulingError


@dataclass(frozen=True)
class ScheduledProcess:
    """Fault-free execution window of one process on its mapped node."""

    process: str
    node: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ScheduledMessage:
    """Transmission window of one inter-node message on the shared bus."""

    message: str
    source_process: str
    destination_process: str
    source_node: str
    destination_node: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """A complete static schedule for one application iteration."""

    def __init__(
        self,
        processes: List[ScheduledProcess],
        messages: List[ScheduledMessage],
        node_recovery_slack: Mapping[str, float],
        reexecutions: Mapping[str, int],
        hardening: Mapping[str, int],
    ) -> None:
        self._processes: Dict[str, ScheduledProcess] = {
            entry.process: entry for entry in processes
        }
        if len(self._processes) != len(processes):
            raise SchedulingError("Duplicate process entries in schedule")
        self._messages: Dict[str, ScheduledMessage] = {
            entry.message: entry for entry in messages
        }
        self.node_recovery_slack = dict(node_recovery_slack)
        self.reexecutions = dict(reexecutions)
        self.hardening = dict(hardening)
        # Lazy derived tables.  A Schedule is immutable after construction
        # (the heuristics only read it), so the per-node grouping and the
        # worst-case length are computed once on first query.
        self._by_node: Optional[Dict[str, List[ScheduledProcess]]] = None
        self._length: Optional[float] = None

    def _node_table(self) -> Dict[str, List[ScheduledProcess]]:
        if self._by_node is None:
            table: Dict[str, List[ScheduledProcess]] = {}
            for entry in self._processes.values():
                table.setdefault(entry.node, []).append(entry)
            for entries in table.values():
                entries.sort(key=lambda entry: entry.start)
            self._by_node = table
        return self._by_node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[ScheduledProcess]:
        return sorted(self._processes.values(), key=lambda entry: (entry.start, entry.process))

    @property
    def messages(self) -> List[ScheduledMessage]:
        return sorted(self._messages.values(), key=lambda entry: (entry.start, entry.message))

    def entry(self, process: str) -> ScheduledProcess:
        try:
            return self._processes[process]
        except KeyError as exc:
            raise SchedulingError(f"Process {process} is not part of the schedule") from exc

    def message_entry(self, message: str) -> ScheduledMessage:
        try:
            return self._messages[message]
        except KeyError as exc:
            raise SchedulingError(f"Message {message} is not part of the schedule") from exc

    def has_message(self, message: str) -> bool:
        return message in self._messages

    def processes_on(self, node: str) -> List[ScheduledProcess]:
        """Processes executing on ``node``, ordered by start time."""
        return list(self._node_table().get(node, ()))

    def nodes(self) -> List[str]:
        return list(self._node_table())

    # ------------------------------------------------------------------
    # lengths
    # ------------------------------------------------------------------
    @property
    def fault_free_length(self) -> float:
        """Makespan of the root (fault-free) schedule."""
        process_finish = max((entry.finish for entry in self._processes.values()), default=0.0)
        message_finish = max((entry.finish for entry in self._messages.values()), default=0.0)
        return max(process_finish, message_finish)

    def node_completion(self, node: str) -> float:
        """Fault-free completion time of the last process on ``node``."""
        entries = self.processes_on(node)
        if not entries:
            return 0.0
        return max(entry.finish for entry in entries)

    def worst_case_node_completion(self, node: str) -> float:
        """Node completion including its shared recovery slack."""
        return self.node_completion(node) + self.node_recovery_slack.get(node, 0.0)

    @property
    def length(self) -> float:
        """Worst-case schedule length ``SL`` compared against the deadline."""
        if self._length is None:
            node_lengths = [
                self.worst_case_node_completion(node) for node in self.nodes()
            ]
            message_finish = max(
                (entry.finish for entry in self._messages.values()), default=0.0
            )
            self._length = max(node_lengths + [message_finish], default=0.0)
        return self._length

    def meets_deadline(self, deadline: float) -> bool:
        return self.length <= deadline

    # ------------------------------------------------------------------
    # equality
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Value equality over the schedule's semantic content.

        Two schedules are equal when every process window, message window,
        recovery-slack reservation, re-execution budget and hardening level
        matches — the properties that determine every downstream quantity
        (lengths, validation, simulation replay).  Lazily derived tables are
        excluded: they are functions of the compared state.  This is what
        makes :class:`~repro.core.evaluation.DesignResult` equality
        meaningful across independently produced designs (the determinism
        and kernel-equivalence suites rely on it).
        """
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._processes == other._processes
            and self._messages == other._messages
            and self.node_recovery_slack == other.node_recovery_slack
            and self.reexecutions == other.reexecutions
            and self.hardening == other.hardening
        )

    __hash__ = None  # mutable-by-convention container; not hashable

    # ------------------------------------------------------------------
    # validation and reporting
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural sanity checks; raise :class:`SchedulingError` on violation.

        * no two processes overlap on the same node,
        * no two messages overlap on the bus,
        * every window has non-negative duration and start time.
        """
        for entry in self._processes.values():
            if entry.start < 0 or entry.finish < entry.start:
                raise SchedulingError(
                    f"Process {entry.process} has an invalid window "
                    f"[{entry.start}, {entry.finish}]"
                )
        for entry in self._messages.values():
            if entry.start < 0 or entry.finish < entry.start:
                raise SchedulingError(
                    f"Message {entry.message} has an invalid window "
                    f"[{entry.start}, {entry.finish}]"
                )
        for node in self.nodes():
            entries = self.processes_on(node)
            for first, second in zip(entries, entries[1:]):
                if second.start < first.finish - 1e-9:
                    raise SchedulingError(
                        f"Processes {first.process} and {second.process} overlap "
                        f"on node {node}"
                    )
        messages = self.messages
        for first, second in zip(messages, messages[1:]):
            if second.start < first.finish - 1e-9:
                raise SchedulingError(
                    f"Messages {first.message} and {second.message} overlap on the bus"
                )

    def as_gantt_text(self, time_scale: float = 1.0) -> str:
        """Human-readable Gantt-style rendering (one line per node + bus)."""
        lines: List[str] = []
        for node in self.nodes():
            windows = ", ".join(
                f"{entry.process}[{entry.start * time_scale:.1f}-{entry.finish * time_scale:.1f}]"
                for entry in self.processes_on(node)
            )
            slack = self.node_recovery_slack.get(node, 0.0)
            budget = self.reexecutions.get(node, 0)
            lines.append(
                f"{node} (h={self.hardening.get(node, '?')}, k={budget}, "
                f"slack={slack * time_scale:.1f}): {windows}"
            )
        if self._messages:
            windows = ", ".join(
                f"{entry.message}[{entry.start * time_scale:.1f}-{entry.finish * time_scale:.1f}]"
                for entry in self.messages
            )
            lines.append(f"bus: {windows}")
        lines.append(f"worst-case schedule length: {self.length * time_scale:.1f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(processes={len(self._processes)}, messages={len(self._messages)}, "
            f"length={self.length:.2f})"
        )
