"""Recovery-slack computation for re-executions.

Section 6.4 of the paper: after each process ``Pi`` mapped on node ``Nj`` the
static schedule reserves a slack of ``(t_ijh + mu) * k_j`` so that up to
``k_j`` re-executions fit before the deadline.  Crucially the slack is
*shared* between the processes mapped on the same node: because at most
``k_j`` faults are tolerated on ``Nj`` per iteration, the slack reserved at
the end of the node's schedule only needs to cover the worst single victim,
i.e. ``k_j * (max_i t_ijh + mu)``, not the sum over all processes.

The module provides both the shared slack used by the paper and the naive
(per-process, non-shared) slack used as an ablation baseline in
``benchmarks/test_bench_ablation_slack_sharing.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.exceptions import ModelError


def shared_recovery_slack(
    execution_times_and_overheads: Sequence[Tuple[float, float]],
    reexecutions: int,
) -> float:
    """Shared recovery slack of one node.

    Parameters
    ----------
    execution_times_and_overheads:
        One ``(t_ijh, mu_i)`` pair per process mapped on the node.
    reexecutions:
        Re-execution budget ``k_j`` of the node.

    Returns
    -------
    float
        ``k_j * max_i (t_ijh + mu_i)`` — zero when the node hosts no process
        or has no re-execution budget.
    """
    _check_budget(reexecutions)
    pairs = list(execution_times_and_overheads)
    if not pairs or reexecutions == 0:
        return 0.0
    worst_single_recovery = max(time + overhead for time, overhead in pairs)
    return reexecutions * worst_single_recovery


def naive_recovery_slack(
    execution_times_and_overheads: Sequence[Tuple[float, float]],
    reexecutions: int,
) -> float:
    """Non-shared recovery slack: every process reserves its own full slack.

    Used only as an ablation baseline; it reserves
    ``k_j * sum_i (t_ijh + mu_i)`` which is always at least as large as the
    shared slack and grows linearly with the number of processes on the node.
    """
    _check_budget(reexecutions)
    pairs = list(execution_times_and_overheads)
    if not pairs or reexecutions == 0:
        return 0.0
    return reexecutions * sum(time + overhead for time, overhead in pairs)


def _check_budget(reexecutions: int) -> None:
    if reexecutions < 0:
        raise ModelError(f"Re-execution budget must be >= 0, got {reexecutions}")
