"""``repro.serve`` — async evaluation service over the scenario registry.

A pure-stdlib ``asyncio`` HTTP/1.1 JSON front end: submit scenario runs as
jobs (``POST /jobs``), watch their progress as an NDJSON event stream
(``GET /jobs/<id>/events``) and collect the structured
:class:`~repro.api.report.RunReport` (``GET /jobs/<id>``).  Jobs execute in
a process pool sharing one persistent design-point store with a
single-flight guard, so concurrent jobs over the same evaluation context
compute each design point exactly once.

Start it with ``repro-ftes serve`` or ``python -m repro.serve``.
"""

from __future__ import annotations

from repro.serve.jobs import DEFAULT_HOST, DEFAULT_PORT, Job, JobManager, ServeConfig
from repro.serve.protocol import HttpError, Request, event_line, json_response
from repro.serve.server import ServeApp, run_server

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "HttpError",
    "Job",
    "JobManager",
    "Request",
    "ServeApp",
    "ServeConfig",
    "event_line",
    "json_response",
    "run_server",
]
