"""``python -m repro.serve`` — alias for ``repro-ftes serve``."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
