"""Job queue and worker pool of the evaluation service.

A *job* is one scenario run requested over HTTP: a scenario id plus a
:class:`~repro.api.config.RunConfig` document.  The :class:`JobManager`
owns a bounded ``asyncio.Queue`` feeding N consumer tasks, each of which
executes its job in a shared ``ProcessPoolExecutor`` so scenario runs never
block the event loop (or each other, up to the worker count).

**Pool-boundary discipline (R006/R007 by construction).**  Exactly one
payload crosses into the pool — :meth:`Job.spec`, a dict of JSON-native
scalars (the config as ``RunConfig.to_dict()``, the spool path as a
string).  No live :class:`Session`, engine, or store handle is ever
submitted; the worker-side :func:`_execute_job` rebuilds everything from
the spec.  All workers share one persistent
:class:`~repro.engine.store.DesignPointStore` directory, and jobs run with
the store's single-flight guard enabled so two jobs over the same context
fingerprint compute each design point exactly once.

**Backpressure.**  A full queue rejects the submission with HTTP 429 and a
``Retry-After`` hint; a per-job wall-clock timeout marks the job
``failed`` and abandons the worker-side future (a worker mid-run cannot be
killed without tearing down the whole pool, so its slot frees when the run
finishes — the timeout bounds *reported* latency, not worker occupancy).
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.config import DEFAULT_CACHE_SIZE_MB, RunConfig
from repro.api.registry import get_scenario
from repro.api.session import Session
from repro.core.exceptions import ModelError
from repro.serve.progress import EventWriter
from repro.serve.protocol import HttpError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one server process.

    ``spool_dir`` holds the per-job NDJSON event spools and (by default)
    the shared design-point store under ``<spool_dir>/store``; pass
    ``cache_dir`` to place the store elsewhere.  ``job_timeout_seconds``
    bounds each job's wall clock (``None`` = unbounded).  ``sanitize``
    installs the runtime determinism sanitizer in every pool worker and
    fails jobs that record violations.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    workers: int = 2
    queue_size: int = 16
    job_timeout_seconds: Optional[float] = None
    spool_dir: Optional[Path] = None
    cache_dir: Optional[Path] = None
    cache_size_mb: int = DEFAULT_CACHE_SIZE_MB
    single_flight: bool = True
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ModelError(f"serve workers must be >= 1, got {self.workers}")
        if self.queue_size < 1:
            raise ModelError(f"serve queue_size must be >= 1, got {self.queue_size}")
        if self.job_timeout_seconds is not None and self.job_timeout_seconds <= 0:
            raise ModelError(
                f"serve job_timeout_seconds must be > 0, got {self.job_timeout_seconds}"
            )


@dataclass
class Job:
    """One submitted scenario run and its lifecycle record."""

    job_id: str
    seq: int
    scenario: str
    config: RunConfig
    events_path: Path
    single_flight: bool
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def spec(self) -> Dict[str, Any]:
        """The picklable payload that crosses the pool boundary.

        JSON-native scalars and containers only — never live handles — so
        the submission is fork/pickle-safe by construction (R006).
        """
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "events_path": str(self.events_path),
            "single_flight": self.single_flight,
        }

    def describe(self, queue_position: Optional[int] = None) -> Dict[str, Any]:
        """The job's public JSON view (``GET /jobs/<id>`` without payload)."""
        payload: Dict[str, Any] = {
            "id": self.job_id,
            "scenario": self.scenario,
            "state": self.state,
            "config": self.config.to_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if queue_position is not None:
            payload["queue_position"] = queue_position
        return payload


# ----------------------------------------------------------------------
# worker-side execution (runs inside ProcessPoolExecutor workers)
# ----------------------------------------------------------------------
def _init_serve_worker(sanitize: bool) -> None:
    """Pool initializer: opt the worker into the determinism sanitizer.

    Mirrors the experiment pool's initializer: the environment variable is
    the opt-in channel (fork-started workers inherit it for free), and a
    fresh sanitizer is installed only when none is active yet.
    """
    from repro.lint.sanitizer import (
        SANITIZE_ENV,
        DeterminismSanitizer,
        active_sanitizer,
        env_requests_sanitizer,
    )

    if sanitize:
        os.environ.setdefault(SANITIZE_ENV, "1")
    if env_requests_sanitizer() and active_sanitizer() is None:
        DeterminismSanitizer().install()


def _execute_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job spec to completion; returns ``RunReport.to_dict()``.

    Rebuilds the full execution context from the scalar spec: the frozen
    config, a :class:`Session` with the spool-backed progress observer and
    the single-flight store guard.  Under the sanitizer, violations
    recorded during *this* job fail it loudly instead of accumulating
    silently in a long-lived worker.
    """
    from repro.lint.sanitizer import active_sanitizer

    config = RunConfig.from_dict(spec["config"])
    writer = EventWriter(Path(spec["events_path"]))
    sanitizer = active_sanitizer()
    violations_before = len(sanitizer.violations) if sanitizer is not None else 0
    with Session(
        config, progress=writer.emit, single_flight=bool(spec["single_flight"])
    ) as session:
        report = session.run(spec["scenario"])
    if sanitizer is not None and len(sanitizer.violations) > violations_before:
        fresh = sanitizer.violations[violations_before:]
        raise RuntimeError(
            f"determinism sanitizer recorded {len(fresh)} violation(s) "
            f"during job {spec['job_id']}: {fresh}"
        )
    return report.to_dict()


# ----------------------------------------------------------------------
# server-side queue and consumers
# ----------------------------------------------------------------------
class JobManager:
    """Bounded job queue + N asyncio consumers over one shared process pool."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        # Created in start(): binding an asyncio.Queue outside the running
        # loop is wrong-loop territory on older Pythons.
        self._queue: Optional["asyncio.Queue[Job]"] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._consumers: List["asyncio.Task[None]"] = []
        self._spool_dir: Optional[Path] = None
        self._store_dir: Optional[Path] = None

    # ------------------------------------------------------------------
    @property
    def spool_dir(self) -> Path:
        if self._spool_dir is None:
            raise RuntimeError("JobManager.start() has not run yet")
        return self._spool_dir

    @property
    def store_dir(self) -> Path:
        """Directory of the shared design-point store all jobs warm."""
        if self._store_dir is None:
            raise RuntimeError("JobManager.start() has not run yet")
        return self._store_dir

    async def start(self) -> None:
        """Create the spool/store directories, the pool and the consumers."""
        spool = self.config.spool_dir
        if spool is None:
            import tempfile

            spool = Path(tempfile.mkdtemp(prefix="repro-serve-"))
        spool.mkdir(parents=True, exist_ok=True)
        self._spool_dir = spool
        store = self.config.cache_dir if self.config.cache_dir is not None else spool / "store"
        store.mkdir(parents=True, exist_ok=True)
        self._store_dir = store
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._executor = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_serve_worker,
            initargs=(self.config.sanitize,),
        )
        self._consumers = [
            asyncio.get_running_loop().create_task(self._consume())
            for _ in range(self.config.workers)
        ]

    async def close(self) -> None:
        """Cancel the consumers and release the pool (best effort)."""
        for task in self._consumers:
            task.cancel()
        for task in self._consumers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._consumers = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, Any]) -> Job:
        """Validate one ``POST /jobs`` payload and enqueue it.

        Validation happens at submit time — unknown scenarios, malformed
        configs and out-of-schema parameters are a 400 here, never a
        ``failed`` job later.  A full queue is a 429 with ``Retry-After``.
        """
        queue = self._queue
        if queue is None:
            raise RuntimeError("JobManager.start() has not run yet")
        scenario_id = payload.get("scenario")
        if not isinstance(scenario_id, str) or not scenario_id:
            raise HttpError(400, "payload must name a 'scenario' (string)")
        config_data = payload.get("config", {})
        if not isinstance(config_data, dict):
            raise HttpError(400, "'config' must be a RunConfig object")
        try:
            requested = RunConfig.from_dict(config_data)
            spec = get_scenario(scenario_id)
            spec.resolve_params(requested.scenario_params)
        except ModelError as error:
            raise HttpError(400, str(error)) from None
        # The server owns persistence: every job shares the warm store, and
        # report files are returned over HTTP, never written server-side.
        effective = replace(
            requested,
            cache_dir=self.store_dir,
            cache_size_mb=self.config.cache_size_mb,
            output=None,
        )
        job_id = f"job-{self._seq:06d}"
        job = Job(
            job_id=job_id,
            seq=self._seq,
            scenario=scenario_id,
            config=effective,
            events_path=self.spool_dir / f"{job_id}.ndjson",
            single_flight=self.config.single_flight,
        )
        try:
            queue.put_nowait(job)
        except asyncio.QueueFull:
            raise HttpError(
                429,
                f"job queue is full ({self.config.queue_size} pending)",
                retry_after=self._retry_after_hint(),
            ) from None
        self._seq += 1
        self.jobs[job_id] = job
        EventWriter(job.events_path).emit(
            {
                "event": "job_queued",
                "job": job_id,
                "scenario": scenario_id,
                "queue_position": self.queue_position(job),
            }
        )
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    def queue_position(self, job: Job) -> Optional[int]:
        """0-based position among queued jobs; ``None`` once running."""
        if job.state != "queued":
            return None
        return sum(
            1
            for other in self.jobs.values()
            if other.state == "queued" and other.seq < job.seq
        )

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    def _retry_after_hint(self) -> int:
        """Crude 429 hint: one timeout's worth of backoff, else 5 seconds."""
        if self.config.job_timeout_seconds is not None:
            return max(1, int(self.config.job_timeout_seconds))
        return 5

    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        """One consumer: drain the queue into the process pool forever."""
        queue = self._queue
        assert queue is not None  # consumers spawn after start() creates it
        while True:
            job = await queue.get()
            try:
                await self._run_job(job)
            finally:
                queue.task_done()

    async def _run_job(self, job: Job) -> None:
        executor = self._executor
        if executor is None:  # pragma: no cover - close() raced a consumer
            job.state = "failed"
            job.error = "server shutting down"
            return
        job.state = "running"
        job.started_at = time.time()
        writer = EventWriter(job.events_path)
        writer.emit({"event": "job_started", "job": job.job_id, "scenario": job.scenario})
        future = asyncio.wrap_future(executor.submit(_execute_job, job.spec()))
        try:
            if self.config.job_timeout_seconds is not None:
                result = await asyncio.wait_for(future, self.config.job_timeout_seconds)
            else:
                result = await future
        except asyncio.TimeoutError:
            job.state = "failed"
            job.error = f"timed out after {self.config.job_timeout_seconds:g} s"
            future.cancel()
        except asyncio.CancelledError:
            job.state = "failed"
            job.error = "cancelled"
            future.cancel()
            raise
        except Exception as error:  # noqa: BLE001 - job failures must not kill the consumer
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
        else:
            job.state = "done"
            job.result = result
        job.finished_at = time.time()
        if job.state == "done":
            writer.emit({"event": "job_done", "job": job.job_id, "scenario": job.scenario})
        else:
            writer.emit(
                {
                    "event": "job_failed",
                    "job": job.job_id,
                    "scenario": job.scenario,
                    "error": job.error,
                }
            )
