"""Per-job NDJSON event spools bridging pool workers and the async server.

A job's progress events are produced inside a ``ProcessPoolExecutor``
worker (the :data:`~repro.api.session.ProgressCallback` threaded through
``Session`` → ``AcceptanceExperiment``) but consumed by the asyncio server
process streaming ``GET /jobs/<id>/events``.  The bridge is a plain
append-only file per job: the worker's :class:`EventWriter` appends one
canonicalized JSON line per event, and the server tails the file with
:func:`iter_new_lines` between ``asyncio.sleep`` polls.

A file — not a pipe or queue — is deliberate: it is picklable-by-path
(only the path string crosses the pool boundary, satisfying R006/R007 by
construction), it survives worker crashes with the partial event history
intact, and late stream subscribers replay the full history for free.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Iterator, Tuple

from repro.serve.protocol import event_line

#: Event names that end a job's stream; the server closes ``/events``
#: connections after relaying one of these.
TERMINAL_EVENTS = frozenset({"job_done", "job_failed"})


class EventWriter:
    """Append canonicalized NDJSON events to one job's spool file.

    Opens the file per event instead of holding a handle: the writer is
    constructed fresh inside each pool worker from a path string, and a
    held descriptor would be un-picklable state for nothing — job event
    rates are a handful per optimizer round, not a hot path.  Each event is
    written with a single ``os.write`` so concurrent server-side appends
    (``job_queued`` / ``job_done``) never interleave mid-line.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one event; matches :data:`ProgressCallback`'s signature."""
        line = event_line(event)
        descriptor = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, line)
        finally:
            os.close(descriptor)


def iter_new_lines(path: Path, offset: int) -> Tuple[Iterator[bytes], int]:
    """Complete (newline-terminated) spool lines past ``offset``.

    Returns the lines and the new offset to resume from.  A partially
    written trailing line is left for the next poll — the single-write
    contract of :class:`EventWriter` makes this a non-event in practice,
    but the tail loop must never relay half a JSON document.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except FileNotFoundError:
        return iter(()), offset
    if not chunk:
        return iter(()), offset
    complete, separator, _partial = chunk.rpartition(b"\n")
    if not separator:
        return iter(()), offset
    lines = [line + b"\n" for line in complete.split(b"\n")]
    return iter(lines), offset + len(complete) + 1
