"""Minimal HTTP/1.1 request/response plumbing for :mod:`repro.serve`.

Pure-stdlib by design: the serve front end targets ``asyncio`` stream pairs
directly instead of pulling in a web framework the container does not ship.
The surface is deliberately small — parse one request per connection
(``Connection: close`` semantics), encode JSON responses, and stream NDJSON
event lines.

**Canonicalization contract (R008).**  Every payload that leaves the server
as a response body flows through exactly two roots defined here —
:func:`json_response` for complete documents and :func:`event_line` for
NDJSON stream lines — and both route the payload through
:func:`repro.api.registry.canonicalize_payload` before ``json.dumps``.  The
payload is the *first positional argument* of both roots by design so the
static R008 rule can locate and dataflow-check it at call sites.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from asyncio import IncompleteReadError, LimitOverrunError, StreamReader

from repro.api.registry import canonicalize_payload

#: Upper bound on the request head (request line + headers), in bytes.
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a request body (job submissions are small JSON), in bytes.
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the status codes the server actually emits.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A client-visible HTTP failure carrying its status code.

    Raised by request parsing and route handlers; the connection handler
    converts it into a JSON error body.  ``retry_after`` (seconds) is
    rendered as a ``Retry-After`` header — the backpressure contract of the
    bounded job queue (429).
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request (method, split target, headers, raw body)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> Dict[str, Any]:
        """Decode the body as a JSON object; malformed input is a 400."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(reader: StreamReader) -> Optional[Request]:
    """Parse one HTTP/1.1 request from ``reader``.

    Returns ``None`` when the client closed the connection before sending a
    request line (a clean keep-alive close, nothing to answer).  Any other
    malformed input raises :class:`HttpError`.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes") from None
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes any byte
        raise HttpError(400, "undecodable request head") from None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, query = _split_target(target)
    body = await _read_body(reader, headers)
    return Request(method=method.upper(), path=path, query=query, headers=headers, body=body)


def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return split.path or "/", query


async def _read_body(reader: StreamReader, headers: Dict[str, str]) -> bytes:
    raw_length = headers.get("content-length")
    if raw_length is None:
        if headers.get("transfer-encoding"):
            raise HttpError(400, "chunked request bodies are not supported")
        return b""
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"malformed Content-Length: {raw_length!r}") from None
    if length < 0:
        raise HttpError(400, f"malformed Content-Length: {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        return await reader.readexactly(length)
    except IncompleteReadError:
        raise HttpError(400, "request body shorter than Content-Length") from None


# ----------------------------------------------------------------------
# response encoding — the two R008 canonicalization roots
# ----------------------------------------------------------------------
def json_response(
    payload: Dict[str, Any],
    status: int = 200,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Encode one complete JSON response (headers + canonicalized body).

    ``payload`` is the first positional argument by contract — the static
    R008 rule dataflow-checks it at every call site, and the body always
    passes through :func:`canonicalize_payload` here regardless.
    """
    body = json.dumps(canonicalize_payload(payload), sort_keys=True).encode("utf-8")
    return _response_head(status, "application/json", len(body), extra_headers) + body


def event_line(payload: Dict[str, Any]) -> bytes:
    """Encode one canonicalized NDJSON event line (no HTTP framing).

    Shared by the worker-side spool writer and the server-side stream
    endpoint so both sides of the event pipe emit identical bytes.  Like
    :func:`json_response`, the payload is the first positional argument by
    contract for the R008 rule.
    """
    return json.dumps(canonicalize_payload(payload), sort_keys=True).encode("utf-8") + b"\n"


def error_response(error: HttpError) -> bytes:
    """Render an :class:`HttpError` as a JSON error document."""
    extra: Optional[Dict[str, str]] = None
    if error.retry_after is not None:
        extra = {"Retry-After": str(error.retry_after)}
    return json_response(
        {"error": error.message, "status": error.status}, error.status, extra
    )


def stream_head(content_type: str = "application/x-ndjson") -> bytes:
    """Response head for an unframed stream delimited by connection close."""
    reason = STATUS_REASONS[200]
    return (
        f"HTTP/1.1 200 {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def _response_head(
    status: int,
    content_type: str,
    content_length: int,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {content_length}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
