"""The asyncio HTTP front end: routing, streaming, and lifecycle.

Endpoints (all JSON, ``Connection: close``):

* ``GET /scenarios`` — the registry with full parameter schemas;
* ``POST /jobs`` — submit ``{"scenario": id, "config": RunConfig.to_dict()}``;
  202 with the job record, 400 on validation errors, 429 + ``Retry-After``
  when the bounded queue is full;
* ``GET /jobs/<id>`` — the job's state machine record; once ``done`` the
  full ``RunReport`` payload rides along as ``"report"``;
* ``GET /jobs/<id>/events`` — NDJSON progress stream (queue/lifecycle
  events from the server, ``scenario_*``/``setting_progress`` events from
  the worker), closed after the terminal event;
* ``GET /healthz`` — queue depth, per-state job counts, worker liveness
  and shared-store statistics.

Run with ``repro-ftes serve`` or ``python -m repro.serve``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional

from repro.api.registry import list_scenarios
from repro.engine.store import DesignPointStore
from repro.serve.jobs import Job, JobManager, ServeConfig
from repro.serve.progress import TERMINAL_EVENTS, iter_new_lines
from repro.serve.protocol import (
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    stream_head,
)

#: Poll interval of the ``/events`` spool tail, seconds.
_EVENT_POLL_SECONDS = 0.05


class ServeApp:
    """One server instance: a :class:`JobManager` plus the HTTP routes."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.manager = JobManager(config)
        self._store_handle: Optional[DesignPointStore] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(
        self, ready: Optional[Callable[[str, int], None]] = None
    ) -> None:
        """Start the manager and serve until cancelled.

        ``ready(host, port)`` fires once the socket is bound — with
        ``port=0`` this is how callers learn the ephemeral port.
        """
        await self.manager.start()
        server = await asyncio.start_server(
            self.handle_client, self.config.host, self.config.port
        )
        try:
            sockets = server.sockets or []
            if ready is not None and sockets:
                bound = sockets[0].getsockname()
                ready(str(bound[0]), int(bound[1]))
            async with server:
                await server.serve_forever()
        finally:
            await self.manager.close()

    def _store(self) -> DesignPointStore:
        """Lazy stats handle on the shared store (no warm/persist here)."""
        if self._store_handle is None:
            self._store_handle = DesignPointStore(
                self.manager.store_dir, max_bytes=self.config.cache_size_mb * 1024 * 1024
            )
        return self._store_handle

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self.dispatch(request, writer)
            except HttpError as error:
                writer.write(error_response(error))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
            except Exception as error:  # noqa: BLE001 - connection must answer, not die
                writer.write(
                    error_response(HttpError(500, f"{type(error).__name__}: {error}"))
                )
                await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        """Route one request; raises :class:`HttpError` for client errors."""
        segments = [part for part in request.path.split("/") if part]
        if request.path == "/healthz":
            self._require_method(request, "GET")
            writer.write(json_response(self.healthz_payload()))
        elif request.path == "/scenarios":
            self._require_method(request, "GET")
            writer.write(json_response(self.scenarios_payload()))
        elif segments[:1] == ["jobs"] and len(segments) == 1:
            self._require_method(request, "POST")
            job = self.manager.submit(request.json_body())
            writer.write(
                json_response(
                    self.job_payload(job),
                    202,
                    {"Location": f"/jobs/{job.job_id}"},
                )
            )
        elif segments[:1] == ["jobs"] and len(segments) == 2:
            self._require_method(request, "GET")
            job = self.manager.get(segments[1])
            writer.write(json_response(self.job_payload(job)))
        elif segments[:1] == ["jobs"] and len(segments) == 3 and segments[2] == "events":
            self._require_method(request, "GET")
            job = self.manager.get(segments[1])
            await self.stream_events(job, writer)
            return
        else:
            raise HttpError(404, f"no route for {request.method} {request.path}")
        await writer.drain()

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, f"{request.path} only supports {method}")

    # ------------------------------------------------------------------
    # payload builders
    # ------------------------------------------------------------------
    def scenarios_payload(self) -> Dict[str, Any]:
        return {
            "scenarios": [
                {
                    "id": spec.scenario_id,
                    "title": spec.title,
                    "description": spec.description,
                    "figure": spec.figure,
                    "schema": spec.schema(),
                    "params": [
                        {
                            "name": param.name,
                            "type": param.type,
                            "default": param.default,
                            "minimum": param.minimum,
                            "maximum": param.maximum,
                            "description": param.description,
                        }
                        for param in spec.params
                    ],
                }
                for spec in list_scenarios()
            ]
        }

    def job_payload(self, job: Job) -> Dict[str, Any]:
        payload = job.describe(self.manager.queue_position(job))
        if job.result is not None:
            payload["report"] = job.result
        return payload

    def healthz_payload(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "queue": {
                "depth": self.manager.state_counts()["queued"],
                "capacity": self.config.queue_size,
            },
            "jobs": self.manager.state_counts(),
            "workers": {"count": self.config.workers},
            "store": self._store().directory_stats(),
        }

    # ------------------------------------------------------------------
    # event streaming
    # ------------------------------------------------------------------
    async def stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Tail the job's spool as NDJSON until its terminal event.

        Replays the full history for late subscribers, then polls.  The
        stream is delimited by connection close (no chunked framing) —
        clients read lines until EOF.
        """
        writer.write(stream_head())
        await writer.drain()
        offset = 0
        while True:
            lines, offset = iter_new_lines(job.events_path, offset)
            finished = False
            for line in lines:
                writer.write(line)
                if _is_terminal(line):
                    finished = True
            await writer.drain()
            if finished:
                return
            await asyncio.sleep(_EVENT_POLL_SECONDS)


def _is_terminal(line: bytes) -> bool:
    try:
        event = json.loads(line)
    except json.JSONDecodeError:  # pragma: no cover - writer emits valid JSON
        return False
    return isinstance(event, dict) and event.get("event") in TERMINAL_EVENTS


def run_server(config: ServeConfig) -> int:
    """Blocking CLI entry: serve until interrupted; returns an exit code."""
    app = ServeApp(config)

    def announce(host: str, port: int) -> None:
        print(f"repro-ftes serve: listening on http://{host}:{port}", flush=True)
        print(
            f"repro-ftes serve: spool={app.manager.spool_dir} "
            f"store={app.manager.store_dir} workers={config.workers} "
            f"queue={config.queue_size}",
            flush=True,
        )

    try:
        asyncio.run(app.run(ready=announce))
    except KeyboardInterrupt:
        pass
    return 0
