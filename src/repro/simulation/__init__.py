"""Monte-Carlo validation of fault-tolerant schedules.

The SFP analysis (Appendix A) and the recovery-slack schedule model are
analytic; this package provides the empirical counterpart: a fault-scenario
simulator that replays a static schedule many times, injects transient faults
with the per-process probabilities of the execution profile, applies the
re-execution recovery exactly as the schedule reserves slack for it, and
reports (a) how often more faults occur than the re-execution budgets can
absorb and (b) whether the realized node completion times ever exceed the
analytic worst case.
"""

from __future__ import annotations

from repro.simulation.fault_simulator import (
    FaultScenarioSimulator,
    IterationOutcome,
    SimulationSummary,
)

__all__ = ["FaultScenarioSimulator", "IterationOutcome", "SimulationSummary"]
