"""Fault-scenario simulation of static schedules with re-execution.

The simulator validates the two guarantees the paper's design flow makes:

1. **Reliability** — the probability that, during one application iteration,
   some node experiences more transient faults than its re-execution budget
   ``k_j`` is bounded by the SFP analysis.  The simulator injects faults per
   process execution with the profile's ``p_ijh`` and counts the iterations
   in which a node exceeds its budget.

2. **Timing** — whenever the fault count on a node stays within its budget,
   the node finishes no later than its analytic worst case (root completion
   plus the shared recovery slack ``k_j * (max_i t_ijh + mu_i)``).

The replay is *per node*, mirroring the paper's schedule model: each node
executes its processes in root-schedule order, every re-execution adds the
recovery overhead plus the process WCET, and the realized completion time is
compared against the analytic bound.  Cross-node propagation of recovery
delays is outside the model (the paper reserves the slack per node, not along
end-to-end paths); the simulator therefore validates exactly what the
analysis claims, no more and no less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.application import Application
from repro.core.architecture import Architecture
from repro.core.exceptions import ModelError
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.core.sfp import SFPAnalysis
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class IterationOutcome:
    """What happened during one simulated application iteration."""

    faults_per_node: Dict[str, int]
    recovered: bool
    node_completion: Dict[str, float]
    within_worst_case: bool

    @property
    def total_faults(self) -> int:
        return sum(self.faults_per_node.values())


@dataclass
class SimulationSummary:
    """Aggregate statistics over all simulated iterations."""

    iterations: int
    unrecovered_iterations: int
    iterations_with_faults: int
    worst_case_violations: int
    observed_failure_rate: float
    predicted_failure_bound: float
    max_relative_completion: float
    total_faults_injected: int
    sample_outcomes: List[IterationOutcome] = field(default_factory=list)

    @property
    def respects_sfp_bound(self) -> bool:
        """Whether the observed unrecovered rate stays under the SFP bound.

        A small statistical allowance (three standard deviations of the
        binomial estimator around the bound) is included so the check does not
        flake for bounds close to the observable resolution.
        """
        allowance = 3.0 * np.sqrt(
            max(self.predicted_failure_bound, 1.0 / self.iterations) / self.iterations
        )
        return self.observed_failure_rate <= self.predicted_failure_bound + allowance

    @property
    def timing_validated(self) -> bool:
        """True when no recovered iteration exceeded the analytic worst case."""
        return self.worst_case_violations == 0


class FaultScenarioSimulator:
    """Monte-Carlo replay of a fault-tolerant static schedule.

    Parameters
    ----------
    iterations:
        Number of application iterations to simulate.
    seed:
        Seed of the NumPy generator; simulations are reproducible.
    keep_samples:
        Number of per-iteration outcomes to retain in the summary (useful for
        debugging and for the examples; keeping all of them for large runs
        would be wasteful).
    """

    def __init__(
        self,
        iterations: int = 10_000,
        seed: Optional[int] = 20_09,
        keep_samples: int = 10,
    ) -> None:
        if iterations < 1:
            raise ModelError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.keep_samples = keep_samples
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def simulate(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        schedule: Schedule,
        reexecutions: Optional[Mapping[str, int]] = None,
    ) -> SimulationSummary:
        """Simulate ``iterations`` executions of one static schedule."""
        mapping.validate(application, architecture, profile)
        budgets = dict(schedule.reexecutions)
        if reexecutions is not None:
            budgets.update(reexecutions)

        analysis = SFPAnalysis(application, architecture, mapping, profile)
        predicted_bound = analysis.system_failure_per_iteration(budgets)

        node_plans = self._build_node_plans(application, architecture, mapping, profile, schedule)
        worst_case = {
            node: schedule.worst_case_node_completion(node) for node in schedule.nodes()
        }

        unrecovered = 0
        faulty_iterations = 0
        violations = 0
        total_faults = 0
        max_relative = 0.0
        samples: List[IterationOutcome] = []

        for _ in range(self.iterations):
            outcome = self._simulate_iteration(node_plans, budgets, worst_case)
            total_faults += outcome.total_faults
            if outcome.total_faults > 0:
                faulty_iterations += 1
            if not outcome.recovered:
                unrecovered += 1
            elif not outcome.within_worst_case:
                violations += 1
            for node, completion in outcome.node_completion.items():
                bound = worst_case.get(node, 0.0)
                if bound > 0.0:
                    max_relative = max(max_relative, completion / bound)
            if len(samples) < self.keep_samples and outcome.total_faults > 0:
                samples.append(outcome)

        return SimulationSummary(
            iterations=self.iterations,
            unrecovered_iterations=unrecovered,
            iterations_with_faults=faulty_iterations,
            worst_case_violations=violations,
            observed_failure_rate=unrecovered / self.iterations,
            predicted_failure_bound=predicted_bound,
            max_relative_completion=max_relative,
            total_faults_injected=total_faults,
            sample_outcomes=samples,
        )

    # ------------------------------------------------------------------
    def _build_node_plans(
        self,
        application: Application,
        architecture: Architecture,
        mapping: ProcessMapping,
        profile: ExecutionProfile,
        schedule: Schedule,
    ) -> Dict[str, List[Dict[str, float]]]:
        """Per-node replay plans: root start, WCET, recovery overhead, p."""
        plans: Dict[str, List[Dict[str, float]]] = {}
        for node in architecture:
            entries = schedule.processes_on(node.name)
            plan = []
            for entry in entries:
                plan.append(
                    {
                        "process": entry.process,
                        "root_start": entry.start,
                        "wcet": profile.wcet_on_node(entry.process, node),
                        "recovery": application.recovery_overhead_of(entry.process),
                        "failure_probability": profile.failure_probability_on_node(
                            entry.process, node
                        ),
                    }
                )
            plans[node.name] = plan
        return plans

    def _simulate_iteration(
        self,
        node_plans: Mapping[str, List[Dict[str, float]]],
        budgets: Mapping[str, int],
        worst_case: Mapping[str, float],
    ) -> IterationOutcome:
        """Replay one iteration on every node independently."""
        faults_per_node: Dict[str, int] = {}
        completions: Dict[str, float] = {}
        recovered = True
        within_worst_case = True

        for node, plan in node_plans.items():
            budget = budgets.get(node, 0)
            faults_used = 0
            clock = 0.0
            node_failed = False
            for step in plan:
                start = max(clock, step["root_start"])
                clock = start + step["wcet"]
                # Re-execute while faults hit this execution and budget remains.
                while self._rng.random() < step["failure_probability"]:
                    faults_used += 1
                    if faults_used > budget:
                        node_failed = True
                        break
                    clock += step["recovery"] + step["wcet"]
                if node_failed:
                    break
            faults_per_node[node] = faults_used
            completions[node] = clock
            if node_failed:
                recovered = False
            elif plan and clock > worst_case.get(node, 0.0) + 1e-9:
                within_worst_case = False

        return IterationOutcome(
            faults_per_node=faults_per_node,
            recovered=recovered,
            node_completion=completions,
            within_worst_case=within_worst_case,
        )
