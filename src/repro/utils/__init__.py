"""Small shared utilities (pessimistic rounding, validation helpers)."""

from __future__ import annotations

from repro.utils.rounding import (
    DEFAULT_DECIMALS,
    ceil_probability,
    floor_probability,
)
from repro.utils.validation import (
    require_in_unit_interval,
    require_non_negative,
    require_positive,
)

__all__ = [
    "DEFAULT_DECIMALS",
    "ceil_probability",
    "floor_probability",
    "require_in_unit_interval",
    "require_non_negative",
    "require_positive",
]
