"""Pessimistic rounding helpers used by the SFP analysis.

The paper (Appendix A.2, footnote 2) rounds intermediate probabilities with a
fixed accuracy of ``1e-11``: probabilities of *success* (no faults, exactly
``f`` faults recovered) are rounded **down**, while probabilities of *failure*
are rounded **up**.  Rounding in that direction keeps the analysis pessimistic,
which is required for a safety argument: the reported system failure
probability is never smaller than the exact value.

The helpers below operate on plain ``float`` values but go through
:class:`decimal.Decimal` so that the direction of the rounding is exact and
does not depend on binary floating point representation quirks.
"""

from __future__ import annotations

from decimal import ROUND_CEILING, ROUND_FLOOR, Decimal

#: Number of decimal digits used by the paper when rounding probabilities.
DEFAULT_DECIMALS = 11


def floor_probability(value: float, decimals: int = DEFAULT_DECIMALS) -> float:
    """Round ``value`` towards zero-successes pessimism (downwards).

    Used for probabilities of *good* outcomes (e.g. ``Pr(0; Nj^h)``), so that
    the analysis never over-estimates how likely the system is to survive.

    Parameters
    ----------
    value:
        Probability in ``[0, 1]`` (values slightly outside due to float noise
        are clamped).
    decimals:
        Number of decimal digits to keep; the paper uses 11.
    """
    clamped = _clamp_unit_interval(value)
    quantum = Decimal(1).scaleb(-decimals)
    rounded = Decimal(repr(clamped)).quantize(quantum, rounding=ROUND_FLOOR)
    return float(rounded)


def ceil_probability(value: float, decimals: int = DEFAULT_DECIMALS) -> float:
    """Round ``value`` towards failure pessimism (upwards).

    Used for probabilities of *bad* outcomes (e.g. ``Pr(f > kj; Nj^h)``), so
    that the analysis never under-estimates the probability of a system
    failure.
    """
    clamped = _clamp_unit_interval(value)
    quantum = Decimal(1).scaleb(-decimals)
    rounded = Decimal(repr(clamped)).quantize(quantum, rounding=ROUND_CEILING)
    return float(min(rounded, Decimal(1)))


def _clamp_unit_interval(value: float) -> float:
    """Clamp a probability into ``[0, 1]``.

    Floating point arithmetic on long products occasionally produces values
    like ``-1e-18`` or ``1.0000000000000002``; these are artefacts, not real
    probabilities, so they are clamped before rounding.
    """
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return float(value)
