"""Argument validation helpers shared across the library.

All validators raise :class:`ValueError` with a message that names the
offending parameter, so that errors surfaced to library users are actionable
without a stack-trace dive.
"""

from __future__ import annotations


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, raise otherwise."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is zero or positive, raise otherwise."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value
