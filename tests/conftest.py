"""Shared pytest fixtures: the paper's motivational examples and small helpers."""

from __future__ import annotations

import pytest

from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, HVersion, Node, NodeType
from repro.core.mapping_model import ProcessMapping
from repro.core.profile import ExecutionProfile
from repro.experiments.motivational import (
    fig1_application,
    fig1_node_types,
    fig1_profile,
    fig3_application,
    fig3_node_type,
    fig3_profile,
)
from repro.kernels import use_kernel


@pytest.fixture(autouse=True)
def _kernel_selection_guard():
    """Snapshot/restore both kernel families' process selection per test.

    A test that pins a kernel (through the deprecated global setters, a
    Session, or ``use_kernel``) and then fails must not leak its selection
    into later tests; ``use_kernel()`` with no arguments is exactly that
    exception-safe snapshot/restore guard.
    """
    with use_kernel():
        yield


@pytest.fixture
def fig1_app() -> Application:
    """The four-process application of Fig. 1."""
    return fig1_application()


@pytest.fixture
def fig1_nodes() -> tuple[NodeType, NodeType]:
    """Node types N1 and N2 of Fig. 1."""
    return fig1_node_types()


@pytest.fixture
def fig1_prof() -> ExecutionProfile:
    """Execution profile (WCET / failure probability tables) of Fig. 1."""
    return fig1_profile()


@pytest.fixture
def fig3_app() -> Application:
    return fig3_application()


@pytest.fixture
def fig3_node() -> NodeType:
    return fig3_node_type()


@pytest.fixture
def fig3_prof() -> ExecutionProfile:
    return fig3_profile()


@pytest.fixture
def fig4a_architecture(fig1_nodes) -> Architecture:
    """The two-node architecture of Fig. 4a (both at hardening level 2)."""
    n1, n2 = fig1_nodes
    return Architecture([Node("N1", n1, hardening=2), Node("N2", n2, hardening=2)])


@pytest.fixture
def fig4a_mapping() -> ProcessMapping:
    """The Fig. 4a mapping: P1, P2 on N1; P3, P4 on N2."""
    return ProcessMapping({"P1": "N1", "P2": "N1", "P3": "N2", "P4": "N2"})


@pytest.fixture
def single_process_app() -> Application:
    """A minimal single-process application used by many unit tests."""
    application = Application(
        name="single",
        deadline=100.0,
        reliability_goal=1.0 - 1e-5,
        recovery_overhead=5.0,
    )
    graph = application.new_graph("G")
    graph.add_process(Process("P1", nominal_wcet=10.0))
    return application


@pytest.fixture
def two_node_types() -> list[NodeType]:
    """Two simple node types with three hardening levels each."""
    return [
        NodeType("NA", [HVersion(1, 2.0), HVersion(2, 4.0), HVersion(3, 6.0)]),
        NodeType("NB", [HVersion(1, 3.0), HVersion(2, 6.0), HVersion(3, 9.0)], speed_factor=1.2),
    ]


def build_diamond_application(
    deadline: float = 200.0,
    reliability_goal: float = 1.0 - 1e-5,
    recovery_overhead: float = 5.0,
    message_time: float = 2.0,
) -> Application:
    """A diamond-shaped 4-process application used across tests."""
    application = Application(
        name="diamond",
        deadline=deadline,
        reliability_goal=reliability_goal,
        recovery_overhead=recovery_overhead,
    )
    graph = application.new_graph("G")
    for name, wcet in (("A", 10.0), ("B", 20.0), ("C", 15.0), ("D", 12.0)):
        graph.add_process(Process(name, nominal_wcet=wcet))
    graph.add_message(Message("mAB", "A", "B", transmission_time=message_time))
    graph.add_message(Message("mAC", "A", "C", transmission_time=message_time))
    graph.add_message(Message("mBD", "B", "D", transmission_time=message_time))
    graph.add_message(Message("mCD", "C", "D", transmission_time=message_time))
    return application


@pytest.fixture
def diamond_app() -> Application:
    return build_diamond_application()


def uniform_profile_for(
    application: Application,
    node_types: list[NodeType],
    failure_probability: float = 1e-6,
    hardening_speedup: float = 0.0,
    hardening_reduction: float = 100.0,
) -> ExecutionProfile:
    """Build a profile where every process uses its nominal WCET on every node.

    Hardening multiplies the WCET by ``1 + hardening_speedup * (h - 1)`` and
    divides the failure probability by ``hardening_reduction ** (h - 1)``.
    """
    profile = ExecutionProfile()
    for process in application.processes():
        for node_type in node_types:
            for level in node_type.hardening_levels:
                wcet = process.nominal_wcet * node_type.speed_factor
                wcet *= 1.0 + hardening_speedup * (level - 1)
                probability = failure_probability / (hardening_reduction ** (level - 1))
                profile.add_entry(process.name, node_type.name, level, wcet, probability)
    return profile
