"""API ↔ legacy CLI ↔ golden-fixture equivalence (the PR acceptance gate).

``api.run("fig6a", RunConfig(preset="fast"))`` and the legacy
``repro-ftes synthetic --figure 6a --preset fast`` must produce identical
results payloads, both matching the checked-in golden fixture exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _load(name: str) -> dict:
    with (GOLDEN_DIR / name).open(encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def fig6a_report() -> api.RunReport:
    return api.run("fig6a", api.RunConfig(preset="fast"))


def test_api_fig6a_payload_equals_the_golden_fixture(fig6a_report):
    # The scenario payload *is* the golden fixture's structure — key for key.
    assert fig6a_report.results == _load("fig6a_fast.json")


def test_api_fig6b_payload_equals_the_golden_fixture():
    report = api.run("fig6b", api.RunConfig(preset="fast"))
    assert report.results == _load("fig6b_fast.json")


def test_synthetic_random_smoke_matches_the_golden_fixture():
    # Kernel-independent determinism gate for the parameterized family: the
    # full MIN/MAX/OPT exploration of one small generated application must
    # reproduce the checked-in payload bit for bit.
    report = api.run(
        "synthetic-random",
        api.RunConfig(preset="smoke", scenario_params={"n_processes": 10, "seed": 3}),
    )
    assert report.results == _load("synthetic_random_smoke.json")


def test_legacy_cli_and_api_produce_identical_payloads(fig6a_report, tmp_path, capsys):
    output = tmp_path / "legacy_fig6a.json"
    with pytest.warns(DeprecationWarning):
        exit_code = main(
            ["synthetic", "--figure", "6a", "--preset", "fast",
             "--output", str(output)]
        )
    capsys.readouterr()  # swallow the rendered tables
    assert exit_code == 0
    legacy = json.loads(output.read_text(encoding="utf-8"))
    golden = _load("fig6a_fast.json")
    assert legacy["6a"] == golden["acceptance"]
    assert legacy["6a"] == fig6a_report.results["acceptance"]


def test_generic_run_driver_writes_a_golden_matching_report(tmp_path, capsys):
    output = tmp_path / "report.json"
    exit_code = main(
        ["run", "fig6a", "--preset", "fast", "--output", str(output)]
    )
    capsys.readouterr()
    assert exit_code == 0
    report = api.RunReport.from_json(output.read_text(encoding="utf-8"))
    assert report.results == _load("fig6a_fast.json")
