"""Every registered scenario runs through the API and round-trips its report.

Covers the satellite contract: ``RunReport.to_json()``/``from_json()`` is
lossless for all registered scenarios at the fast preset.  One module-scoped
report cache keeps each scenario to a single execution.
"""

from __future__ import annotations

import json

import pytest

from repro import api

SCENARIO_IDS = [spec.scenario_id for spec in api.list_scenarios()]


@pytest.fixture(scope="module")
def reports():
    """One fast-preset report per registered scenario (computed lazily)."""
    cache = {}

    def get(scenario_id: str) -> api.RunReport:
        if scenario_id not in cache:
            cache[scenario_id] = api.run(
                scenario_id, api.RunConfig(preset="fast")
            )
        return cache[scenario_id]

    return get


def test_all_builtin_scenarios_are_registered():
    assert {"motivational", "fig6a", "fig6b", "fig6c", "fig6d", "cruise-control"} <= set(
        SCENARIO_IDS
    )


@pytest.mark.parametrize("scenario_id", SCENARIO_IDS)
def test_report_json_round_trip_is_lossless(reports, scenario_id):
    report = reports(scenario_id)
    serialized = report.to_json()
    recovered = api.RunReport.from_json(serialized)
    assert recovered == report
    assert recovered.to_json() == serialized


@pytest.mark.parametrize("scenario_id", SCENARIO_IDS)
def test_report_carries_the_structured_fields(reports, scenario_id):
    report = reports(scenario_id)
    assert report.scenario == scenario_id
    assert report.config.preset == "fast"
    assert set(report.kernels) == {"sfp", "sched"}
    assert report.timings["wall_clock_seconds"] >= 0.0
    assert {"hits", "misses", "points_computed"} <= set(report.cache)
    assert report.results  # non-empty payload
    assert report.text  # human-readable rendering exists


@pytest.mark.parametrize("scenario_id", SCENARIO_IDS)
def test_payloads_are_json_native(reports, scenario_id):
    """No tuples / numeric keys survive in payloads (round-trip guarantee)."""
    results = reports(scenario_id).results
    assert json.loads(json.dumps(results)) == results


def test_unknown_scenario_is_rejected():
    from repro.core.exceptions import ModelError

    with pytest.raises(ModelError, match="Unknown scenario"):
        api.run("fig7-does-not-exist")
