"""Integration test: the Appendix A.2 worked SFP computation, digit for digit."""

from __future__ import annotations

import pytest

from repro.experiments.motivational import appendix_sfp_example


@pytest.fixture(scope="module")
def example():
    return appendix_sfp_example()


class TestAppendixA2:
    def test_probability_of_no_faults(self, example):
        assert example["pr_no_fault_n1"] == pytest.approx(0.99997500015, abs=1e-12)
        assert example["pr_no_fault_n2"] == pytest.approx(0.99997500015, abs=1e-12)

    def test_probability_of_exceeding_zero_faults(self, example):
        assert example["pr_exceeds_0_n1"] == pytest.approx(2.499985e-05, abs=1e-10)

    def test_probability_of_exceeding_one_fault(self, example):
        assert example["pr_exceeds_1_n1"] == pytest.approx(4.8e-10, abs=1e-12)
        assert example["pr_exceeds_1_n2"] == pytest.approx(4.8e-10, abs=1e-12)

    def test_system_failure_probabilities(self, example):
        assert example["system_failure_k1"] == pytest.approx(9.6e-10, abs=1e-12)
        assert example["system_failure_k0"] == pytest.approx(5.0e-05, rel=1e-3)

    def test_reliability_without_reexecution_misses_goal(self, example):
        assert example["reliability_k0"] == pytest.approx(0.6065, abs=1e-3)
        assert example["meets_goal_k0"] == 0.0

    def test_reliability_with_one_reexecution_meets_goal(self, example):
        assert example["reliability_k1"] == pytest.approx(0.99999040005, abs=1e-8)
        assert example["meets_goal_k1"] == 1.0
