"""Integration test: the cruise-controller case study (Section 7).

The paper's findings for the CC application: the MIN strategy (software fault
tolerance only) cannot produce a schedulable implementation, MAX and OPT can,
and OPT is substantially (about 66 %) cheaper than MAX.  The absolute saving
depends on the reconstructed task graph; the test asserts the qualitative
findings plus a sizeable saving.
"""

from __future__ import annotations

import pytest

from repro.experiments.cruise_control import (
    CC_DEADLINE,
    CC_PROCESS_TABLE,
    cruise_controller_application,
    cruise_controller_node_types,
    cruise_controller_profile,
    run_cruise_controller_study,
)


class TestCruiseControllerModel:
    def test_has_32_processes(self):
        application = cruise_controller_application()
        assert application.number_of_processes() == 32
        assert len(CC_PROCESS_TABLE) == 32

    def test_three_ecus_with_five_hardening_levels(self):
        node_types = cruise_controller_node_types()
        assert [node_type.name for node_type in node_types] == ["ETM", "ABS", "TCM"]
        assert all(node_type.max_hardening == 5 for node_type in node_types)

    def test_linear_cost_functions(self):
        for node_type in cruise_controller_node_types():
            base = node_type.cost(1)
            for level in node_type.hardening_levels:
                assert node_type.cost(level) == pytest.approx(base * level)

    def test_profile_covers_all_processes_and_levels(self):
        application = cruise_controller_application()
        node_types = cruise_controller_node_types()
        profile = cruise_controller_profile(application, node_types)
        profile.validate_against(application, node_types)

    def test_graph_is_acyclic_with_sensors_as_sources(self):
        application = cruise_controller_application()
        graph = application.graphs[0]
        sources = set(graph.sources())
        assert "read_speed_sensor" in sources
        assert "throttle_command" in graph.sinks()

    def test_deadline_and_reliability_goal(self):
        application = cruise_controller_application()
        assert application.deadline == CC_DEADLINE == 300.0
        assert application.gamma == pytest.approx(1.2e-5)


class TestCruiseControllerStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_cruise_controller_study()

    def test_min_strategy_is_unschedulable(self, study):
        assert not study.outcomes["MIN"].schedulable
        # The fallback report still shows how far past the deadline MIN lands.
        assert study.outcomes["MIN"].schedule_length > CC_DEADLINE

    def test_max_strategy_is_schedulable(self, study):
        outcome = study.outcomes["MAX"]
        assert outcome.schedulable
        assert outcome.schedule_length <= CC_DEADLINE
        assert set(outcome.hardening.values()) == {5}
        assert outcome.cost == pytest.approx(50.0)

    def test_opt_strategy_is_schedulable_and_cheaper(self, study):
        opt = study.outcomes["OPT"]
        maximum = study.outcomes["MAX"]
        assert opt.schedulable
        assert opt.schedule_length <= CC_DEADLINE
        assert opt.cost < maximum.cost

    def test_opt_saving_is_substantial(self, study):
        # The paper reports 66 %; the reconstructed graph gives a saving in the
        # same regime (at least half of the MAX cost).
        assert study.opt_saving_vs_max >= 0.5

    def test_opt_uses_intermediate_hardening(self, study):
        levels = set(study.outcomes["OPT"].hardening.values())
        assert max(levels) < 5
        assert sum(study.outcomes["OPT"].reexecutions.values()) >= 1
