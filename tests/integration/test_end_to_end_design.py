"""Integration test: a full design flow on a generated benchmark.

Generates a synthetic application, derives the platform for one technology
setting, runs the three strategies and cross-checks the produced designs with
the independent analysis utilities (SFP evaluation, schedule validation, cost
accounting) — i.e. the optimizer's claims are re-verified from scratch.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import Architecture, Node
from repro.core.baselines import all_strategies
from repro.core.mapping import MappingAlgorithm
from repro.core.sfp import SFPAnalysis
from repro.generator.benchmark import BenchmarkConfig, build_platform, generate_benchmark
from repro.scheduling.list_scheduler import ListScheduler


@pytest.fixture(scope="module")
def problem():
    benchmark = generate_benchmark(
        seed=101, config=BenchmarkConfig(n_processes=12, n_node_types=3)
    )
    node_types, profile = build_platform(
        benchmark, ser_per_cycle=1e-11, hardening_performance_degradation=25.0
    )
    return benchmark, node_types, profile


@pytest.fixture(scope="module")
def results(problem):
    benchmark, node_types, profile = problem
    algorithm = MappingAlgorithm(max_iterations=3, stop_after_no_improvement=2, max_candidates=2)
    strategies = all_strategies(node_types, algorithm)
    return {
        name: strategy.explore(benchmark.application, profile)
        for name, strategy in strategies.items()
    }


class TestEndToEndDesigns:
    def test_opt_produces_a_feasible_design(self, results):
        assert results["OPT"].feasible

    def test_opt_cost_is_competitive_with_baselines(self, results):
        # OPT and the baselines all rely on small tabu searches, so on a single
        # instance OPT may settle on a slightly different mapping than MIN;
        # the paper's claim is about the aggregate acceptance rate (checked in
        # test_synthetic_experiment).  Here we assert OPT never loses to the
        # expensive MAX baseline and stays in the same cost regime as MIN.
        opt = results["OPT"]
        if results["MAX"].feasible:
            assert opt.cost <= results["MAX"].cost + 1e-9
        if results["MIN"].feasible:
            assert opt.cost <= results["MIN"].cost * 1.5 + 1e-9

    def test_reported_schedule_is_internally_consistent(self, results, problem):
        benchmark, node_types, profile = problem
        result = results["OPT"]
        result.schedule.validate()
        assert result.schedule_length == pytest.approx(result.schedule.length)
        assert result.schedule_length <= benchmark.application.deadline

    def test_reported_reliability_is_reproducible(self, results, problem):
        benchmark, node_types, profile = problem
        result = results["OPT"]
        types_by_name = {node_type.name: node_type for node_type in node_types}
        architecture = Architecture(
            [
                Node(name, types_by_name[type_name], hardening=result.hardening[name])
                for name, type_name in result.node_types.items()
            ]
        )
        analysis = SFPAnalysis(
            benchmark.application, architecture, result.mapping, profile
        )
        report = analysis.evaluate(result.reexecutions)
        assert report.meets_goal

    def test_reported_schedule_is_reproducible(self, results, problem):
        benchmark, node_types, profile = problem
        result = results["OPT"]
        types_by_name = {node_type.name: node_type for node_type in node_types}
        architecture = Architecture(
            [
                Node(name, types_by_name[type_name], hardening=result.hardening[name])
                for name, type_name in result.node_types.items()
            ]
        )
        schedule = ListScheduler().schedule(
            benchmark.application,
            architecture,
            result.mapping,
            profile,
            result.reexecutions,
        )
        assert schedule.length == pytest.approx(result.schedule_length)

    def test_reported_cost_matches_architecture(self, results, problem):
        _, node_types, _ = problem
        result = results["OPT"]
        types_by_name = {node_type.name: node_type for node_type in node_types}
        expected_cost = sum(
            types_by_name[type_name].cost(result.hardening[name])
            for name, type_name in result.node_types.items()
        )
        assert result.cost == pytest.approx(expected_cost)
