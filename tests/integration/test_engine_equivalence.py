"""Cache-equivalence guarantees of the evaluation engine.

The engine's whole contract is "same results, less work": a warm cache, a
cold cache and no cache at all must produce bit-identical designs for every
strategy.  These tests drive the full DSE stack over several generated
applications and compare every semantic field of the resulting
:class:`DesignResult`s (cache counters are bookkeeping, not semantics, and
are excluded from ``DesignResult`` equality by construction).
"""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    max_hardening_strategy,
    min_hardening_strategy,
    optimized_strategy,
)
from repro.core.fault_model import SER_MEDIUM
from repro.core.mapping import MappingAlgorithm
from repro.engine import EvaluationEngine
from repro.generator.benchmark import (
    BenchmarkConfig,
    build_platform,
    generate_benchmark_suite,
)

STRATEGY_BUILDERS = {
    "MIN": min_hardening_strategy,
    "MAX": max_hardening_strategy,
    "OPT": optimized_strategy,
}


def _algorithm() -> MappingAlgorithm:
    return MappingAlgorithm(
        max_iterations=3, stop_after_no_improvement=2, max_candidates=2
    )


def _semantic_fields(result):
    return {
        "strategy": result.strategy,
        "application": result.application,
        "feasible": result.feasible,
        "node_types": result.node_types,
        "hardening": result.hardening,
        "reexecutions": result.reexecutions,
        "mapping": result.mapping.as_dict() if result.mapping is not None else None,
        "schedule_length": result.schedule_length,
        "deadline": result.deadline,
        "cost": result.cost,
        "meets_reliability": result.meets_reliability,
        "failure_reason": result.failure_reason,
        "evaluations": result.evaluations,
    }


@pytest.fixture(scope="module", params=[1, 17, 4242])
def platform(request):
    benchmark = generate_benchmark_suite(
        count=1,
        base_seed=request.param,
        config=BenchmarkConfig(n_node_types=3),
        process_counts=(12,),
    )[0]
    node_types, profile = build_platform(
        benchmark, ser_per_cycle=SER_MEDIUM, hardening_performance_degradation=25.0
    )
    return benchmark.application, node_types, profile


@pytest.mark.parametrize("strategy_name", ["MIN", "MAX", "OPT"])
class TestColdWarmEquivalence:
    def test_cold_vs_warm_engine_is_bit_identical(self, platform, strategy_name):
        application, node_types, profile = platform
        strategy = STRATEGY_BUILDERS[strategy_name](node_types, _algorithm())
        engine = EvaluationEngine(application, profile)
        cold = strategy.explore(application, profile, engine=engine)
        assert engine.stats.misses > 0
        warm = strategy.explore(application, profile, engine=engine)
        assert _semantic_fields(cold) == _semantic_fields(warm)
        # The warm pass re-resolves every design point from cache.
        assert warm.cache_hits > 0
        assert warm.cache_hit_rate > cold.cache_hit_rate

    def test_engine_vs_no_engine_is_bit_identical(self, platform, strategy_name):
        application, node_types, profile = platform
        cached_strategy = STRATEGY_BUILDERS[strategy_name](node_types, _algorithm())
        uncached_strategy = STRATEGY_BUILDERS[strategy_name](node_types, _algorithm())
        uncached_strategy.use_engine = False
        cached = cached_strategy.explore(application, profile)
        uncached = uncached_strategy.explore(application, profile)
        assert _semantic_fields(cached) == _semantic_fields(uncached)
        assert uncached.cache_hits == 0
        assert uncached.cache_misses == 0


def test_shared_engine_across_strategies_is_bit_identical(platform):
    """MIN/MAX/OPT sharing one engine must match per-strategy engines."""
    application, node_types, profile = platform
    shared_engine = EvaluationEngine(application, profile)
    shared, isolated = {}, {}
    for name, builder in STRATEGY_BUILDERS.items():
        shared[name] = builder(node_types, _algorithm()).explore(
            application, profile, engine=shared_engine
        )
    for name, builder in STRATEGY_BUILDERS.items():
        isolated[name] = builder(node_types, _algorithm()).explore(application, profile)
    for name in STRATEGY_BUILDERS:
        assert _semantic_fields(shared[name]) == _semantic_fields(isolated[name])


def test_design_result_reports_nonzero_cache_activity(platform):
    application, node_types, profile = platform
    result = STRATEGY_BUILDERS["OPT"](node_types, _algorithm()).explore(
        application, profile
    )
    assert result.cache_hits + result.cache_misses > 0
