"""Integration test: the Monte-Carlo fault-injection campaign agrees with the
analytic fault model, and an injection-derived profile drives the same design
flow as an analytic one.
"""

from __future__ import annotations

import pytest

from repro.core.application import Application, Message, Process
from repro.core.architecture import Architecture, Node, linear_cost_node_type
from repro.core.mapping_model import ProcessMapping
from repro.core.reexecution import ReExecutionOpt
from repro.faults.hardening import SelectiveHardeningPlan
from repro.faults.injection import FaultInjectionCampaign
from repro.faults.processor import ProcessorModel
from repro.scheduling.list_scheduler import ListScheduler


@pytest.fixture(scope="module")
def processor() -> ProcessorModel:
    # Error rate chosen so that a 10 ms execution fails with probability ~1e-3:
    # large enough for a 20k-run campaign to estimate it accurately.
    return ProcessorModel(
        name="ecu",
        flip_flops=20_000,
        upset_rate_per_ff_cycle=5e-12,
        clock_mhz=100.0,
        architectural_derating=0.1,
    )


class TestCampaignAgreesWithAnalyticModel:
    def test_estimates_within_confidence_interval(self, processor):
        campaign = FaultInjectionCampaign(runs=20_000, seed=2024)
        for wcet in (2.0, 10.0, 20.0):
            estimate = campaign.inject(processor, wcet)
            low, high = estimate.confidence_interval(z=4.0)
            assert low <= processor.failure_probability(wcet) <= high

    def test_hardening_ladder_preserves_ordering(self, processor):
        plan = SelectiveHardeningPlan.linear(3, max_hardened_fraction=0.95)
        campaign = FaultInjectionCampaign(runs=20_000, seed=7)
        from repro.faults.hardening import apply_selective_hardening

        estimates = [
            campaign.inject(apply_selective_hardening(processor, plan, level), 10.0)
            for level in (1, 2, 3)
        ]
        rates = [estimate.failure_probability for estimate in estimates]
        assert rates[0] > rates[2]


class TestFaultInjectionScenario:
    """The registered `fault-injection` family cross-validates MC vs. analytic."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro import api

        return api.run(
            "fault-injection",
            api.RunConfig(scenario_params={"runs": 20_000, "seed": 2009}),
        )

    def test_every_estimate_agrees_with_the_analytic_model(self, report):
        assert report.results["all_within_tolerance"] is True
        entries = report.results["entries"]
        assert len(entries) == 3 * 3  # three processes x three levels
        for entry in entries:
            assert entry["within_tolerance"] is True
            # The tolerance itself must be meaningful: a few sigma in count
            # space, not an everything-passes bound.
            assert entry["tolerance_failures"] < 0.05 * report.params["runs"]

    def test_rerun_with_identical_params_is_bit_identical(self, report):
        from repro import api

        again = api.run(
            "fault-injection",
            api.RunConfig(scenario_params={"runs": 20_000, "seed": 2009}),
        )
        assert again.results == report.results

    def test_estimates_do_not_depend_on_hardening_ladder_size(self, report):
        # Per-estimate child streams: running the same campaign with a taller
        # hardening ladder must reproduce the shared levels exactly.
        from repro import api

        taller = api.run(
            "fault-injection",
            api.RunConfig(
                scenario_params={"runs": 20_000, "seed": 2009, "hardening_levels": 4}
            ),
        )
        # Levels are spaced differently in a 4-level linear plan, so only
        # level 1 (always the unhardened baseline) is shared across ladders.
        def level_one(results):
            return {
                (e["process"], e["level"]): e["monte_carlo"]
                for e in results["entries"]
                if e["level"] == 1
            }

        assert level_one(taller.results) == level_one(report.results)


class TestInjectionDrivenDesignFlow:
    def test_injected_profile_supports_reexecution_optimization(self, processor):
        application = Application(
            "injected", deadline=200.0, reliability_goal=1 - 1e-5, recovery_overhead=2.0
        )
        graph = application.new_graph("G")
        graph.add_process(Process("sense", nominal_wcet=8.0))
        graph.add_process(Process("act", nominal_wcet=12.0))
        graph.add_message(Message("m", "sense", "act", transmission_time=1.0))

        node_types = [linear_cost_node_type("ECU", 2.0, levels=3)]
        plan = SelectiveHardeningPlan.linear(3, max_hardened_fraction=0.99, max_slowdown_percent=20.0)
        campaign = FaultInjectionCampaign(runs=5_000, seed=99)
        profile = campaign.profile_application(
            application, node_types, {"ECU": processor}, plan
        )

        architecture = Architecture([Node("ECU", node_types[0], hardening=1)])
        mapping = ProcessMapping({"sense": "ECU", "act": "ECU"})
        decision = ReExecutionOpt().optimize(application, architecture, mapping, profile)
        assert decision is not None
        schedule = ListScheduler().schedule(
            application, architecture, mapping, profile, decision.reexecutions
        )
        schedule.validate()
        assert schedule.length <= application.deadline
