"""Golden regression fixtures for the Fig. 6a / 6b fast-preset sweeps.

The checked-in JSON files under ``tests/golden/`` pin the exact acceptance
percentages of the fast preset.  Kernel backends, engine caching, the
persistent store and parallelism are all required to be bit-identical
transformations — so *any* drift in these fixtures is a correctness bug, not
noise, and the diff in the failure message names the exact setting that
moved.  Regenerate deliberately (only when the experiment definition itself
changes) by rerunning the sweep and rewriting the JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.fault_model import SER_MEDIUM
from repro.experiments.synthetic import (
    AcceptanceExperiment,
    ExperimentPreset,
    figure_6a_hpd_sweep,
    figure_6b_cost_table,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _load(name: str) -> dict:
    with (GOLDEN_DIR / name).open(encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def fast_experiment() -> AcceptanceExperiment:
    """One fast-preset experiment shared by both figures (same settings)."""
    return AcceptanceExperiment(preset=ExperimentPreset.fast())


def test_fig6a_acceptance_matches_golden(fast_experiment):
    golden = _load("fig6a_fast.json")
    assert golden["ser"] == SER_MEDIUM
    sweep = figure_6a_hpd_sweep(fast_experiment)
    produced = {f"{hpd:g}": values for hpd, values in sweep.items()}
    assert produced == golden["acceptance"]


def test_fig6b_acceptance_matches_golden(fast_experiment):
    golden = _load("fig6b_fast.json")
    table = figure_6b_cost_table(fast_experiment)
    produced = {
        f"{hpd:g}": {f"{arc:g}": values for arc, values in per_arc.items()}
        for hpd, per_arc in table.items()
    }
    assert produced == golden["acceptance"]


def test_goldens_cover_all_strategies():
    """The fixtures themselves must stay structurally complete."""
    fig6a = _load("fig6a_fast.json")
    assert set(fig6a["acceptance"]) == {"5", "25", "50", "100"}
    for values in fig6a["acceptance"].values():
        assert set(values) == {"MIN", "MAX", "OPT"}
    fig6b = _load("fig6b_fast.json")
    for per_arc in fig6b["acceptance"].values():
        assert set(per_arc) == {"15", "20", "25"}
